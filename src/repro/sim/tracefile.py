"""Instruction-trace recording and replay.

Workload generators are procedural; for reproducibility across
machines (and to feed the simulator from externally produced traces,
e.g. a binary-instrumentation run on real hardware), dynamic
instruction streams can be recorded to a columnar ``.npz`` file and
replayed later.  A :class:`TraceWorkload` replays a file through the
standard :class:`~repro.sim.machine.Machine` interface.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, Iterator, Optional, Union

import numpy as np

from .config import MachineConfig
from .isa import Instr

_TRACE_FORMAT = "emprof-trace-v1"

PathLike = Union[str, Path]


def save_trace(
    path: PathLike,
    instructions: Iterable[Instr],
    region_names: Optional[Dict[int, str]] = None,
    name: str = "trace",
) -> int:
    """Record an instruction stream to ``path``; returns the count."""
    ops, pcs, addrs, deps, weights, regions = [], [], [], [], [], []
    for ins in instructions:
        ops.append(ins.op)
        pcs.append(ins.pc)
        addrs.append(ins.addr)
        deps.append(ins.dep)
        weights.append(ins.weight)
        regions.append(ins.region)
    np.savez_compressed(
        path,
        format=_TRACE_FORMAT,
        name=name,
        op=np.asarray(ops, dtype=np.int8),
        pc=np.asarray(pcs, dtype=np.int64),
        addr=np.asarray(addrs, dtype=np.int64),
        dep=np.asarray(deps, dtype=np.int64),
        weight=np.asarray(weights, dtype=np.float64),
        region=np.asarray(regions, dtype=np.int32),
        region_names=json.dumps({str(k): v for k, v in (region_names or {}).items()}),
    )
    return len(ops)


def record_workload(path: PathLike, workload, config: MachineConfig) -> int:
    """Record a workload's stream for ``config``; returns the count."""
    count = save_trace(
        path,
        workload.instructions(config),
        region_names=getattr(workload, "region_names", None),
        name=getattr(workload, "name", "trace"),
    )
    return count


class TraceWorkload:
    """Replay a recorded trace through the simulator.

    The trace is loaded once into columnar numpy arrays;
    :meth:`instructions` materializes :class:`Instr` tuples lazily, so
    replay costs the same as generating the original stream.
    """

    def __init__(self, path: PathLike):
        with np.load(path, allow_pickle=False) as data:
            fmt = str(data["format"])
            if fmt != _TRACE_FORMAT:
                raise ValueError(f"not an EMPROF trace file (format={fmt!r})")
            self.name = str(data["name"])
            self._op = np.asarray(data["op"], dtype=np.int64)
            self._pc = np.asarray(data["pc"], dtype=np.int64)
            self._addr = np.asarray(data["addr"], dtype=np.int64)
            self._dep = np.asarray(data["dep"], dtype=np.int64)
            self._weight = np.asarray(data["weight"], dtype=np.float64)
            self._region = np.asarray(data["region"], dtype=np.int64)
            self.region_names: Dict[int, str] = {
                int(k): v for k, v in json.loads(str(data["region_names"])).items()
            }

    def __len__(self) -> int:
        return len(self._op)

    def instructions(self, config: MachineConfig) -> Iterator[Instr]:
        """Replay the recorded stream (``config`` is ignored: the trace
        is already concrete)."""
        op = self._op.tolist()
        pc = self._pc.tolist()
        addr = self._addr.tolist()
        dep = self._dep.tolist()
        weight = self._weight.tolist()
        region = self._region.tolist()
        for i in range(len(op)):
            yield Instr(op[i], pc[i], addr[i], dep[i], weight[i], region[i])
