"""Stride / next-line hardware prefetcher.

The Samsung Galaxy Centura's Cortex-A5 has a hardware prefetcher, which
the paper credits for its lower LLC miss counts relative to the Olimex
board despite an identical 256 KB LLC (Section VI-A).  The model below
is a stream prefetcher at the LLC: it watches demand LLC misses, and
once it sees a monotone stride it prefetches ``degree`` lines ahead.

Random-access workloads (the TM/CM microbenchmark, mcf-style pointer
chasing) defeat it by construction, exactly as the paper's
microbenchmark randomization is "designed to defeat any stride-based
pre-fetching" (Section V-B).
"""

from __future__ import annotations

from typing import List

from .cache import Cache


class StridePrefetcher:
    """Detects strided LLC miss streams and prefetches ahead.

    A small table of recent streams is kept; each stream records the
    last miss line and the stride between its last two misses.  Two
    consecutive misses with the same stride confirm the stream, after
    which every further hit on the stream triggers ``degree``
    prefetches.
    """

    TABLE_SIZE = 8

    def __init__(self, llc: Cache, degree: int = 2):
        if degree < 0:
            raise ValueError("prefetch degree cannot be negative")
        self._llc = llc
        self._degree = degree
        self._line_bytes = llc.config.line_bytes
        # Each entry: [last_line, stride, confirmed]
        self._streams: List[List[int]] = []
        self.issued = 0
        self.useful_hint = 0

    def on_llc_miss(self, addr: int) -> None:
        """Observe a demand LLC miss and possibly issue prefetches."""
        if self._degree == 0:
            return
        line = addr // self._line_bytes
        for stream in self._streams:
            stride = line - stream[0]
            if stride == 0:
                return
            if stride == stream[1]:
                stream[0] = line
                stream[2] = 1
                self._issue(line, stride)
                return
        # No matching stream: try to extend the most recent entries by
        # recording a candidate stride, then age the table.  Strides up
        # to 64 lines cover page-stride sweeps as well as unit-stride
        # streams, as real stream prefetchers do.
        for stream in self._streams:
            stride = line - stream[0]
            if abs(stride) <= 64 and stream[2] == 0:
                stream[0] = line
                stream[1] = stride
                return
        self._streams.insert(0, [line, 0, 0])
        del self._streams[self.TABLE_SIZE :]

    def _issue(self, line: int, stride: int) -> None:
        for k in range(1, self._degree + 1):
            target = (line + k * stride) * self._line_bytes
            if not self._llc.probe(target):
                self._llc.fill(target)
                self.issued += 1
            else:
                self.useful_hint += 1

    def reset(self) -> None:
        """Forget all tracked streams and statistics."""
        self._streams.clear()
        self.issued = 0
        self.useful_hint = 0
