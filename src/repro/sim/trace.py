"""Ground-truth trace records emitted by the simulator.

Section V-C of the paper: the simulator "is enhanced to produce a power
consumption trace that will be used as a side-channel signal in EMPROF,
and also to produce a trace of when (in which cycle) each LLC miss is
detected and when the resulting stall (if there is a stall) begins and
ends".  These records are that second trace; the validation code in
:mod:`repro.core.validate` compares EMPROF's output against them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

# Miss kinds.
IFETCH = "ifetch"
DLOAD = "load"
DSTORE = "store"

# Stall causes.
CAUSE_IFETCH_MEM = "ifetch_mem"  # I$ miss that also missed the LLC
CAUSE_DATA_MEM = "data_mem"  # load consumer blocked on a memory miss
CAUSE_MSHR_FULL = "mshr_full"  # out of miss-handling resources
CAUSE_RUNAHEAD = "runahead"  # in-order window exhausted past a miss
CAUSE_LLC_HIT = "llc_hit"  # brief stall: L1 miss serviced by the LLC
CAUSE_STOREBUF = "store_buffer"  # store buffer full of outstanding misses

# Causes whose stalls are attributable to main-memory (LLC-miss)
# activity - the events EMPROF exists to find.
MEMORY_CAUSES = frozenset(
    {CAUSE_IFETCH_MEM, CAUSE_DATA_MEM, CAUSE_MSHR_FULL, CAUSE_RUNAHEAD, CAUSE_STOREBUF}
)


@dataclass
class MissRecord:
    """One LLC miss (an access that reached main memory).

    Attributes:
        miss_id: dense index, in detection order.
        kind: IFETCH / DLOAD / DSTORE.
        addr: byte address of the missing access.
        detect_cycle: cycle at which the miss was discovered.
        ready_cycle: cycle at which the line came back from memory.
        stall_id: index of the stall this miss contributed to, or None
            when the core hid the whole latency (Fig. 3a).
        refresh_blocked: True when DRAM refresh inflated the latency.
        region: code region active when the miss was detected.
    """

    miss_id: int
    kind: str
    addr: int
    detect_cycle: int
    ready_cycle: int
    stall_id: Optional[int] = None
    refresh_blocked: bool = False
    region: int = 0

    @property
    def latency(self) -> int:
        """Memory service latency of this miss, in cycles."""
        return self.ready_cycle - self.detect_cycle


@dataclass
class StallRecord:
    """One contiguous fully-stalled interval of the core.

    Attributes:
        stall_id: dense index, in time order.
        begin_cycle / end_cycle: half-open stalled interval.
        cause: what exhausted the core (see CAUSE_* constants).
        miss_ids: LLC misses whose latency this stall covers; several
            ids here is the overlapped-miss case of Fig. 3b.
        refresh: True when any contributing miss was refresh-blocked.
        region: code region the stalled instruction belongs to.
    """

    stall_id: int
    begin_cycle: int
    end_cycle: int
    cause: str
    miss_ids: List[int] = field(default_factory=list)
    refresh: bool = False
    region: int = 0

    @property
    def duration(self) -> int:
        """Stall length in cycles."""
        return self.end_cycle - self.begin_cycle

    @property
    def is_memory(self) -> bool:
        """True when this stall is attributable to main-memory misses."""
        return self.cause in MEMORY_CAUSES


@dataclass
class GroundTruth:
    """All ground-truth records from one simulation run."""

    misses: List[MissRecord] = field(default_factory=list)
    stalls: List[StallRecord] = field(default_factory=list)
    total_cycles: int = 0
    total_instructions: int = 0
    region_names: Dict[int, str] = field(default_factory=dict)
    region_cycles: Dict[int, int] = field(default_factory=dict)

    # -- miss-side queries ------------------------------------------------

    def miss_count(self) -> int:
        """Total LLC misses, stalling or not."""
        return len(self.misses)

    def stalling_miss_count(self) -> int:
        """LLC misses that contributed to some stall."""
        return sum(1 for m in self.misses if m.stall_id is not None)

    def hidden_miss_count(self) -> int:
        """LLC misses fully hidden by useful work (Fig. 3a)."""
        return sum(1 for m in self.misses if m.stall_id is None)

    # -- stall-side queries -----------------------------------------------

    def memory_stalls(self) -> List[StallRecord]:
        """Stalls attributable to main-memory misses, in time order."""
        return [s for s in self.stalls if s.is_memory]

    def memory_stall_count(self) -> int:
        """Number of distinct memory-induced stalls.

        This is the quantity EMPROF's "miss count" should match: one
        stall per miss *group* (Section II-B's MISS terminology).
        """
        return len(self.memory_stalls())

    def memory_stall_cycles(self) -> int:
        """Total cycles the core spent stalled on memory misses."""
        return sum(s.duration for s in self.memory_stalls())

    def refresh_stall_count(self) -> int:
        """Memory stalls stretched by a DRAM refresh collision."""
        return sum(1 for s in self.memory_stalls() if s.refresh)

    def stall_fraction(self) -> float:
        """Memory-stall cycles as a fraction of total execution time."""
        if self.total_cycles == 0:
            return 0.0
        return self.memory_stall_cycles() / self.total_cycles

    def stall_intervals(self) -> np.ndarray:
        """(N, 2) array of [begin, end) cycles for memory stalls."""
        stalls = self.memory_stalls()
        if not stalls:
            return np.empty((0, 2), dtype=np.int64)
        return np.array([(s.begin_cycle, s.end_cycle) for s in stalls], dtype=np.int64)

    def stall_durations(self) -> np.ndarray:
        """Durations (cycles) of memory stalls, in time order."""
        return np.array([s.duration for s in self.memory_stalls()], dtype=np.int64)

    # -- attribution-side queries ------------------------------------------

    def misses_by_region(self) -> Dict[int, int]:
        """Miss count per code region."""
        counts: Dict[int, int] = {}
        for m in self.misses:
            counts[m.region] = counts.get(m.region, 0) + 1
        return counts

    def stall_cycles_by_region(self) -> Dict[int, int]:
        """Memory-stall cycles per code region."""
        cycles: Dict[int, int] = {}
        for s in self.memory_stalls():
            cycles[s.region] = cycles.get(s.region, 0) + s.duration
        return cycles

    def miss_rate_timeline(self, bin_cycles: int) -> Tuple[np.ndarray, np.ndarray]:
        """Miss count per ``bin_cycles`` window over the whole run.

        Returns (bin_start_cycles, counts) - the Fig. 13 boot-profile
        series is exactly this on the boot workload.
        """
        if bin_cycles <= 0:
            raise ValueError("bin width must be positive")
        nbins = max(1, -(-self.total_cycles // bin_cycles))
        counts = np.zeros(nbins, dtype=np.int64)
        for m in self.misses:
            idx = min(m.detect_cycle // bin_cycles, nbins - 1)
            counts[idx] += 1
        starts = np.arange(nbins, dtype=np.int64) * bin_cycles
        return starts, counts
