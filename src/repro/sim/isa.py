"""Instruction-stream model consumed by the cycle-level pipeline.

The simulator does not interpret a real ISA; what EMPROF's validation
needs from the substrate is the *timing-relevant* content of a program:
which instructions touch memory and where, how soon a load's value is
consumed (this bounds how long the core can keep busy past a miss), and
how much switching activity each instruction contributes to the power
side-channel.  An :class:`Instr` captures exactly that, and workloads
in :mod:`repro.workloads` generate streams of them.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple

# Operation kinds.  Values are dense small ints so they can be used as
# array indices in power weight tables.
ALU = 0
LOAD = 1
STORE = 2
BRANCH = 3
MUL = 4
NOP = 5

OP_NAMES = {ALU: "alu", LOAD: "load", STORE: "store", BRANCH: "branch", MUL: "mul", NOP: "nop"}

# Per-op switching-activity weights (arbitrary units).  These set the
# texture of the busy-processor signal: different instruction mixes in
# different loops give each code region a distinct signal signature,
# which is what spectral attribution (Fig. 14) keys on.
DEFAULT_WEIGHTS = {
    ALU: 0.12,
    LOAD: 0.16,
    STORE: 0.15,
    BRANCH: 0.10,
    MUL: 0.20,
    NOP: 0.04,
}

# A load with NO_CONSUMER never directly blocks the pipeline; only the
# core's runahead limit or MSHR exhaustion can turn its miss into a
# stall (the Fig. 3a "miss with no attributable stall" case).
NO_CONSUMER = 1 << 30


class Instr(NamedTuple):
    """One dynamic instruction.

    Attributes:
        op: one of ALU/LOAD/STORE/BRANCH/MUL/NOP.
        pc: byte address of the instruction (drives the I-cache).
        addr: byte address touched by LOAD/STORE; 0 otherwise.
        dep: for LOAD - number of instructions after this one before
            its value is first consumed (0 means the very next
            instruction needs it).  Use NO_CONSUMER for dead loads.
        weight: switching-activity contribution of this instruction.
        region: small integer naming the code region (function/loop)
            this instruction belongs to, for attribution experiments.
    """

    op: int
    pc: int
    addr: int = 0
    dep: int = NO_CONSUMER
    weight: float = DEFAULT_WEIGHTS[ALU]
    region: int = 0


def alu(pc: int, region: int = 0, weight: float = DEFAULT_WEIGHTS[ALU]) -> Instr:
    """Build a plain integer-ALU instruction."""
    return Instr(ALU, pc, 0, NO_CONSUMER, weight, region)


def mul(pc: int, region: int = 0) -> Instr:
    """Build a multiply (higher switching activity than ALU)."""
    return Instr(MUL, pc, 0, NO_CONSUMER, DEFAULT_WEIGHTS[MUL], region)


def branch(pc: int, region: int = 0) -> Instr:
    """Build a (predicted-taken, zero-penalty) branch."""
    return Instr(BRANCH, pc, 0, NO_CONSUMER, DEFAULT_WEIGHTS[BRANCH], region)


def load(pc: int, addr: int, dep: int = 1, region: int = 0) -> Instr:
    """Build a load whose value is consumed ``dep`` instructions later."""
    if dep < 0:
        raise ValueError("dependency distance cannot be negative")
    return Instr(LOAD, pc, addr, dep, DEFAULT_WEIGHTS[LOAD], region)


def store(pc: int, addr: int, region: int = 0) -> Instr:
    """Build a store (non-blocking while the store buffer has room)."""
    return Instr(STORE, pc, addr, NO_CONSUMER, DEFAULT_WEIGHTS[STORE], region)


def nop(pc: int, region: int = 0) -> Instr:
    """Build a nop (minimal switching activity)."""
    return Instr(NOP, pc, 0, NO_CONSUMER, DEFAULT_WEIGHTS[NOP], region)


def instruction_bytes() -> int:
    """Size of one encoded instruction (fixed 4-byte, ARM-like)."""
    return 4


def straightline(
    pc: int, count: int, region: int = 0, weight: float = DEFAULT_WEIGHTS[ALU]
) -> Iterator[Instr]:
    """Yield ``count`` sequential ALU instructions starting at ``pc``.

    PCs advance by 4 bytes each, so long straight-line stretches sweep
    through I-cache lines (and can themselves cause I-fetch misses for
    large code footprints).
    """
    step = instruction_bytes()
    for i in range(count):
        yield Instr(ALU, pc + i * step, 0, NO_CONSUMER, weight, region)
