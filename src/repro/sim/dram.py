"""Main-memory (DRAM) timing with banks and periodic refresh.

The paper found that the simulator's simplified memory model missed a
real-device behaviour: an LLC miss that lands during a DRAM refresh is
blocked, stretching its stall to 2-3 us, and such collisions recur at
least every ~70 us on the Olimex board's H5TQ2G63BFR SDRAM (Fig. 5).
This model therefore makes refresh a first-class timing feature, with a
flag to disable it to recover the paper's plain-SESC behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .config import MemoryConfig


@dataclass(frozen=True)
class MemoryResponse:
    """Outcome of a main-memory access.

    Attributes:
        ready_cycle: cycle at which the requested line is available.
        latency: ``ready_cycle`` minus the request cycle.
        refresh_blocked: True when the request had to wait for a
            refresh window to finish (the Fig. 5 situation).
        bank: DRAM bank that serviced the request.
    """

    ready_cycle: int
    latency: int
    refresh_blocked: bool
    bank: int


class MainMemory:
    """Fixed-latency DRAM with per-bank busy time and burst refresh.

    The model is deliberately simple - a constant device latency plus
    bank serialization - because EMPROF only observes the *duration* of
    the resulting processor stall; what must be faithful is the latency
    distribution (a main mode around ``access_latency`` plus a refresh
    tail), not DDR protocol details.
    """

    def __init__(
        self,
        config: MemoryConfig,
        line_bytes: int = 64,
        rng: Optional[np.random.Generator] = None,
    ):
        self.config = config
        self._line_shift = line_bytes.bit_length() - 1
        self._bank_mask = config.num_banks - 1
        self._bank_free: List[int] = [0] * config.num_banks
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._contended = config.contention_prob > 0.0
        self._row_shift = (
            config.row_bytes.bit_length() - 1 if config.row_buffer_enabled else 0
        )
        self._open_rows: List[int] = [-1] * config.num_banks
        self.accesses = 0
        self.refresh_hits = 0
        self.contention_hits = 0
        self.row_hits = 0
        self.busy_segments: List[tuple] = []

    @staticmethod
    def _window_jitter(k: int, interval: int) -> int:
        """Deterministic per-window start offset (Knuth hash).

        The memory controller schedules refresh opportunistically, so
        successive windows do not start at exact multiples of the
        interval; without this jitter, a periodic workload phase-locks
        to refresh and every collision sees the same wait.
        """
        return ((k * 2654435761) >> 13) % max(1, interval // 8)

    def refresh_window(self, k: int) -> tuple:
        """[start, end) cycles of the k-th refresh window (k >= 1)."""
        cfg = self.config
        start = k * cfg.refresh_interval + self._window_jitter(
            k, cfg.refresh_interval
        )
        return start, start + cfg.refresh_duration

    def _refresh_wait(self, cycle: int) -> int:
        """Cycles until memory leaves the refresh window at ``cycle``.

        Refresh occupies one jittered window per ``refresh_interval``;
        requests inside the window wait for its end.
        """
        cfg = self.config
        if not cfg.refresh_enabled or cycle < cfg.refresh_interval:
            return 0
        for k in (cycle // cfg.refresh_interval, cycle // cfg.refresh_interval - 1):
            if k < 1:
                continue
            start, end = self.refresh_window(k)
            if start <= cycle < end:
                return end - cycle
        return 0

    def access(self, cycle: int, addr: int) -> MemoryResponse:
        """Service a line fetch issued at ``cycle`` for ``addr``."""
        if cycle < 0:
            raise ValueError("access cycle cannot be negative")
        self.accesses += 1
        cfg = self.config
        bank = (addr >> self._line_shift) & self._bank_mask

        start = cycle
        wait = self._refresh_wait(start)
        blocked = wait > 0
        if blocked:
            self.refresh_hits += 1
            start += wait
        # Bank serialization: a bank busy with a previous access delays
        # this one, creating MLP-limited latency growth for bursts.
        start = max(start, self._bank_free[bank])
        # The request could also drift *into* a refresh window while
        # queued behind its bank.
        wait = self._refresh_wait(start)
        if wait:
            if not blocked:
                self.refresh_hits += 1
            blocked = True
            start += wait

        # Contention from other masters (cores, DMA): an occasional
        # exponentially-distributed extra queueing delay.
        if self._contended and self._rng.random() < cfg.contention_prob:
            self.contention_hits += 1
            start += int(self._rng.exponential(cfg.contention_mean_cycles))

        # Open-page policy: hitting the bank's open row skips the
        # precharge+activate cost.
        latency = cfg.access_latency
        if cfg.row_buffer_enabled:
            row = addr >> self._row_shift
            if self._open_rows[bank] == row:
                latency = cfg.row_hit_latency
                self.row_hits += 1
            self._open_rows[bank] = row

        ready = start + latency
        self._bank_free[bank] = start + cfg.bank_busy
        self.busy_segments.append((start, ready))
        return MemoryResponse(
            ready_cycle=ready,
            latency=ready - cycle,
            refresh_blocked=blocked,
            bank=bank,
        )

    def next_refresh(self, cycle: int) -> int:
        """First cycle >= ``cycle`` at which a refresh window starts."""
        cfg = self.config
        if not cfg.refresh_enabled:
            raise RuntimeError("refresh is disabled in this configuration")
        interval = cfg.refresh_interval
        k = max(1, cycle // interval)
        while True:
            start, _ = self.refresh_window(k)
            if start >= cycle:
                return start
            k += 1

    def reset(self) -> None:
        """Clear bank state and statistics."""
        self._bank_free = [0] * self.config.num_banks
        self._open_rows = [-1] * self.config.num_banks
        self.accesses = 0
        self.refresh_hits = 0
        self.contention_hits = 0
        self.row_hits = 0
        self.busy_segments.clear()
