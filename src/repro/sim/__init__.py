"""SESC-like cycle-level machine substrate for EMPROF validation.

Public surface:

* configs: :class:`MachineConfig`, :class:`CoreConfig`,
  :class:`CacheConfig`, :class:`MemoryConfig`, :class:`PowerConfig`
* the machine: :class:`Machine`, :func:`simulate`,
  :class:`SimulationResult`
* ground truth: :class:`GroundTruth`, :class:`MissRecord`,
  :class:`StallRecord`
* instruction builders live in :mod:`repro.sim.isa`
"""

from .cache import Cache, CacheHierarchy, L1, LLC, MEM
from .config import (
    CacheConfig,
    CoreConfig,
    MachineConfig,
    MemoryConfig,
    PowerConfig,
)
from .dram import MainMemory, MemoryResponse
from .machine import Machine, SimulationResult, simulate
from .pipeline import Pipeline
from .power import PowerAccumulator
from .prefetcher import StridePrefetcher
from .tlb import Tlb
from .tracefile import TraceWorkload, record_workload, save_trace
from .trace import (
    CAUSE_DATA_MEM,
    CAUSE_IFETCH_MEM,
    CAUSE_LLC_HIT,
    CAUSE_MSHR_FULL,
    CAUSE_RUNAHEAD,
    CAUSE_STOREBUF,
    GroundTruth,
    MEMORY_CAUSES,
    MissRecord,
    StallRecord,
)

__all__ = [
    "Cache",
    "CacheHierarchy",
    "CacheConfig",
    "CoreConfig",
    "MachineConfig",
    "MemoryConfig",
    "PowerConfig",
    "MainMemory",
    "MemoryResponse",
    "Machine",
    "SimulationResult",
    "simulate",
    "Pipeline",
    "PowerAccumulator",
    "StridePrefetcher",
    "Tlb",
    "TraceWorkload",
    "record_workload",
    "save_trace",
    "GroundTruth",
    "MissRecord",
    "StallRecord",
    "MEMORY_CAUSES",
    "CAUSE_DATA_MEM",
    "CAUSE_IFETCH_MEM",
    "CAUSE_LLC_HIT",
    "CAUSE_MSHR_FULL",
    "CAUSE_RUNAHEAD",
    "CAUSE_STOREBUF",
    "L1",
    "LLC",
    "MEM",
]
