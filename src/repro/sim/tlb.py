"""Data-TLB model with hardware page-walk latency.

The paper's microbenchmark begins by touching every page "to avoid
encountering page faults later" (Section V-B) - address translation
is a real part of the memory behaviour these devices exhibit.  This
model captures the hardware-visible part: a small fully-associative
LRU data TLB whose misses cost a page-walk delay on top of the cache
access.  (OS-level page *faults* are out of scope - the paper's
microbenchmark explicitly engineers them away, and so do the
workloads here.)

Disabled by default (``MachineConfig.tlb_enabled``): the device
calibrations in :mod:`repro.devices` fold typical translation cost
into their memory latencies.  The TLB ablation bench enables it to
show how page-crossing access patterns inflate per-stall latency - a
population shift EMPROF resolves and event counters cannot.
"""

from __future__ import annotations


class Tlb:
    """Fully-associative LRU translation buffer.

    Implemented over an insertion-ordered dict: a hit reinserts the
    page (moving it to the newest position), a miss evicts the oldest
    entry once capacity is reached.
    """

    def __init__(self, entries: int = 64, page_bytes: int = 4096):
        if entries <= 0:
            raise ValueError("TLB needs at least one entry")
        if page_bytes <= 0 or page_bytes & (page_bytes - 1):
            raise ValueError("page size must be a positive power of two")
        self.entries = entries
        self.page_bytes = page_bytes
        self._page_shift = page_bytes.bit_length() - 1
        self._pages: dict = {}
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        """Translate ``addr``; returns True on a TLB hit."""
        page = addr >> self._page_shift
        pages = self._pages
        if page in pages:
            self.hits += 1
            # LRU refresh: move to the newest position.
            del pages[page]
            pages[page] = True
            return True
        self.misses += 1
        if len(pages) >= self.entries:
            # Evict the least recently used page (oldest key).
            pages.pop(next(iter(pages)))
        pages[page] = True
        return False

    def flush(self) -> None:
        """Drop all translations (context switch / reset)."""
        self._pages.clear()

    @property
    def occupancy(self) -> int:
        """Number of cached translations."""
        return len(self._pages)

    def miss_rate(self) -> float:
        """Translation miss rate; zero when untouched."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0
