"""Cycle-level 4-wide in-order core with full stall ground truth.

This is the timing heart of the substrate.  It executes an instruction
stream (see :mod:`repro.sim.isa`) against the cache hierarchy and DRAM
model and produces two artifacts, mirroring the paper's modified SESC
(Section V-C):

* a binned power trace (via :class:`repro.sim.power.PowerAccumulator`),
* a :class:`repro.sim.trace.GroundTruth` with every LLC miss (detect
  cycle, memory-ready cycle) and every fully-stalled interval (begin,
  end, cause, contributing misses).

Timing model
------------

The core issues up to ``width`` instructions per cycle, in order.  The
behaviours the paper depends on are modelled explicitly:

* **ILP past a miss** - a load miss does not stall the core; issue
  continues until (a) the load's first consumer is reached, (b) the
  in-order ``runahead`` window past the oldest outstanding miss is
  exhausted, or (c) MSHRs run out.  Misses whose latency is completely
  hidden produce *no* stall record (Fig. 3a).
* **MLP / overlapped misses** - several misses in flight that force one
  stall yield a single stall record listing all contributing miss ids
  (Fig. 3b).
* **Instruction-fetch misses** - on an I-side LLC miss the front end
  drains the fetch buffer (a short busy span) and then fully stalls
  until the line returns.
* **LLC hits** - an L1 miss that hits the LLC produces only a brief
  stall (Fig. 2a), recorded with a non-memory cause so validators can
  distinguish it from the long main-memory stalls EMPROF targets.
* **DRAM refresh** - a miss that lands in a refresh window is blocked,
  stretching its stall to a few microseconds (Fig. 5); such stalls are
  flagged ``refresh=True``.
"""

from __future__ import annotations

from typing import Iterable, Optional

from .cache import CacheHierarchy, L1, LLC, MEM
from .config import CoreConfig, PowerConfig
from .dram import MainMemory
from .isa import Instr, LOAD, STORE
from .power import PowerAccumulator
from .prefetcher import StridePrefetcher
from .trace import (
    CAUSE_DATA_MEM,
    CAUSE_IFETCH_MEM,
    CAUSE_LLC_HIT,
    CAUSE_MSHR_FULL,
    CAUSE_RUNAHEAD,
    CAUSE_STOREBUF,
    DLOAD,
    DSTORE,
    GroundTruth,
    IFETCH,
    MissRecord,
    StallRecord,
)


class Pipeline:
    """In-order superscalar core bound to a cache hierarchy and DRAM."""

    def __init__(
        self,
        core: CoreConfig,
        power_config: PowerConfig,
        hierarchy: CacheHierarchy,
        memory: MainMemory,
        prefetcher: Optional[StridePrefetcher] = None,
        llc_hit_latency: int = 20,
        line_bytes: int = 64,
        tlb=None,
        tlb_walk_cycles: int = 0,
    ):
        self.core = core
        self.power_config = power_config
        self.hierarchy = hierarchy
        self.memory = memory
        self.prefetcher = prefetcher
        self.llc_hit_latency = llc_hit_latency
        self.tlb = tlb
        self.tlb_walk_cycles = tlb_walk_cycles
        self._line_shift = line_bytes.bit_length() - 1

    def run(
        self, instructions: Iterable[Instr], power: PowerAccumulator
    ) -> GroundTruth:
        """Execute the stream, filling ``power`` and returning ground truth."""
        core = self.core
        width = core.width
        runahead = core.runahead
        # An out-of-order back end does not block at a load's first
        # consumer; only its reorder window (runahead, acting as the
        # ROB size) and MSHR pool bind (Section II-B).
        in_order = not core.out_of_order
        mshr_limit = core.mshr_entries
        store_limit = max(1, core.store_buffer)
        fetch_drain = max(1, core.fetch_buffer // width)
        llc_lat = self.llc_hit_latency
        # Front-end LLC-hit penalty visible past the fetch buffer.
        llc_front_pen = max(0, llc_lat - fetch_drain)
        line_shift = self._line_shift

        lookup_i = self.hierarchy.lookup_instruction
        lookup_d = self.hierarchy.lookup_data
        mem_access = self.memory.access
        prefetcher = self.prefetcher
        tlb = self.tlb
        tlb_walk = self.tlb_walk_cycles
        add_issue = power.add_issue
        add_busy_span = power.add_busy_span
        fetch_share = self.power_config.fetch_level / width
        # Activity level while draining buffered work after an I-miss:
        # the back end is still completing instructions, a bit below
        # full-rate switching.
        drain_level = self.power_config.fetch_level + 0.4

        cur = 0  # current cycle
        slot = 0  # instructions already issued this cycle
        cur_line = -1  # last instruction-cache line touched
        # Outstanding data accesses: [ready_cycle, consumer_idx,
        # issue_idx, miss_id]; miss_id is None for LLC hits.
        pending: list = []
        store_q: list = []  # [ready_cycle, miss_id] outstanding store misses
        misses: list = []
        stalls: list = []
        region_cycles: dict = {}
        cur_region = 0
        region_mark = 0
        count = 0

        for i, ins in enumerate(instructions):
            op, pc, addr, dep, weight, region = ins
            count += 1

            if region != cur_region:
                region_cycles[cur_region] = (
                    region_cycles.get(cur_region, 0) + cur - region_mark
                )
                cur_region = region
                region_mark = cur

            # ---- instruction fetch --------------------------------------
            line = pc >> line_shift
            if line != cur_line:
                cur_line = line
                level = lookup_i(pc)
                if level is not L1:
                    if level is LLC:
                        if llc_front_pen:
                            stalls.append(
                                StallRecord(
                                    len(stalls),
                                    cur,
                                    cur + llc_front_pen,
                                    CAUSE_LLC_HIT,
                                    [],
                                    False,
                                    region,
                                )
                            )
                            cur += llc_front_pen
                            slot = 0
                    else:  # MEM: instruction line comes from DRAM
                        if prefetcher is not None:
                            prefetcher.on_llc_miss(pc)
                        resp = mem_access(cur, pc)
                        mid = len(misses)
                        misses.append(
                            MissRecord(
                                mid,
                                IFETCH,
                                pc,
                                cur,
                                resp.ready_cycle,
                                None,
                                resp.refresh_blocked,
                                region,
                            )
                        )
                        begin = cur + fetch_drain
                        if resp.ready_cycle > begin:
                            add_busy_span(cur, begin, drain_level)
                            contrib = [mid]
                            refresh = resp.refresh_blocked
                            for e in pending:
                                e_mid = e[3]
                                if e_mid is not None and e[0] > begin:
                                    contrib.append(e_mid)
                                    if misses[e_mid].refresh_blocked:
                                        refresh = True
                            sid = len(stalls)
                            stalls.append(
                                StallRecord(
                                    sid,
                                    begin,
                                    resp.ready_cycle,
                                    CAUSE_IFETCH_MEM,
                                    contrib,
                                    refresh,
                                    region,
                                )
                            )
                            for m in contrib:
                                if misses[m].stall_id is None:
                                    misses[m].stall_id = sid
                            cur = resp.ready_cycle
                            slot = 0

            # ---- resolve data-side blocking ------------------------------
            if pending:
                # Drop completed accesses.
                j = 0
                for e in pending:
                    if e[0] > cur:
                        pending[j] = e
                        j += 1
                del pending[j:]
                while pending:
                    block_end = 0
                    block_is_mem = False
                    oldest_issue = -1
                    oldest_entry = None
                    for e in pending:
                        if e[3] is not None and (
                            oldest_entry is None or e[2] < oldest_issue
                        ):
                            oldest_issue = e[2]
                            oldest_entry = e
                        if in_order and e[1] <= i and e[0] > block_end:
                            block_end = e[0]
                            block_is_mem = e[3] is not None
                    cause = CAUSE_DATA_MEM if block_is_mem else CAUSE_LLC_HIT
                    if (
                        block_end == 0
                        and oldest_entry is not None
                        and i - oldest_issue >= runahead
                    ):
                        block_end = oldest_entry[0]
                        cause = CAUSE_RUNAHEAD
                    if block_end <= cur:
                        break
                    sid = len(stalls)
                    if cause is CAUSE_LLC_HIT:
                        contrib = []
                        refresh = False
                    else:
                        contrib = [e[3] for e in pending if e[3] is not None]
                        refresh = any(misses[m].refresh_blocked for m in contrib)
                    stalls.append(
                        StallRecord(sid, cur, block_end, cause, contrib, refresh, region)
                    )
                    for m in contrib:
                        if misses[m].stall_id is None:
                            misses[m].stall_id = sid
                    cur = block_end
                    slot = 0
                    j = 0
                    for e in pending:
                        if e[0] > cur:
                            pending[j] = e
                            j += 1
                    del pending[j:]

            # ---- issue ----------------------------------------------------
            add_issue(cur, weight + fetch_share)
            slot += 1
            if slot >= width:
                cur += 1
                slot = 0

            # ---- data access ----------------------------------------------
            if op == LOAD:
                # Address translation first: a data-TLB miss delays the
                # access by the hardware page-walk latency.
                walk = 0
                if tlb is not None and not tlb.access(addr):
                    walk = tlb_walk
                level = lookup_d(addr)
                if level is L1:
                    if walk:
                        pending.append([cur + walk, i + 1 + dep, i, None])
                elif level is LLC:
                    pending.append([cur + llc_lat + walk, i + 1 + dep, i, None])
                elif level is MEM:
                    if prefetcher is not None:
                        prefetcher.on_llc_miss(addr)
                    # MSHR pressure: block until an entry frees.  The
                    # issue step may have advanced past some entries'
                    # ready cycles, so drop completed ones first.
                    while True:
                        j = 0
                        for e in pending:
                            if e[0] > cur:
                                pending[j] = e
                                j += 1
                        del pending[j:]
                        mem_entries = [e for e in pending if e[3] is not None]
                        if len(mem_entries) < mshr_limit:
                            break
                        free_at = min(e[0] for e in mem_entries)
                        contrib = [e[3] for e in mem_entries]
                        refresh = any(misses[m].refresh_blocked for m in contrib)
                        sid = len(stalls)
                        stalls.append(
                            StallRecord(
                                sid, cur, free_at, CAUSE_MSHR_FULL, contrib, refresh, region
                            )
                        )
                        for m in contrib:
                            if misses[m].stall_id is None:
                                misses[m].stall_id = sid
                        cur = free_at
                        slot = 0
                        j = 0
                        for e in pending:
                            if e[0] > cur:
                                pending[j] = e
                                j += 1
                        del pending[j:]
                    resp = mem_access(cur + walk, addr)
                    mid = len(misses)
                    misses.append(
                        MissRecord(
                            mid,
                            DLOAD,
                            addr,
                            cur,
                            resp.ready_cycle,
                            None,
                            resp.refresh_blocked,
                            region,
                        )
                    )
                    pending.append([resp.ready_cycle, i + 1 + dep, i, mid])
            elif op == STORE:
                walk = 0
                if tlb is not None and not tlb.access(addr):
                    walk = tlb_walk
                level = lookup_d(addr)
                if level is MEM:
                    if prefetcher is not None:
                        prefetcher.on_llc_miss(addr)
                    k = 0
                    for s in store_q:
                        if s[0] > cur:
                            store_q[k] = s
                            k += 1
                    del store_q[k:]
                    if len(store_q) >= store_limit:
                        free_at = min(s[0] for s in store_q)
                        contrib = [s[1] for s in store_q if s[0] <= free_at]
                        refresh = any(misses[m].refresh_blocked for m in contrib)
                        sid = len(stalls)
                        stalls.append(
                            StallRecord(
                                sid, cur, free_at, CAUSE_STOREBUF, contrib, refresh, region
                            )
                        )
                        for m in contrib:
                            if misses[m].stall_id is None:
                                misses[m].stall_id = sid
                        cur = free_at
                        slot = 0
                        store_q = [s for s in store_q if s[0] > cur]
                    resp = mem_access(cur + walk, addr)
                    mid = len(misses)
                    misses.append(
                        MissRecord(
                            mid,
                            DSTORE,
                            addr,
                            cur,
                            resp.ready_cycle,
                            None,
                            resp.refresh_blocked,
                            region,
                        )
                    )
                    store_q.append([resp.ready_cycle, mid])

        total_cycles = cur + (1 if slot else 0)
        region_cycles[cur_region] = (
            region_cycles.get(cur_region, 0) + total_cycles - region_mark
        )
        if total_cycles > 0:
            power.note_cycle(total_cycles - 1)
        return GroundTruth(
            misses=misses,
            stalls=stalls,
            total_cycles=total_cycles,
            total_instructions=count,
            region_cycles=region_cycles,
        )
