"""Set-associative caches with random replacement.

The paper's simulated machine uses "two levels of caches with random
replacement policies" (Section III-B).  Random replacement is also what
the Cortex-A8/A7/A5 parts in Table I implement for their L1/L2 caches,
so the same model serves both the SESC-validation experiments and the
device models.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .config import CacheConfig

# Access outcome levels returned by CacheHierarchy.lookup().
L1 = "L1"
LLC = "LLC"
MEM = "MEM"


class Cache:
    """One level of set-associative cache with random replacement.

    Tags are stored per set in plain Python lists; associativities in
    IoT-class parts are small (4-8 ways) so linear tag search is both
    simple and fast.
    """

    def __init__(self, config: CacheConfig, rng: Optional[np.random.Generator] = None):
        self.config = config
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._num_sets = config.num_sets
        self._set_mask = self._num_sets - 1
        self._line_shift = config.line_bytes.bit_length() - 1
        self._power_of_two_sets = self._num_sets & (self._num_sets - 1) == 0
        self._sets: List[List[int]] = [[] for _ in range(self._num_sets)]
        self.hits = 0
        self.misses = 0

    def _index_tag(self, addr: int) -> tuple:
        line = addr >> self._line_shift
        if self._power_of_two_sets:
            index = line & self._set_mask
        else:
            index = line % self._num_sets
        return index, line

    def access(self, addr: int) -> bool:
        """Look up ``addr``; allocate the line on a miss.

        Returns True on a hit.  The line (not the byte address) is the
        unit of lookup, so any two addresses on the same line hit each
        other.
        """
        index, tag = self._index_tag(addr)
        ways = self._sets[index]
        if tag in ways:
            self.hits += 1
            return True
        self.misses += 1
        self._insert(index, tag)
        return False

    def probe(self, addr: int) -> bool:
        """Check residency without updating state or statistics."""
        index, tag = self._index_tag(addr)
        return tag in self._sets[index]

    def fill(self, addr: int) -> None:
        """Install a line without counting a demand access (prefetch)."""
        index, tag = self._index_tag(addr)
        ways = self._sets[index]
        if tag not in ways:
            self._insert(index, tag)

    def invalidate(self, addr: int) -> bool:
        """Drop a line if present; returns True if it was resident."""
        index, tag = self._index_tag(addr)
        ways = self._sets[index]
        if tag in ways:
            ways.remove(tag)
            return True
        return False

    def _insert(self, index: int, tag: int) -> None:
        ways = self._sets[index]
        if len(ways) >= self.config.associativity:
            victim = int(self._rng.integers(0, len(ways)))
            ways[victim] = tag
        else:
            ways.append(tag)

    def flush(self) -> None:
        """Empty the cache (cold restart)."""
        for ways in self._sets:
            ways.clear()

    @property
    def accesses(self) -> int:
        """Total demand accesses observed."""
        return self.hits + self.misses

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(len(ways) for ways in self._sets)

    def miss_rate(self) -> float:
        """Demand miss rate; zero when the cache is untouched."""
        total = self.accesses
        return self.misses / total if total else 0.0


class CacheHierarchy:
    """L1 I-cache + L1 D-cache backed by a unified LLC.

    ``lookup_*`` methods return the level that serviced the access:
    ``L1`` (hit in the first level), ``LLC`` (L1 miss, LLC hit) or
    ``MEM`` (miss in both - a main-memory access, the event EMPROF is
    built to observe).
    """

    def __init__(
        self,
        l1i: CacheConfig,
        l1d: CacheConfig,
        llc: CacheConfig,
        rng: Optional[np.random.Generator] = None,
    ):
        rng = rng if rng is not None else np.random.default_rng(0)
        # Independent generator streams keep replacement decisions in one
        # cache from perturbing another when configurations change.
        self.l1i = Cache(l1i, np.random.default_rng(rng.integers(0, 2**63)))
        self.l1d = Cache(l1d, np.random.default_rng(rng.integers(0, 2**63)))
        self.llc = Cache(llc, np.random.default_rng(rng.integers(0, 2**63)))

    def lookup_instruction(self, addr: int) -> str:
        """Instruction-fetch path: L1I then unified LLC."""
        if self.l1i.access(addr):
            return L1
        if self.llc.access(addr):
            return LLC
        return MEM

    def lookup_data(self, addr: int) -> str:
        """Data path (loads and stores): L1D then unified LLC."""
        if self.l1d.access(addr):
            return L1
        if self.llc.access(addr):
            return LLC
        return MEM

    def llc_resident(self, addr: int) -> bool:
        """Non-mutating residency probe of the LLC."""
        return self.llc.probe(addr)

    def flush(self) -> None:
        """Cold-start all levels."""
        self.l1i.flush()
        self.l1d.flush()
        self.llc.flush()
