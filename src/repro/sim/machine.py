"""Machine assembly: config -> caches + DRAM + core, and the run loop.

:class:`Machine` is the top-level simulator object.  Given a workload
(anything exposing ``instructions(config) -> iterable of Instr``), it
returns a :class:`SimulationResult` holding the power side-channel
trace and the ground-truth miss/stall records - the two artifacts the
EMPROF validation methodology needs (Section V-C).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Union

import numpy as np

from ..obs import metrics as _metrics, trace as _trace
from ..obs.runtime import obs_enabled
from ..workloads.base import Workload
from .cache import CacheHierarchy
from .config import MachineConfig
from .dram import MainMemory
from .isa import Instr
from .pipeline import Pipeline
from .power import PowerAccumulator
from .prefetcher import StridePrefetcher
from .tlb import Tlb
from .trace import GroundTruth

_SIM_CYCLES = _metrics.counter(
    "sim_cycles_total", "processor cycles simulated across all runs"
)
_SIM_INSTRUCTIONS = _metrics.counter(
    "sim_instructions_total", "instructions simulated across all runs"
)
_SIM_POWER_SAMPLES = _metrics.counter(
    "sim_power_samples_total", "power-trace samples emitted across all runs"
)
_SIM_CPS = _metrics.gauge(
    "sim_cycles_per_second", "simulated cycles per wall second, last run"
)


@dataclass
class SimulationResult:
    """Everything a run produces.

    Attributes:
        power_trace: per-bin average activity (the side-channel signal
            before the EM channel model is applied).
        sample_rate_hz: sampling rate of ``power_trace``.
        ground_truth: per-miss and per-stall records.
        config: the machine configuration used.
        stats: cache/memory counters for sanity checks.
    """

    power_trace: np.ndarray
    sample_rate_hz: float
    ground_truth: GroundTruth
    config: MachineConfig
    stats: Dict[str, float]

    @property
    def duration_seconds(self) -> float:
        """Simulated wall-clock duration."""
        return self.ground_truth.total_cycles / self.config.clock_hz

    @property
    def sample_period_cycles(self) -> int:
        """Processor cycles represented by one power sample."""
        return self.config.power.bin_cycles


class Machine:
    """A configured device: core + caches + DRAM + power accounting."""

    def __init__(self, config: MachineConfig, seed: int = 0):
        self.config = config
        self._seed = seed
        rng = np.random.default_rng(seed)
        self.hierarchy = CacheHierarchy(config.l1i, config.l1d, config.llc, rng)
        self.memory = MainMemory(
            config.memory,
            config.line_bytes,
            rng=np.random.default_rng(rng.integers(0, 2**63)),
        )
        self.prefetcher: Optional[StridePrefetcher] = None
        if config.prefetcher_enabled:
            self.prefetcher = StridePrefetcher(
                self.hierarchy.llc, config.prefetch_degree
            )
        self.tlb: Optional[Tlb] = None
        if config.tlb_enabled:
            self.tlb = Tlb(config.tlb_entries, config.tlb_page_bytes)
        self.pipeline = Pipeline(
            config.core,
            config.power,
            self.hierarchy,
            self.memory,
            self.prefetcher,
            llc_hit_latency=config.llc.hit_latency,
            line_bytes=config.line_bytes,
            tlb=self.tlb,
            tlb_walk_cycles=config.tlb_walk_cycles,
        )

    def run(self, workload: Union[Workload, Iterable[Instr]]) -> SimulationResult:
        """Execute ``workload`` from cold caches and collect results."""
        if not obs_enabled():
            return self._run_impl(workload)
        t0 = time.perf_counter()
        with _trace.span(
            "sim.run", workload=getattr(workload, "name", type(workload).__name__)
        ) as span:
            result = self._run_impl(workload)
            span.set_attr(cycles=result.ground_truth.total_cycles)
        elapsed = time.perf_counter() - t0
        truth = result.ground_truth
        _SIM_CYCLES.inc(truth.total_cycles)
        _SIM_INSTRUCTIONS.inc(truth.total_instructions)
        _SIM_POWER_SAMPLES.inc(len(result.power_trace))
        if elapsed > 0:
            _SIM_CPS.set(truth.total_cycles / elapsed)
        return result

    def _run_impl(self, workload: Union[Workload, Iterable[Instr]]) -> SimulationResult:
        """The uninstrumented run loop (see :meth:`run`)."""
        region_names: Dict[int, str] = {}
        if isinstance(workload, Workload) or hasattr(workload, "instructions"):
            stream = workload.instructions(self.config)
            region_names = dict(getattr(workload, "region_names", {}) or {})
        else:
            stream = iter(workload)

        power = PowerAccumulator(self.config.power)
        truth = self.pipeline.run(stream, power)
        truth.region_names = region_names
        trace = power.finalize(truth.total_cycles)

        llc = self.hierarchy.llc
        stats = {
            "l1i_misses": float(self.hierarchy.l1i.misses),
            "l1d_misses": float(self.hierarchy.l1d.misses),
            "llc_misses": float(llc.misses),
            "llc_accesses": float(llc.accesses),
            "llc_miss_rate": llc.miss_rate(),
            "memory_accesses": float(self.memory.accesses),
            "refresh_blocked": float(self.memory.refresh_hits),
            "contention_hits": float(self.memory.contention_hits),
            "prefetches": float(self.prefetcher.issued) if self.prefetcher else 0.0,
            "tlb_misses": float(self.tlb.misses) if self.tlb else 0.0,
        }
        return SimulationResult(
            power_trace=trace,
            sample_rate_hz=self.config.sample_rate_hz,
            ground_truth=truth,
            config=self.config,
            stats=stats,
        )

    def reset(self) -> None:
        """Cold-restart caches and memory for an independent run."""
        self.hierarchy.flush()
        self.memory.reset()
        if self.prefetcher is not None:
            self.prefetcher.reset()
        if self.tlb is not None:
            self.tlb.flush()


def simulate(
    workload: Union[Workload, Iterable[Instr]],
    config: Optional[MachineConfig] = None,
    seed: int = 0,
) -> SimulationResult:
    """One-shot convenience: build a Machine, run, return the result."""
    machine = Machine(config if config is not None else MachineConfig(), seed=seed)
    return machine.run(workload)
