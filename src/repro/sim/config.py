"""Configuration objects for the cycle-level machine model.

The simulator mirrors the substrate the EMPROF paper validates against:
a SESC-style 4-wide in-order core with a two-level cache hierarchy using
random replacement, MSHR-based memory-level parallelism, and a DRAM main
memory with periodic refresh (Sections III-B and V-C of the paper).

Every quantity is expressed in processor cycles unless the name says
otherwise.  Device presets (Alcatel / Samsung / Olimex from Table I) are
built on top of these configs in :mod:`repro.devices.models`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level.

    Attributes:
        size_bytes: total capacity of the cache.
        line_bytes: cache line size; must be a power of two.
        associativity: number of ways per set.
        hit_latency: load-to-use latency of a hit, in cycles.
    """

    size_bytes: int
    line_bytes: int = 64
    associativity: int = 4
    hit_latency: int = 2

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("cache size must be positive")
        if self.line_bytes <= 0 or self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line size must be a positive power of two")
        if self.associativity <= 0:
            raise ValueError("associativity must be positive")
        if self.size_bytes % (self.line_bytes * self.associativity):
            raise ValueError(
                "cache size must be a multiple of line_bytes * associativity"
            )
        if self.hit_latency < 1:
            raise ValueError("hit latency must be at least one cycle")

    @property
    def num_sets(self) -> int:
        """Number of sets implied by size, line size and associativity."""
        return self.size_bytes // (self.line_bytes * self.associativity)


@dataclass(frozen=True)
class MemoryConfig:
    """DRAM timing model.

    ``refresh_interval`` / ``refresh_duration`` model the burst-refresh
    behaviour the paper observes on the Olimex board's H5TQ2G63BFR part:
    a refresh window at least every ~70 us during which an LLC miss is
    blocked, inflating its stall to 2-3 us (Fig. 5).

    ``contention_prob`` / ``contention_mean_cycles`` model interference
    from agents the profiled program does not control - other cores,
    DMA engines, the GPU.  Each access is independently delayed with
    this probability by an exponentially-distributed number of cycles.
    The multi-core Android phones get nonzero contention, which is what
    thickens their stall-latency tails relative to the single-core IoT
    board (Fig. 11).

    ``row_buffer_enabled`` adds an open-page policy: a bank keeps its
    last-accessed ``row_bytes`` row open, and a hit to it pays only
    ``row_hit_latency`` instead of the full precharge+activate
    ``access_latency``.  Off by default - the paper's devices were
    calibrated with a single-mode latency; the row-buffer ablation
    bench turns it on to show that EMPROF's per-stall latency (unlike
    event counters) resolves the two latency populations.
    """

    access_latency: int = 180
    num_banks: int = 8
    bank_busy: int = 24
    refresh_interval: int = 70_000
    refresh_duration: int = 2_400
    refresh_enabled: bool = True
    contention_prob: float = 0.0
    contention_mean_cycles: float = 120.0
    row_buffer_enabled: bool = False
    row_hit_latency: int = 110
    row_bytes: int = 8192

    def __post_init__(self) -> None:
        if self.access_latency <= 0:
            raise ValueError("memory access latency must be positive")
        if self.row_buffer_enabled:
            if not 0 < self.row_hit_latency <= self.access_latency:
                raise ValueError(
                    "row-hit latency must be positive and no larger than the "
                    "full (row-miss) access latency"
                )
            if self.row_bytes <= 0 or self.row_bytes & (self.row_bytes - 1):
                raise ValueError("row size must be a positive power of two")
        if not 0.0 <= self.contention_prob <= 1.0:
            raise ValueError("contention probability must be in [0, 1]")
        if self.contention_mean_cycles < 0:
            raise ValueError("contention delay cannot be negative")
        if self.num_banks <= 0 or self.num_banks & (self.num_banks - 1):
            raise ValueError("number of banks must be a positive power of two")
        if self.bank_busy < 0:
            raise ValueError("bank busy time cannot be negative")
        if self.refresh_enabled:
            if self.refresh_interval <= 0:
                raise ValueError("refresh interval must be positive")
            if not 0 < self.refresh_duration < self.refresh_interval:
                raise ValueError(
                    "refresh duration must be positive and shorter than the "
                    "refresh interval"
                )


@dataclass(frozen=True)
class CoreConfig:
    """In-order superscalar core parameters.

    Attributes:
        width: maximum instructions issued per cycle.
        mshr_entries: outstanding LLC misses the core can sustain (MLP).
        runahead: independent instructions the core can issue past an
            outstanding data miss before its in-order resources (queues,
            scoreboard) fill up and it fully stalls.  This is the knob
            that produces the "miss with no attributable stall"
            behaviour of Fig. 3a.
        fetch_buffer: instructions the front end can hold; on an
            instruction-fetch LLC miss the core drains this buffer
            before the full stall begins.
        store_buffer: store misses that can be buffered without
            stalling the core.
        out_of_order: model an out-of-order back end (Section II-B).
            An OoO core does not block at a load's first consumer - it
            keeps issuing independent work until its reorder window
            (``runahead``, acting as the ROB size) or MSHRs run out,
            so short stalls can vanish entirely from the stall record.
            In-order cores (the paper's IoT/hand-held targets) block
            at the consumer.
    """

    width: int = 4
    mshr_entries: int = 4
    runahead: int = 2048
    fetch_buffer: int = 12
    store_buffer: int = 8
    out_of_order: bool = False

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("issue width must be positive")
        if self.mshr_entries <= 0:
            raise ValueError("at least one MSHR entry is required")
        if self.runahead < 0:
            raise ValueError("runahead cannot be negative")
        if self.fetch_buffer < 0:
            raise ValueError("fetch buffer cannot be negative")
        if self.store_buffer < 0:
            raise ValueError("store buffer cannot be negative")


@dataclass(frozen=True)
class PowerConfig:
    """Activity-to-power accounting (Section III-B).

    The simulator accumulates per-cycle switching activity into fixed
    windows of ``bin_cycles`` cycles, exactly like the paper's modified
    SESC collects "average power consumption for each 20-cycle
    interval" (a 50 MHz sampling rate at 1 GHz).

    ``idle_level`` is the floor a fully-stalled processor sits at
    (clock tree and leakage); ``fetch_level`` is front-end activity per
    busy cycle; per-instruction weights come from the instruction
    stream itself.
    """

    bin_cycles: int = 20
    idle_level: float = 0.12
    fetch_level: float = 0.30
    issue_level: float = 0.18

    def __post_init__(self) -> None:
        if self.bin_cycles <= 0:
            raise ValueError("power bin width must be positive")
        if self.idle_level < 0:
            raise ValueError("idle level cannot be negative")
        if not 0 <= self.idle_level < 1.5:
            raise ValueError("idle level out of plausible range")


@dataclass(frozen=True)
class MachineConfig:
    """Complete machine: core, caches, memory, power accounting.

    ``clock_hz`` converts cycle counts to wall time; it is also the EM
    carrier frequency the signal chain synthesizes around.
    """

    clock_hz: float = 1.008e9
    core: CoreConfig = field(default_factory=CoreConfig)
    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(32 * 1024))
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(32 * 1024))
    llc: CacheConfig = field(
        default_factory=lambda: CacheConfig(256 * 1024, associativity=8, hit_latency=20)
    )
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    power: PowerConfig = field(default_factory=PowerConfig)
    prefetcher_enabled: bool = False
    prefetch_degree: int = 2
    tlb_enabled: bool = False
    tlb_entries: int = 64
    tlb_page_bytes: int = 4096
    tlb_walk_cycles: int = 40
    name: str = "default"

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ValueError("clock frequency must be positive")
        if self.tlb_enabled:
            if self.tlb_entries <= 0:
                raise ValueError("TLB needs at least one entry")
            if self.tlb_walk_cycles < 0:
                raise ValueError("page-walk latency cannot be negative")
        if self.l1i.line_bytes != self.llc.line_bytes:
            raise ValueError("L1I and LLC line sizes must match")
        if self.l1d.line_bytes != self.llc.line_bytes:
            raise ValueError("L1D and LLC line sizes must match")
        if self.llc.size_bytes < self.l1d.size_bytes:
            raise ValueError("LLC must be at least as large as L1D")
        if self.prefetch_degree < 0:
            raise ValueError("prefetch degree cannot be negative")

    @property
    def line_bytes(self) -> int:
        """Cache line size shared by the whole hierarchy."""
        return self.llc.line_bytes

    @property
    def sample_rate_hz(self) -> float:
        """Native sampling rate of the power side-channel trace."""
        return self.clock_hz / self.power.bin_cycles

    def cycles(self, seconds: float) -> int:
        """Convert a wall-clock duration to whole processor cycles."""
        return int(round(seconds * self.clock_hz))

    def seconds(self, cycles: float) -> float:
        """Convert a cycle count to wall-clock seconds."""
        return cycles / self.clock_hz

    def with_bandwidth_bins(self, bin_cycles: int) -> "MachineConfig":
        """Return a copy whose power trace uses ``bin_cycles``-cycle bins."""
        return replace(self, power=replace(self.power, bin_cycles=bin_cycles))
