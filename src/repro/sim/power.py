"""Activity accumulation into a windowed power trace.

The paper's modified SESC collects "the average power consumption for
each 20-cycle interval, which corresponds to a 50 MHz sampling rate for
a 1 GHz processor" (Section III-B).  :class:`PowerAccumulator` does the
same: per-cycle switching activity is folded into fixed-width bins, and
the finished trace is the side-channel signal EMPROF analyzes in the
simulator-validation experiments.

Stalled cycles contribute only the idle floor (clock tree + leakage);
busy cycles add front-end activity plus the per-instruction weights of
everything issued that cycle.  That asymmetry *is* the physical
phenomenon EMPROF exploits: "the processor's circuitry exhibits much
less switching activity when a processor has been stalled for a while"
(Section II-A).
"""

from __future__ import annotations

import numpy as np

from .config import PowerConfig


class PowerAccumulator:
    """Builds the binned power trace during simulation.

    Written for a single forward pass through time: activity is folded
    into a growing list of bins indexed by ``cycle // bin_cycles``.
    Plain Python lists are used in the hot path (the pipeline calls
    :meth:`add_issue` once per instruction); the result is converted to
    a numpy array once at :meth:`finalize`.
    """

    def __init__(self, config: PowerConfig):
        self.config = config
        self._bin_cycles = config.bin_cycles
        self._bins: list = [0.0] * 4096
        self._max_cycle = 0

    def _ensure(self, bin_index: int) -> None:
        if bin_index >= len(self._bins):
            grow = max(len(self._bins), bin_index + 1 - len(self._bins))
            self._bins.extend([0.0] * grow)

    def add_issue(self, cycle: int, weight: float) -> None:
        """Record one instruction issued at ``cycle`` with ``weight``."""
        idx = cycle // self._bin_cycles
        bins = self._bins
        if idx >= len(bins):
            self._ensure(idx)
        bins[idx] += weight
        if cycle >= self._max_cycle:
            self._max_cycle = cycle + 1

    def add_busy_span(self, begin: int, end: int, level: float) -> None:
        """Add ``level`` activity per cycle over cycles [begin, end).

        Used for drain periods where the core is finishing buffered
        work without a corresponding instruction record (e.g. the few
        cycles after an instruction-fetch miss before the full stall).
        """
        if end <= begin:
            return
        bc = self._bin_cycles
        first = begin // bc
        last = (end - 1) // bc
        self._ensure(last)
        bins = self._bins
        if first == last:
            bins[first] += (end - begin) * level
        else:
            bins[first] += (bc * (first + 1) - begin) * level
            full = bc * level
            for idx in range(first + 1, last):
                bins[idx] += full
            bins[last] += (end - bc * last) * level
        if end > self._max_cycle:
            self._max_cycle = end

    def note_cycle(self, cycle: int) -> None:
        """Extend the trace to cover ``cycle`` without adding activity."""
        if cycle >= self._max_cycle:
            self._max_cycle = cycle + 1
            self._ensure(cycle // self._bin_cycles)

    def finalize(self, total_cycles: int) -> np.ndarray:
        """Return the finished power trace as per-bin average activity.

        A fully-stalled bin sits exactly at ``idle_level``; a saturated
        busy bin sits near ``idle_level + fetch_level + width * mean
        instruction weight``.
        """
        if total_cycles < self._max_cycle:
            total_cycles = self._max_cycle
        nbins = max(1, -(-total_cycles // self._bin_cycles))
        self._ensure(nbins - 1)
        trace = np.asarray(self._bins[:nbins], dtype=np.float64) / self._bin_cycles
        return trace + self.config.idle_level

    @property
    def bin_cycles(self) -> int:
        """Width of one power sample, in cycles."""
        return self._bin_cycles
