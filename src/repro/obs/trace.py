"""Span-based tracing for the EMPROF pipeline.

A *span* is one timed, named region of execution (``normalize``,
``detect``, ``sim.run`` ...) with optional attributes (sample counts,
stall counts).  Spans nest: the tracer keeps a per-thread stack, so a
``detect`` span entered while a ``profile`` span is open records
``profile`` as its parent.  The result is a flat list of records that
exports losslessly to JSON and to the Chrome ``chrome://tracing`` /
Perfetto event format.

The tracer is process-global (:data:`repro.obs.trace`), thread-safe,
and - like everything in this package - inert unless ``EMPROF_OBS``
is enabled: :meth:`Tracer.span` returns a shared do-nothing context
manager, so instrumented code pays one flag check and nothing else.

Usage::

    from repro.obs import trace

    with trace.span("detect", samples=len(x)):
        ...

    @trace.wrap("experiment")          # late-binding decorator form
    def run_experiment(...): ...
"""

from __future__ import annotations

import functools
import json
import os
import threading
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, TypeVar

from . import runtime, tracectx

F = TypeVar("F", bound=Callable[..., Any])

#: Hard cap on retained spans; beyond it new spans are counted but
#: dropped, so an unbounded streaming run cannot exhaust memory.
DEFAULT_MAX_SPANS = 200_000

_ATTR_TYPES = (str, int, float, bool)


def _clean_attrs(attrs: Dict[str, Any]) -> Dict[str, Any]:
    """Coerce attribute values to JSON-safe scalars."""
    return {
        key: value if isinstance(value, _ATTR_TYPES) else str(value)
        for key, value in attrs.items()
    }


@dataclass(frozen=True)
class SpanRecord:
    """One completed span.

    Attributes:
        span_id: unique id within the tracer's lifetime.
        parent_id: id of the enclosing span on the same thread, or
            None for a root span.
        name: the region's name.
        begin_s / end_s: seconds since the tracer's origin (a
            monotonic clock; wall-clock anchoring is deliberately not
            attempted).
        depth: nesting depth on its thread (0 for roots).
        thread_id: ``threading.get_ident()`` of the recording thread.
        attrs: user-supplied attributes.
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    begin_s: float
    end_s: float
    depth: int
    thread_id: int
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        """Span length in seconds."""
        return self.end_s - self.begin_s

    def to_dict(self) -> Dict[str, Any]:
        """JSON-pure representation (the JSON exporter's row format)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "begin_s": self.begin_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "depth": self.depth,
            "thread_id": self.thread_id,
            "attrs": dict(self.attrs),
        }


class _NullSpan:
    """Shared no-op span: the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False

    def set_attr(self, **attrs: Any) -> None:
        """Ignore attributes (tracing is disabled)."""


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """An open span; created only when tracing is enabled."""

    __slots__ = (
        "_tracer",
        "_name",
        "_attrs",
        "_begin_s",
        "_span_id",
        "_parent_id",
        "_depth",
        "_mem_begin",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def set_attr(self, **attrs: Any) -> None:
        """Attach attributes discovered mid-span (e.g. result counts)."""
        self._attrs.update(attrs)

    def __enter__(self) -> "_ActiveSpan":
        tracer = self._tracer
        stack = tracer._stack()
        self._parent_id = stack[-1][0] if stack else None
        self._depth = len(stack)
        self._span_id = tracer._allocate_id()
        stack.append((self._span_id, self._name))
        if tracer.capture_memory and tracemalloc.is_tracing():
            # Per-span high-water: reset the shared peak on entry, so
            # the peak read on exit is "since this span began".  Note
            # the caveat: nested spans share tracemalloc's single peak
            # counter, so an inner span's entry re-anchors the outer
            # span's window too (documented in profilehooks).
            tracemalloc.reset_peak()
            self._mem_begin = tracemalloc.get_traced_memory()[0]
        else:
            self._mem_begin = None
        self._begin_s = time.perf_counter() - tracer._origin
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        tracer = self._tracer
        end = time.perf_counter() - tracer._origin
        if self._mem_begin is not None and tracemalloc.is_tracing():
            current, peak = tracemalloc.get_traced_memory()
            self._attrs["mem_peak_bytes"] = int(peak)
            self._attrs["mem_alloc_bytes"] = int(current - self._mem_begin)
        stack = tracer._stack()
        if stack and stack[-1][0] == self._span_id:
            stack.pop()
        tracer._record(
            SpanRecord(
                span_id=self._span_id,
                parent_id=self._parent_id,
                name=self._name,
                begin_s=self._begin_s,
                end_s=end,
                depth=self._depth,
                thread_id=threading.get_ident(),
                attrs=_clean_attrs(self._attrs),
            )
        )
        return False


class Tracer:
    """Thread-safe span collector with JSON and Chrome exporters.

    One process-global instance lives at :data:`repro.obs.trace`;
    constructing private tracers (for tests, or to trace one workload
    in isolation) is supported and cheap.
    """

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS):
        if max_spans < 1:
            raise ValueError("max_spans must be at least 1")
        self.max_spans = int(max_spans)
        #: When True (see :mod:`repro.obs.profilehooks`), every span
        #: records tracemalloc high-water marks into its attrs.
        self.capture_memory = False
        self._lock = threading.Lock()
        self._local = threading.local()
        self._process_label = "main"
        self._spans: List[SpanRecord] = []
        self._dropped = 0
        self._next_id = 0
        self._origin = time.perf_counter()

    def set_process_label(self, label: str) -> str:
        """Name this process in exported payloads (``worker0`` ...)."""
        with self._lock:
            previous, self._process_label = self._process_label, str(label)
        return previous

    def current_span_token(self) -> Optional[str]:
        """Globalized id (``"<pid>:<span_id>"``) of the innermost open
        span on this thread, or None.

        This is what a parent process passes to
        :meth:`repro.obs.tracectx.TraceContext.child` so child-process
        root spans stitch under the right parent.
        """
        stack = self._stack()
        if not stack:
            return None
        return f"{os.getpid()}:{stack[-1][0]}"

    # -- recording ---------------------------------------------------------

    def _stack(self) -> List[Tuple[int, str]]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _allocate_id(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return span_id

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            if len(self._spans) >= self.max_spans:
                self._dropped += 1
            else:
                self._spans.append(record)

    def span(self, name: str, **attrs: Any):
        """Open a span; use as ``with trace.span("detect", samples=n):``.

        Returns the shared no-op span when observability is disabled,
        so the call costs one flag check on the hot path.
        """
        if not runtime._enabled:
            return _NULL_SPAN
        return _ActiveSpan(self, name, dict(attrs))

    def wrap(self, name: Optional[str] = None, **attrs: Any) -> Callable[[F], F]:
        """Decorator form; the span is opened per call, *late-bound*.

        Unlike decorating with :meth:`span` directly, the enabled flag
        is consulted at each call, so instrumentation toggled on after
        import still takes effect.
        """

        def decorate(func: F) -> F:
            span_name = name if name is not None else func.__qualname__

            @functools.wraps(func)
            def wrapper(*args: Any, **kwargs: Any) -> Any:
                if not runtime._enabled:
                    return func(*args, **kwargs)
                with self.span(span_name, **attrs):
                    return func(*args, **kwargs)

            return wrapper  # type: ignore[return-value]

        return decorate

    # -- inspection --------------------------------------------------------

    def records(self) -> List[SpanRecord]:
        """Completed spans, in completion order (a copy)."""
        with self._lock:
            return list(self._spans)

    @property
    def dropped(self) -> int:
        """Spans discarded because ``max_spans`` was reached."""
        with self._lock:
            return self._dropped

    def by_name(self, name: str) -> List[SpanRecord]:
        """Completed spans named ``name``."""
        return [r for r in self.records() if r.name == name]

    def aggregate(self) -> Dict[str, Dict[str, float]]:
        """Per-name rollup: count, total and mean duration (seconds)."""
        out: Dict[str, Dict[str, float]] = {}
        for record in self.records():
            row = out.setdefault(record.name, {"count": 0.0, "total_s": 0.0})
            row["count"] += 1.0
            row["total_s"] += record.duration_s
        for row in out.values():
            row["mean_s"] = row["total_s"] / row["count"]
        return out

    def reset(self) -> None:
        """Discard all spans and restart ids and the time origin."""
        with self._lock:
            self._spans = []
            self._dropped = 0
            self._next_id = 0
            self._origin = time.perf_counter()
            # Rebuild the per-thread stacks too: a forked worker
            # inherits the parent's open spans (the campaign span is
            # active at fork time), and its fresh root span must not
            # adopt a stale parent id from that ghost stack.
            self._local = threading.local()

    # -- exporters ---------------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """The JSON exporter's document (a JSON-pure dict).

        Version 2 adds the process identity block (``trace_id`` /
        ``parent_span_id`` from the active :mod:`repro.obs.tracectx`
        context, ``pid``, ``process``) that ``repro-obs stitch`` keys
        on; version-1 consumers that only read ``spans``/``dropped``
        are unaffected.
        """
        with self._lock:
            spans = list(self._spans)
            dropped = self._dropped
            process_label = self._process_label
        context = tracectx.peek()
        return {
            "format": "repro-obs-trace",
            "version": 2,
            "trace_id": context.trace_id if context is not None else None,
            "parent_span_id": (
                context.parent_span_id if context is not None else None
            ),
            "pid": os.getpid(),
            "process": process_label,
            "dropped": dropped,
            "spans": [r.to_dict() for r in spans],
        }

    def export_json(self, indent: Optional[int] = 2) -> str:
        """Serialize all spans as the native JSON document."""
        return json.dumps(self.to_payload(), indent=indent)

    def export_chrome(self, indent: Optional[int] = None) -> str:
        """Serialize as Chrome ``chrome://tracing`` JSON.

        Load the file via chrome://tracing "Load" or https://ui.perfetto.dev;
        spans appear as complete ("ph": "X") events, one track per thread.
        """
        pid = os.getpid()
        events = []
        for record in self.records():
            events.append(
                {
                    "name": record.name,
                    "ph": "X",
                    "ts": record.begin_s * 1e6,
                    "dur": record.duration_s * 1e6,
                    "pid": pid,
                    "tid": record.thread_id,
                    "args": dict(record.attrs),
                }
            )
        return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"}, indent=indent)

    def write(self, path: str, fmt: str = "json") -> None:
        """Write the trace to ``path`` in ``fmt`` ('json' or 'chrome')."""
        if fmt == "json":
            payload = self.export_json()
        elif fmt == "chrome":
            payload = self.export_chrome()
        else:
            raise ValueError(f"unknown trace format {fmt!r}; use 'json' or 'chrome'")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(payload)
