"""Cross-process trace context: one trace id across a process tree.

The tracer (:mod:`repro.obs.trace`) is process-local: each campaign
worker collects its own spans into its own file.  This module is the
glue that lets those files *stitch* back into one trace:

* a :class:`TraceContext` is a ``(trace_id, parent_span_id)`` pair.
  The parent process creates one (:func:`current` mints a fresh
  16-hex-digit trace id on first use), opens its campaign span, and
  hands children a context whose ``parent_span_id`` names that span;
* propagation is by **environment** (``EMPROF_TRACE_ID`` /
  ``EMPROF_PARENT_SPAN``, see :meth:`TraceContext.to_env`) or by
  **argv** (:meth:`TraceContext.to_cli_args` produces the
  ``--trace-id``/``--parent-span`` flags ``repro profile`` accepts) -
  both survive ``fork`` *and* ``spawn`` *and* plain subprocesses;
* :func:`stitch_traces` merges per-process trace payloads (plus,
  optionally, an NDJSON event stream) into one document keyed by the
  shared trace id, with span ids globalized as ``"<pid>:<span_id>"``
  so cross-process parent links resolve; heartbeat events are rolled
  into per-worker liveness rows (``max_gap_s`` / ``end_gap_s``) that
  make a killed worker visible at a glance.

``repro-obs stitch`` is the CLI face of the last step.
"""

from __future__ import annotations

import os
import threading
import uuid
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, MutableMapping, Optional

ENV_TRACE_ID = "EMPROF_TRACE_ID"
ENV_PARENT_SPAN = "EMPROF_PARENT_SPAN"

STITCH_SCHEMA = "repro-obs-stitched"
STITCH_SCHEMA_VERSION = 1

#: A worker whose final heartbeat precedes the stream's end by more
#: than this many expected heartbeat intervals is flagged ``stalled``.
STALL_INTERVALS = 3.0


@dataclass(frozen=True)
class TraceContext:
    """A serializable trace identity: trace id + parent span.

    Attributes:
        trace_id: hex string shared by every process in the trace.
        parent_span_id: globalized span id (``"<pid>:<span_id>"``) of
            the span this process hangs under, or None for the root
            process.
    """

    trace_id: str
    parent_span_id: Optional[str] = None

    @classmethod
    def new(cls) -> "TraceContext":
        """A fresh root context with a random 16-hex-digit trace id."""
        return cls(trace_id=uuid.uuid4().hex[:16])

    def child(self, parent_span_id: Optional[str]) -> "TraceContext":
        """The context a child process should run under."""
        return TraceContext(
            trace_id=self.trace_id, parent_span_id=parent_span_id
        )

    # -- propagation ---------------------------------------------------------

    def to_env(
        self, env: Optional[MutableMapping[str, str]] = None
    ) -> MutableMapping[str, str]:
        """Write the context into ``env`` (a new dict by default)."""
        target: MutableMapping[str, str] = {} if env is None else env
        target[ENV_TRACE_ID] = self.trace_id
        if self.parent_span_id is not None:
            target[ENV_PARENT_SPAN] = self.parent_span_id
        else:
            target.pop(ENV_PARENT_SPAN, None)
        return target

    @classmethod
    def from_env(
        cls, environ: Optional[Mapping[str, str]] = None
    ) -> Optional["TraceContext"]:
        """The context carried by ``environ``, or None if absent."""
        source = os.environ if environ is None else environ
        trace_id = source.get(ENV_TRACE_ID, "").strip()
        if not trace_id:
            return None
        parent = source.get(ENV_PARENT_SPAN, "").strip() or None
        return cls(trace_id=trace_id, parent_span_id=parent)

    def to_cli_args(self) -> List[str]:
        """The argv form (``repro profile`` accepts these flags)."""
        args = ["--trace-id", self.trace_id]
        if self.parent_span_id is not None:
            args.extend(["--parent-span", self.parent_span_id])
        return args


# -- the process-active context ---------------------------------------------

_lock = threading.Lock()
_current: Optional[TraceContext] = None


def current() -> TraceContext:
    """The process's active context, creating one if needed.

    Resolution order: an explicitly :func:`activate`-d context, then
    the environment (a parent process propagated one), then a freshly
    minted root context (cached, so every caller in this process sees
    the same trace id).
    """
    global _current
    with _lock:
        if _current is None:
            _current = TraceContext.from_env() or TraceContext.new()
        return _current


def peek() -> Optional[TraceContext]:
    """The active context *without* creating one (hot-path safe)."""
    with _lock:
        if _current is not None:
            return _current
    # Falling back to the environment is read-only and cheap; minting
    # is what peek() must never do.
    return TraceContext.from_env()


def activate(context: Optional[TraceContext]) -> Optional[TraceContext]:
    """Set (or with None, clear) the active context; returns previous."""
    global _current
    with _lock:
        previous, _current = _current, context
    return previous


# -- stitching ---------------------------------------------------------------


def _global_span_id(pid: int, span_id: Any) -> str:
    return f"{pid}:{span_id}"


def stitch_traces(
    payloads: Iterable[Dict[str, Any]],
    events: Optional[Iterable[Any]] = None,
) -> Dict[str, Any]:
    """Merge per-process trace payloads into one stitched document.

    Args:
        payloads: trace documents as written by
            :meth:`repro.obs.trace.Tracer.write` (version 1 payloads
            are accepted; they simply lack a trace id and pid).
        events: optionally, :class:`repro.obs.events.Event` objects
            (or their dicts) from the same run; heartbeats become the
            per-worker liveness table and the event horizon anchors
            ``end_gap_s``.

    Returns:
        A JSON-pure document: ``trace_id`` (or ``"unknown"``),
        ``mixed_trace_ids`` when inputs disagree, one ``processes``
        row per payload, all spans with globalized ids, and a
        ``heartbeats`` liveness table.
    """
    processes: List[Dict[str, Any]] = []
    spans: List[Dict[str, Any]] = []
    trace_ids: List[str] = []
    for index, payload in enumerate(payloads):
        pid = int(payload.get("pid", -(index + 1)))
        label = str(payload.get("process", f"process{index}"))
        trace_id = payload.get("trace_id")
        if trace_id:
            trace_ids.append(str(trace_id))
        payload_spans = payload.get("spans", [])
        processes.append(
            {
                "pid": pid,
                "process": label,
                "trace_id": trace_id,
                "parent_span_id": payload.get("parent_span_id"),
                "spans": len(payload_spans),
                "dropped": payload.get("dropped", 0),
            }
        )
        for span in payload_spans:
            row = dict(span)
            row["gid"] = _global_span_id(pid, span.get("span_id"))
            parent = span.get("parent_id")
            if parent is not None:
                row["parent_gid"] = _global_span_id(pid, parent)
            elif payload.get("parent_span_id"):
                # A root span in a child process hangs under the span
                # named by the propagated context.
                row["parent_gid"] = str(payload["parent_span_id"])
            else:
                row["parent_gid"] = None
            row["pid"] = pid
            row["process"] = label
            spans.append(row)

    distinct = sorted(set(trace_ids))
    document: Dict[str, Any] = {
        "schema": STITCH_SCHEMA,
        "schema_version": STITCH_SCHEMA_VERSION,
        "trace_id": distinct[0] if len(distinct) == 1 else "unknown",
        "mixed_trace_ids": distinct if len(distinct) > 1 else [],
        "processes": processes,
        "spans": spans,
        "heartbeats": {},
    }
    if events is not None:
        document["heartbeats"] = heartbeat_gaps(events)
    return document


def heartbeat_gaps(events: Iterable[Any]) -> Dict[str, Dict[str, Any]]:
    """Per-source heartbeat liveness from an event stream.

    For every event source that heartbeated at least once:
    ``count``, ``first_unix_s``/``last_unix_s``, ``max_gap_s``
    (largest interval between consecutive heartbeats), ``end_gap_s``
    (silence between the last heartbeat and the stream's last event
    of any kind), and ``stalled`` - True when the end gap exceeds
    :data:`STALL_INTERVALS` times the source's typical interval, the
    signature of a killed or wedged worker.

    A worker that was announced by a ``worker_spawned`` event but
    never heartbeated at all - killed before its first beat - gets a
    ``count == 0`` row with ``stalled == True`` and ``end_gap_s``
    measured from the spawn announcement, so it cannot silently
    vanish from the liveness table.
    """
    beats: Dict[str, List[float]] = {}
    spawned: Dict[str, float] = {}
    horizon = 0.0
    for item in events:
        kind = getattr(item, "kind", None)
        if kind is None and isinstance(item, dict):
            kind = item.get("kind")
            t = float(item.get("t_unix_s", 0.0))
            source = str(item.get("source", "main"))
            attrs = item.get("attrs") or {}
        else:
            t = float(getattr(item, "t_unix_s", 0.0))
            source = str(getattr(item, "source", "main"))
            attrs = getattr(item, "attrs", None) or {}
        horizon = max(horizon, t)
        if kind == "heartbeat":
            beats.setdefault(source, []).append(t)
        elif kind == "worker_spawned":
            # The supervisor emits this on the worker's behalf; the
            # worker label lives in the attrs, not in the source.
            label = str(attrs.get("worker", source))
            spawned.setdefault(label, t)

    table: Dict[str, Dict[str, Any]] = {}
    for label, spawn_t in spawned.items():
        if label in beats:
            continue
        table[label] = {
            "count": 0,
            "first_unix_s": None,
            "last_unix_s": None,
            "max_gap_s": 0.0,
            "end_gap_s": max(0.0, horizon - spawn_t),
            "expected_interval_s": 0.0,
            "stalled": True,
        }
    for source, times in beats.items():
        times.sort()
        gaps = [b - a for a, b in zip(times, times[1:])]
        max_gap = max(gaps) if gaps else 0.0
        # The expected cadence: the median inter-beat interval, or the
        # largest observed gap when only one beat exists.
        if gaps:
            expected = sorted(gaps)[len(gaps) // 2]
        else:
            expected = 0.0
        end_gap = max(0.0, horizon - times[-1])
        stalled = bool(
            expected > 0.0 and end_gap > STALL_INTERVALS * expected
        )
        table[source] = {
            "count": len(times),
            "first_unix_s": times[0],
            "last_unix_s": times[-1],
            "max_gap_s": max_gap,
            "end_gap_s": end_gap,
            "expected_interval_s": expected,
            "stalled": stalled,
        }
    return table


def render_stitched(document: Dict[str, Any]) -> str:
    """Terminal rendering of a stitched document."""
    lines: List[str] = []
    trace_id = document.get("trace_id", "unknown")
    lines.append(f"trace {trace_id}")
    mixed = document.get("mixed_trace_ids") or []
    if mixed:
        lines.append(
            "  WARNING: inputs carry different trace ids: "
            + ", ".join(mixed)
        )
    processes = document.get("processes", [])
    if processes:
        width = max(len(str(p.get("process", "?"))) for p in processes)
        lines.append(f"  {len(processes)} process(es):")
        for proc in processes:
            parent = proc.get("parent_span_id")
            suffix = f"  under span {parent}" if parent else "  (root)"
            lines.append(
                f"    {str(proc.get('process', '?')):<{width}}  "
                f"pid {proc.get('pid')}  {proc.get('spans', 0)} spans  "
                f"{proc.get('dropped', 0)} dropped{suffix}"
            )
    rollup: Dict[str, Dict[str, float]] = {}
    for span in document.get("spans", []):
        row = rollup.setdefault(
            str(span.get("name", "?")), {"count": 0.0, "total_s": 0.0}
        )
        row["count"] += 1.0
        row["total_s"] += float(span.get("duration_s", 0.0))
    if rollup:
        width = max(len(name) for name in rollup)
        lines.append("  spans by name:")
        for name in sorted(rollup, key=lambda n: -rollup[n]["total_s"]):
            row = rollup[name]
            lines.append(
                f"    {name:<{width}}  {int(row['count']):>6}  "
                f"{row['total_s'] * 1e3:>9.2f}ms"
            )
    heartbeats = document.get("heartbeats") or {}
    if heartbeats:
        width = max(len(source) for source in heartbeats)
        lines.append("  heartbeats:")
        for source in sorted(heartbeats):
            row = heartbeats[source]
            flag = "  STALLED" if row.get("stalled") else ""
            lines.append(
                f"    {source:<{width}}  {row['count']:>4} beats  "
                f"max gap {row['max_gap_s']:.2f}s  "
                f"end gap {row['end_gap_s']:.2f}s{flag}"
            )
    return "\n".join(lines)
