"""``statusd``: a line-JSON status server over the live event bus.

The ROADMAP's campaign daemon speaks an ``eab``-style protocol: one
JSON object per line, request in, response out, over a plain TCP
socket.  This module implements the observability half of that
protocol against a live :class:`repro.obs.events.EventBus`, so an
in-flight profiling run can be interrogated from another thread,
process, or machine without touching the producer:

=============  ==========================================================
request        response
=============  ==========================================================
``status``     bus rollup (event counts, drops, heartbeats) + process
               identity (pid, trace id, uptime) + producer-supplied
               extras (campaign progress)
``metrics``    the process's :meth:`MetricsRegistry.snapshot` document
``tail``       the last ``n`` events (``{"req": "tail", "n": 10}``)
``health``     liveness verdict: ``healthy`` plus seconds since the
               last event
``watch``      subscription: one ``{"event": ...}`` line per event,
               streamed until the client disconnects
``emit``       ingest one event into the bus (fire-and-forget: no
               response line) - how campaign workers feed the parent
=============  ==========================================================

Every response carries ``"ok": true/false``; malformed requests get
``{"ok": false, "error": ...}`` rather than a dropped connection.
All stdlib (:mod:`socketserver`, daemon threads); binding port 0
picks an ephemeral port, published as :attr:`StatusServer.port`.
"""

from __future__ import annotations

import json
import os
import socket
import socketserver
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from . import tracectx
from .events import Event, EventBus

PROTOCOL = "repro-obs-statusd"
PROTOCOL_VERSION = 1

#: ``health`` reports unhealthy once the bus has been silent this long
#: (after having seen at least one event).
DEFAULT_STALL_AFTER_S = 10.0

_MAX_TAIL = 1000


class _Subscription:
    """A bounded per-connection queue fed by the bus (watch requests)."""

    def __init__(self, capacity: int = 1024):
        self._events: deque = deque(maxlen=capacity)
        self._ready = threading.Condition()
        self.closed = False

    def write(self, event: Event) -> None:
        """Bus-sink interface: enqueue one event."""
        with self._ready:
            self._events.append(event)
            self._ready.notify_all()

    def pop(self, timeout_s: float = 0.5) -> List[Event]:
        """Drain queued events, waiting up to ``timeout_s`` for one."""
        with self._ready:
            if not self._events:
                self._ready.wait(timeout=timeout_s)
            batch = list(self._events)
            self._events.clear()
        return batch


class _Handler(socketserver.StreamRequestHandler):
    """One connection: read request lines, write response lines."""

    server: "_TCPServer"

    def handle(self) -> None:
        while True:
            try:
                raw = self.rfile.readline()
            except OSError:
                return
            if not raw:
                return
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                request = json.loads(line)
            except json.JSONDecodeError as exc:
                if not self._respond({"ok": False, "error": f"bad JSON: {exc}"}):
                    return
                continue
            if not isinstance(request, dict):
                if not self._respond(
                    {"ok": False, "error": "request must be a JSON object"}
                ):
                    return
                continue
            req = request.get("req")
            if req == "emit":
                # Fire-and-forget ingestion: no response line, so a
                # pushing worker never synchronizes on the server.
                try:
                    self.server.owner.bus.ingest(request.get("event"))
                except (ValueError, TypeError):
                    self.server.owner.rejected_events += 1
                continue
            if req == "watch":
                self._stream()
                return
            response = self.server.owner.answer(request)
            if not self._respond(response):
                return

    def _respond(self, payload: Dict[str, Any]) -> bool:
        try:
            self.wfile.write(
                (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
            )
            return True
        except OSError:
            return False

    def _stream(self) -> None:
        owner = self.server.owner
        subscription = _Subscription()
        owner.bus.add_sink(subscription)
        try:
            if not self._respond({"ok": True, "streaming": True}):
                return
            while not owner.closing:
                for event in subscription.pop(timeout_s=0.5):
                    if not self._respond({"event": event.to_dict()}):
                        return
        finally:
            owner.bus.remove_sink(subscription)


class _TCPServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True
    owner: "StatusServer"


class StatusServer:
    """Serve line-JSON status queries against a live bus.

    Args:
        bus: the event bus to observe (and, via ``emit`` requests, to
            ingest into).
        metrics: a :class:`repro.obs.metrics.MetricsRegistry` served
            by the ``metrics`` request, or None to omit.
        host / port: bind address; port 0 picks an ephemeral port.
        extra_status: optional zero-argument callable whose dict is
            merged into the ``status`` response under ``"extra"`` -
            the campaign wires its manifest progress heartbeat here.
        extra_requests: optional map of extra request verbs to
            handlers (``request dict -> response dict``); consulted
            after the built-in verbs miss, so a producer can extend
            the protocol (the campaign daemon adds ``submit`` /
            ``cancel`` / ``drain`` / ``shutdown`` this way) without
            subclassing.  A handler that raises becomes an
            ``{"ok": false, "error": ...}`` response.
        stall_after_s: silence threshold for the ``health`` verdict.

    Use as a context manager, or call :meth:`start` / :meth:`close`.
    """

    def __init__(
        self,
        bus: EventBus,
        metrics: Optional[Any] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        extra_status: Optional[Callable[[], Dict[str, Any]]] = None,
        extra_requests: Optional[
            Dict[str, Callable[[Dict[str, Any]], Dict[str, Any]]]
        ] = None,
        stall_after_s: float = DEFAULT_STALL_AFTER_S,
    ):
        self.bus = bus
        self.metrics = metrics
        self.host = host
        self._requested_port = int(port)
        self.extra_status = extra_status
        self.extra_requests = dict(extra_requests or {})
        self.stall_after_s = float(stall_after_s)
        self.started_unix_s = 0.0
        self.rejected_events = 0
        self.closing = False
        self._server: Optional[_TCPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        if self._server is not None:
            return self._server.server_address[1]
        return self._requested_port

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` clients should connect to."""
        return (self.host, self.port)

    def start(self) -> "StatusServer":
        """Bind and serve on a daemon thread; returns self."""
        if self._server is not None:
            return self
        self._server = _TCPServer((self.host, self._requested_port), _Handler)
        self._server.owner = self
        self.started_unix_s = time.time()
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-obs-statusd",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        """Stop serving and release the socket."""
        self.closing = True
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def __enter__(self) -> "StatusServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- request dispatch ----------------------------------------------------

    def answer(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """The response object for one (non-streaming) request."""
        req = request.get("req")
        if req == "status":
            return self._status()
        if req == "metrics":
            snapshot = (
                self.metrics.snapshot() if self.metrics is not None else None
            )
            return {"ok": True, "metrics": snapshot}
        if req == "tail":
            try:
                n = int(request.get("n", 20))
            except (TypeError, ValueError):
                return {"ok": False, "error": "tail n must be an integer"}
            if n < 0:
                return {"ok": False, "error": "tail n cannot be negative"}
            events = self.bus.tail(min(n, _MAX_TAIL))
            return {"ok": True, "events": [e.to_dict() for e in events]}
        if req == "health":
            return self._health()
        handler = self.extra_requests.get(req)
        if handler is not None:
            try:
                return handler(request)
            except Exception as exc:
                # A producer-supplied verb must not be able to take
                # down the server thread or drop the connection.
                return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        verbs = ", ".join(
            ["status", "metrics", "tail", "health", "watch", "emit"]
            + sorted(self.extra_requests)
        )
        return {
            "ok": False,
            "error": f"unknown request {req!r}; expected one of: {verbs}",
        }

    def _status(self) -> Dict[str, Any]:
        context = tracectx.peek()
        response: Dict[str, Any] = {
            "ok": True,
            "protocol": PROTOCOL,
            "protocol_version": PROTOCOL_VERSION,
            "pid": os.getpid(),
            "uptime_s": max(0.0, time.time() - self.started_unix_s),
            "trace_id": context.trace_id if context is not None else None,
            "rejected_events": self.rejected_events,
            "events": self.bus.stats(),
        }
        if self.extra_status is not None:
            try:
                response["extra"] = dict(self.extra_status())
            except Exception as exc:
                # The producer's status hook must not be able to take
                # down a status query; report the failure instead.
                response["extra"] = {"error": str(exc)}
        return response

    def _health(self) -> Dict[str, Any]:
        stats = self.bus.stats()
        last = float(stats.get("last_event_unix_s") or 0.0)
        now = time.time()
        since_last = now - last if last > 0 else None
        stalled = bool(
            since_last is not None and since_last > self.stall_after_s
        )
        return {
            "ok": True,
            "healthy": not stalled,
            "stalled": stalled,
            "since_last_event_s": since_last,
            "events_total": stats.get("total", 0),
            "dropped_events": stats.get("dropped_events", 0),
        }


# ---------------------------------------------------------------------------
# clients
# ---------------------------------------------------------------------------


def query(
    host: str, port: int, request: Dict[str, Any], timeout_s: float = 5.0
) -> Dict[str, Any]:
    """One request/response round trip; returns the response object.

    Raises:
        OSError: connection problems (no server, refused, timeout).
        ValueError: the server's response line was not valid JSON.
    """
    with socket.create_connection((host, int(port)), timeout=timeout_s) as sock:
        sock.sendall(
            (json.dumps(request, sort_keys=True) + "\n").encode("utf-8")
        )
        reader = sock.makefile("r", encoding="utf-8")
        line = reader.readline()
    if not line.strip():
        raise ValueError("status server closed the connection mid-response")
    payload = json.loads(line)
    if not isinstance(payload, dict):
        raise ValueError("status server response is not a JSON object")
    return payload


def watch(
    host: str,
    port: int,
    timeout_s: float = 5.0,
) -> Iterator[Event]:
    """Subscribe to a server's event stream; yields events until the
    server goes away.

    ``timeout_s`` bounds both the connect and each read, so a silent
    (but living) server surfaces as a paused generator, not a hang;
    per-read timeouts are swallowed and the read retried.
    """
    sock = socket.create_connection((host, int(port)), timeout=timeout_s)
    try:
        sock.sendall(b'{"req": "watch"}\n')
        sock.settimeout(timeout_s)
        # Raw recv + manual line splitting: a buffered makefile() reader
        # becomes permanently unreadable after one socket timeout, and
        # timing out on a quiet stream is this function's normal state.
        buffer = bytearray()
        banner_seen = False
        while True:
            newline = buffer.find(b"\n")
            if newline < 0:
                try:
                    chunk = sock.recv(65536)
                except socket.timeout:
                    continue
                if not chunk:
                    return
                buffer.extend(chunk)
                continue
            line = bytes(buffer[: newline]).strip()
            del buffer[: newline + 1]
            if not banner_seen:
                # The {"ok": true, "streaming": true} acknowledgement.
                banner_seen = True
                continue
            try:
                payload = json.loads(line)
                event = Event.from_dict(payload.get("event"))
            except (json.JSONDecodeError, ValueError, AttributeError):
                continue
            yield event
    finally:
        sock.close()


def parse_address(address: str, default_port: int = 0) -> Tuple[str, int]:
    """Parse ``HOST:PORT`` (or bare ``PORT``) into ``(host, port)``.

    Raises:
        ValueError: the port is missing or not an integer.
    """
    text = address.strip()
    if ":" in text:
        host, _, port_text = text.rpartition(":")
    else:
        host, port_text = "", text
    try:
        port = int(port_text)
    except ValueError as exc:
        raise ValueError(f"bad address {address!r}; expected HOST:PORT") from exc
    return (host or "127.0.0.1", port)
