"""The perf-regression observatory: judge a run against its history.

Given ledger history (:mod:`repro.obs.ledger`), each ``(kind, label)``
group's **latest** entry is compared against a baseline built from the
entries before it:

* baseline = median of the last ``baseline_window`` prior entries
  (median, not mean: one historical outlier must not poison the bar);
* spread = MAD (median absolute deviation) of that same window,
  scaled by 1.4826 so it estimates a standard deviation under
  approximately-normal noise;
* a run **regresses** a metric when::

      latest > baseline + max(mad_sigmas * 1.4826 * MAD,
                              rel_slack * baseline,
                              abs_slack_s)

The three slack terms cover the three failure modes of naive
thresholds: the MAD term adapts to each benchmark's natural jitter,
the relative floor keeps near-zero-variance histories from flagging
microsecond noise, and the absolute floor keeps sub-millisecond
timings from ever gating.  Only slowdowns gate - getting faster is
never a regression.

Groups with fewer than ``min_history`` prior entries yield an
``insufficient-history`` verdict, which does **not** fail the check:
a fresh checkout's first runs simply start accumulating history.

Judged metrics: ``wall_time_s`` always; per-span ``total_s`` rollups
(``span:<name>``) when both the latest entry and enough of the
baseline window carry span aggregates.

Everything is stdlib-only and pure computation over parsed records -
this module never touches the filesystem; the CLI layer does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .ledger import RunRecord

#: Scale factor turning a MAD into a normal-noise sigma estimate.
MAD_TO_SIGMA = 1.4826

STATUS_OK = "ok"
STATUS_REGRESSION = "regression"
STATUS_INSUFFICIENT = "insufficient-history"


@dataclass(frozen=True)
class RegressConfig:
    """Tunables for the baseline comparison.

    Attributes:
        baseline_window: how many prior entries (at most) form the
            baseline pool.
        min_history: minimum prior entries required before a group is
            judged at all.
        mad_sigmas: how many MAD-derived sigmas of slack the noise
            term grants.
        rel_slack: relative slack floor (fraction of the baseline).
        abs_slack_s: absolute slack floor, in seconds.
        include_spans: also judge per-span ``total_s`` rollups.
    """

    baseline_window: int = 5
    min_history: int = 3
    mad_sigmas: float = 4.0
    rel_slack: float = 0.25
    abs_slack_s: float = 0.005
    include_spans: bool = True

    def __post_init__(self) -> None:
        if self.baseline_window < 1:
            raise ValueError("baseline_window must be at least 1")
        if self.min_history < 1:
            raise ValueError("min_history must be at least 1")
        if self.min_history > self.baseline_window:
            raise ValueError("min_history cannot exceed baseline_window")
        if self.mad_sigmas <= 0:
            raise ValueError("mad_sigmas must be positive")
        if self.rel_slack < 0 or self.abs_slack_s < 0:
            raise ValueError("slack floors cannot be negative")


@dataclass(frozen=True)
class Verdict:
    """One metric's judgment for one ledger group."""

    group: str
    metric: str
    status: str  # STATUS_OK | STATUS_REGRESSION | STATUS_INSUFFICIENT
    latest: float
    baseline: float
    limit: float
    n_baseline: int

    @property
    def ratio(self) -> float:
        """latest / baseline; 0.0 when the baseline is degenerate."""
        if self.baseline <= 0:
            return 0.0
        return self.latest / self.baseline


@dataclass
class RegressionReport:
    """Every verdict from one observatory pass."""

    verdicts: List[Verdict] = field(default_factory=list)

    @property
    def regressions(self) -> List[Verdict]:
        """The verdicts that gate (status == regression)."""
        return [v for v in self.verdicts if v.status == STATUS_REGRESSION]

    @property
    def judged(self) -> List[Verdict]:
        """Verdicts with enough history to have been evaluated."""
        return [v for v in self.verdicts if v.status != STATUS_INSUFFICIENT]

    @property
    def ok(self) -> bool:
        """True when nothing regressed (insufficient history is ok)."""
        return not self.regressions

    def format(self) -> str:
        """Fixed-width text table, worst offenders first."""
        if not self.verdicts:
            return "(no ledger history to judge)"
        order = {STATUS_REGRESSION: 0, STATUS_OK: 1, STATUS_INSUFFICIENT: 2}
        rows = sorted(
            self.verdicts,
            key=lambda v: (order.get(v.status, 3), -v.ratio),
        )
        group_width = max(len(v.group) for v in rows)
        metric_width = max(len(v.metric) for v in rows)
        lines = [
            f"{'group':<{group_width}}  {'metric':<{metric_width}}  "
            f"{'baseline':>10}  {'latest':>10}  {'limit':>10}  {'n':>2}  verdict"
        ]
        for v in rows:
            if v.status == STATUS_INSUFFICIENT:
                lines.append(
                    f"{v.group:<{group_width}}  {v.metric:<{metric_width}}  "
                    f"{'-':>10}  {v.latest * 1e3:>8.2f}ms  {'-':>10}  "
                    f"{v.n_baseline:>2}  insufficient history"
                )
                continue
            verdict = "REGRESSION" if v.status == STATUS_REGRESSION else "ok"
            lines.append(
                f"{v.group:<{group_width}}  {v.metric:<{metric_width}}  "
                f"{v.baseline * 1e3:>8.2f}ms  {v.latest * 1e3:>8.2f}ms  "
                f"{v.limit * 1e3:>8.2f}ms  {v.n_baseline:>2}  {verdict}"
                + (f" ({v.ratio:.2f}x)" if v.status == STATUS_REGRESSION else "")
            )
        judged = self.judged
        lines.append(
            f"{len(judged)} metric(s) judged, "
            f"{len(self.regressions)} regression(s), "
            f"{len(self.verdicts) - len(judged)} awaiting history"
        )
        return "\n".join(lines)


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return 0.0
    middle = n // 2
    if n % 2 == 1:
        return ordered[middle]
    return 0.5 * (ordered[middle - 1] + ordered[middle])


def _mad(values: Sequence[float], center: float) -> float:
    return _median([abs(v - center) for v in values])


def _judge(
    group: str,
    metric: str,
    latest: float,
    pool: Sequence[float],
    config: RegressConfig,
) -> Verdict:
    baseline = _median(pool)
    spread = _mad(pool, baseline)
    slack = max(
        config.mad_sigmas * MAD_TO_SIGMA * spread,
        config.rel_slack * baseline,
        config.abs_slack_s,
    )
    limit = baseline + slack
    status = STATUS_REGRESSION if latest > limit else STATUS_OK
    return Verdict(
        group=group,
        metric=metric,
        status=status,
        latest=latest,
        baseline=baseline,
        limit=limit,
        n_baseline=len(pool),
    )


def _span_total(entry: RunRecord, name: str) -> Optional[float]:
    if not entry.spans:
        return None
    row = entry.spans.get(name)
    if not isinstance(row, dict):
        return None
    try:
        return float(row["total_s"])
    except (KeyError, TypeError, ValueError):
        return None


def check_records(
    records: Sequence[RunRecord],
    config: Optional[RegressConfig] = None,
) -> RegressionReport:
    """Judge the latest entry of every ``(kind, label)`` group.

    ``records`` must be in ledger (chronological) order, as
    :meth:`RunLedger.read` returns them.
    """
    cfg = config if config is not None else RegressConfig()
    groups: Dict[str, List[RunRecord]] = {}
    for entry in records:
        groups.setdefault(entry.group, []).append(entry)

    report = RegressionReport()
    for group, entries in groups.items():
        latest = entries[-1]
        history = entries[:-1]
        if len(history) < cfg.min_history:
            report.verdicts.append(
                Verdict(
                    group=group,
                    metric="wall_time_s",
                    status=STATUS_INSUFFICIENT,
                    latest=latest.wall_time_s,
                    baseline=0.0,
                    limit=0.0,
                    n_baseline=len(history),
                )
            )
            continue
        window = history[-cfg.baseline_window:]
        report.verdicts.append(
            _judge(
                group,
                "wall_time_s",
                latest.wall_time_s,
                [e.wall_time_s for e in window],
                cfg,
            )
        )
        if not cfg.include_spans or not latest.spans:
            continue
        for name in sorted(latest.spans):
            latest_total = _span_total(latest, name)
            if latest_total is None:
                continue
            pool = [
                total
                for total in (_span_total(e, name) for e in window)
                if total is not None
            ]
            if len(pool) < cfg.min_history:
                continue
            report.verdicts.append(
                _judge(group, f"span:{name}", latest_total, pool, cfg)
            )
    return report
