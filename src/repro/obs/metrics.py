"""Metrics: counters, gauges, and histograms with two exporters.

The registry is the pipeline's scoreboard: detection increments
``stalls_detected_total`` and ``refresh_stalls_total``, the simulator
reports cycles and instructions, the streaming profiler records a
per-chunk latency histogram.  Everything is zero-dependency (stdlib
only) and exports as:

* JSON - a single document mirroring :meth:`MetricsRegistry.snapshot`
  exactly, so ``json.loads(registry.to_json()) == registry.snapshot()``
  round-trips;
* Prometheus text exposition format - counters/gauges/histograms with
  ``# HELP`` / ``# TYPE`` headers and escaped label values, suitable
  for a textfile collector.

Like the tracer, every mutation is gated on the ``EMPROF_OBS`` flag:
``counter.inc()`` with observability disabled is one attribute check
and a return.  Instruments register at import time (get-or-create by
name), so a snapshot always lists the full catalogue even when a
metric has not fired yet.
"""

from __future__ import annotations

import bisect
import json
import math
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

from . import runtime

#: Default histogram bucket upper bounds, in seconds: spans five
#: decades of latency from a microsecond to ten seconds.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-6, 2e-6, 5e-6,
    1e-5, 2e-5, 5e-5,
    1e-4, 2e-4, 5e-4,
    1e-3, 2e-3, 5e-3,
    1e-2, 2e-2, 5e-2,
    1e-1, 2e-1, 5e-1,
    1.0, 2.0, 5.0, 10.0,
)


def _escape_help(text: str) -> str:
    """Escape a HELP line per the Prometheus text format."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    """Escape a label value per the Prometheus text format."""
    return (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(labels: Dict[str, str], extra: Optional[Tuple[str, str]] = None) -> str:
    """``{a="x",le="0.5"}`` or the empty string."""
    pairs = [(k, v) for k, v in labels.items()]
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(str(v))}"' for k, v in pairs)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return f"{value:g}"


class _Instrument:
    """Shared bookkeeping for all metric kinds."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, labels: Optional[Dict[str, str]]):
        self.name = name
        self.help = help_text
        self.labels: Dict[str, str] = dict(labels or {})
        self._lock = threading.Lock()


class Counter(_Instrument):
    """A monotonically increasing count (events, samples, stalls)."""

    kind = "counter"

    def __init__(self, name: str, help_text: str = "", labels: Optional[Dict[str, str]] = None):
        super().__init__(name, help_text, labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative); no-op when disabled."""
        if not runtime._enabled:
            return
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current count."""
        return self._value

    def zero(self) -> None:
        """Reset to zero (registry reset; not part of normal use)."""
        with self._lock:
            self._value = 0.0

    def snapshot(self) -> Dict[str, Any]:
        """JSON-pure state."""
        return {"help": self.help, "labels": dict(self.labels), "value": self._value}

    def prometheus_lines(self) -> List[str]:
        """Text-exposition lines for this instrument."""
        return [
            f"# HELP {self.name} {_escape_help(self.help)}",
            f"# TYPE {self.name} counter",
            f"{self.name}{_format_labels(self.labels)} {_format_value(self._value)}",
        ]


class Gauge(_Instrument):
    """A value that goes up and down (rates, levels, sizes)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str = "", labels: Optional[Dict[str, str]] = None):
        super().__init__(name, help_text, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        """Record the current level; no-op when disabled."""
        if not runtime._enabled:
            return
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        """Adjust by ``amount`` (either sign); no-op when disabled."""
        if not runtime._enabled:
            return
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current level."""
        return self._value

    def zero(self) -> None:
        """Reset to zero (registry reset)."""
        with self._lock:
            self._value = 0.0

    def snapshot(self) -> Dict[str, Any]:
        """JSON-pure state."""
        return {"help": self.help, "labels": dict(self.labels), "value": self._value}

    def prometheus_lines(self) -> List[str]:
        """Text-exposition lines for this instrument."""
        return [
            f"# HELP {self.name} {_escape_help(self.help)}",
            f"# TYPE {self.name} gauge",
            f"{self.name}{_format_labels(self.labels)} {_format_value(self._value)}",
        ]


class Histogram(_Instrument):
    """Fixed-bucket distribution with streaming min/max/sum.

    Buckets are cumulative-upper-bound style (Prometheus ``le``), with
    an implicit ``+Inf`` overflow bucket.  Quantiles are estimated by
    linear interpolation inside the containing bucket, clamped to the
    observed min/max, which is exact enough for latency dashboards and
    entirely deterministic.
    """

    kind = "histogram"

    #: The quantiles every export carries, as (suffix, q) pairs.
    EXPORT_QUANTILES: Tuple[Tuple[str, float], ...] = (
        ("p50", 0.50),
        ("p95", 0.95),
        ("p99", 0.99),
    )

    def __init__(
        self,
        name: str,
        help_text: str = "",
        buckets: Optional[Sequence[float]] = None,
        labels: Optional[Dict[str, str]] = None,
    ):
        super().__init__(name, help_text, labels)
        bounds = tuple(float(b) for b in (buckets if buckets is not None else DEFAULT_LATENCY_BUCKETS))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        if any(math.isinf(b) for b in bounds):
            raise ValueError("the +Inf bucket is implicit; use finite bounds")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation; no-op when disabled."""
        if not runtime._enabled:
            return
        v = float(value)
        index = bisect.bisect_left(self.bounds, v)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += v
            if v < self._min:
                self._min = v
            if v > self._max:
                self._max = v

    @property
    def count(self) -> int:
        """Total observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observations."""
        return self._sum

    @property
    def mean(self) -> float:
        """Mean observation, 0.0 when empty."""
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (q in [0, 1]); 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            return self._quantile_locked(q)

    def _quantile_locked(self, q: float) -> float:
        """Quantile body; caller must hold ``self._lock``."""
        total = self._count
        if total == 0:
            return 0.0
        target = q * total
        cumulative = 0
        for index, bucket_count in enumerate(self._counts):
            cumulative += bucket_count
            if cumulative >= target and bucket_count > 0:
                lower = self._bucket_lower(index)
                upper = self._bucket_upper(index)
                inside = target - (cumulative - bucket_count)
                frac = min(max(inside / bucket_count, 0.0), 1.0)
                return lower + frac * (upper - lower)
        return self._max

    def _bucket_lower(self, index: int) -> float:
        lower = self.bounds[index - 1] if index > 0 else -math.inf
        return max(lower, self._min)

    def _bucket_upper(self, index: int) -> float:
        upper = self.bounds[index] if index < len(self.bounds) else math.inf
        return min(upper, self._max)

    def zero(self) -> None:
        """Reset all state (registry reset)."""
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = math.inf
            self._max = -math.inf

    def snapshot(self) -> Dict[str, Any]:
        """JSON-pure state; the overflow bucket's ``le`` is "+Inf"."""
        with self._lock:
            cumulative = 0
            buckets = []
            for index, bucket_count in enumerate(self._counts):
                cumulative += bucket_count
                le: Any = self.bounds[index] if index < len(self.bounds) else "+Inf"
                buckets.append({"le": le, "count": cumulative})
            percentiles = {
                suffix: (self._quantile_locked(q) if self._count else None)
                for suffix, q in self.EXPORT_QUANTILES
            }
            return {
                "help": self.help,
                "labels": dict(self.labels),
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._count else None,
                "max": self._max if self._count else None,
                "percentiles": percentiles,
                "buckets": buckets,
            }

    def prometheus_lines(self) -> List[str]:
        """Text-exposition lines for this instrument."""
        lines = [
            f"# HELP {self.name} {_escape_help(self.help)}",
            f"# TYPE {self.name} histogram",
        ]
        cumulative = 0
        for index, bucket_count in enumerate(self._counts):
            cumulative += bucket_count
            bound = self.bounds[index] if index < len(self.bounds) else math.inf
            le = _format_value(bound)
            lines.append(
                f"{self.name}_bucket"
                f"{_format_labels(self.labels, extra=('le', le))} {cumulative}"
            )
        lines.append(
            f"{self.name}_sum{_format_labels(self.labels)} {_format_value(self._sum)}"
        )
        lines.append(f"{self.name}_count{_format_labels(self.labels)} {self._count}")
        # Estimated quantiles as derived gauges (`_p50`/`_p95`/`_p99`):
        # the Prometheus histogram type has no native quantile samples,
        # and computing them scrape-side needs a query engine a textfile
        # collector does not have.
        with self._lock:
            estimates = [
                (suffix, self._quantile_locked(q))
                for suffix, q in self.EXPORT_QUANTILES
            ]
        for suffix, value in estimates:
            series = f"{self.name}_{suffix}"
            lines.append(f"# TYPE {series} gauge")
            lines.append(
                f"{series}{_format_labels(self.labels)} {_format_value(value)}"
            )
        return lines


class MetricsRegistry:
    """Name-keyed instrument store with get-or-create semantics.

    One process-global instance lives at :data:`repro.obs.metrics`.
    Re-requesting an existing name returns the existing instrument
    (help text is kept from the first non-empty registration);
    requesting an existing name as a different kind raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, _Instrument] = {}

    def _get_or_create(self, cls: type, name: str, **kwargs: Any) -> Any:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                if not existing.help and kwargs.get("help_text"):
                    existing.help = kwargs["help_text"]
                return existing
            instrument = cls(name, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(
        self, name: str, help_text: str = "", labels: Optional[Dict[str, str]] = None
    ) -> Counter:
        """Get or create the counter ``name``."""
        return self._get_or_create(Counter, name, help_text=help_text, labels=labels)

    def gauge(
        self, name: str, help_text: str = "", labels: Optional[Dict[str, str]] = None
    ) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get_or_create(Gauge, name, help_text=help_text, labels=labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Optional[Sequence[float]] = None,
        labels: Optional[Dict[str, str]] = None,
    ) -> Histogram:
        """Get or create the histogram ``name``."""
        with self._lock:
            existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise ValueError(f"metric {name!r} already registered as {existing.kind}")
            if not existing.help and help_text:
                existing.help = help_text
            return existing
        return self._get_or_create(
            Histogram, name, help_text=help_text, buckets=buckets, labels=labels
        )

    def get(self, name: str) -> Optional[_Instrument]:
        """The instrument registered under ``name``, or None."""
        with self._lock:
            return self._instruments.get(name)

    def names(self) -> List[str]:
        """Registered names, in registration order."""
        with self._lock:
            return list(self._instruments)

    def reset(self) -> None:
        """Zero every instrument's state; registrations persist.

        Module-level instrument handles stay valid across a reset -
        this deliberately does *not* unregister, so cached references
        in instrumented code keep feeding the same registry.
        """
        with self._lock:
            instruments = list(self._instruments.values())
        for instrument in instruments:
            instrument.zero()

    # -- exporters ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-pure state of every instrument, grouped by kind."""
        with self._lock:
            instruments = list(self._instruments.values())
        out: Dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
        for instrument in instruments:
            out[instrument.kind + "s"][instrument.name] = instrument.snapshot()
        return out

    def to_json(self, indent: Optional[int] = 2) -> str:
        """JSON document; ``json.loads`` of it equals :meth:`snapshot`."""
        return json.dumps(self.snapshot(), indent=indent)

    def to_prometheus(self) -> str:
        """Prometheus text exposition of every instrument."""
        with self._lock:
            instruments = list(self._instruments.values())
        lines: List[str] = []
        for instrument in instruments:
            lines.extend(instrument.prometheus_lines())
        return "\n".join(lines) + ("\n" if lines else "")

    def write(self, path: str, fmt: str = "json") -> None:
        """Write the registry to ``path`` in ``fmt`` ('json' or 'prom')."""
        if fmt == "json":
            payload = self.to_json()
        elif fmt in ("prom", "prometheus"):
            payload = self.to_prometheus()
        else:
            raise ValueError(f"unknown metrics format {fmt!r}; use 'json' or 'prom'")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(payload)
