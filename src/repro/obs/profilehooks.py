"""Opt-in deep profiling hooks: cProfile capture and per-span memory.

These are deliberately *not* part of the always-on instrumentation:
``cProfile`` and :mod:`tracemalloc` each cost far more than the ≤10%
overhead budget the rest of :mod:`repro.obs` lives under, so both are
explicit opt-ins layered on top of the cheap span/metric/event rails:

* :func:`profiled` wraps a region in a ``cProfile.Profile`` and writes
  a binary ``.pstats`` dump (loadable with :mod:`pstats` or snakeviz)
  plus a human-readable ``.txt`` top-N table next to it.  This is what
  ``repro profile --profile-out`` uses.
* :func:`span_memory` switches the global tracer into per-span memory
  accounting: :mod:`tracemalloc` is started and every span records
  ``mem_peak_bytes`` (high-water since the span opened) and
  ``mem_alloc_bytes`` (net allocation across the span) in its attrs.

Caveat worth knowing: tracemalloc keeps a *single* process-wide peak
counter, which span entry resets (``tracemalloc.reset_peak``).  With
nested spans the inner span's entry re-anchors the outer span's
window, so an outer span's ``mem_peak_bytes`` reflects the high-water
since its *most recent descendant* opened, not since its own entry.
Leaf spans - where per-phase memory questions actually live - are
exact.
"""

from __future__ import annotations

import cProfile
import io
import os
import pstats
import tracemalloc
from contextlib import contextmanager
from typing import Iterator, Optional, Union

from .trace import Tracer


def _global_tracer() -> Tracer:
    # The package rebinds the name ``trace`` from the submodule to the
    # global Tracer instance, so resolve it through the package (and
    # lazily, to stay clean of import cycles).
    from repro import obs

    return obs.trace

#: Rows kept in the human-readable profile table.
DEFAULT_TOP_N = 40


def write_profile_stats(
    profile: cProfile.Profile,
    out_path: Union[str, "os.PathLike[str]"],
    top_n: int = DEFAULT_TOP_N,
    sort: str = "cumulative",
) -> str:
    """Write ``profile`` to ``out_path`` (binary pstats) and a ``.txt``
    sibling with the top-``top_n`` table; returns the text path.
    """
    out = os.fspath(out_path)
    profile.dump_stats(out)
    text_path = out + ".txt"
    buffer = io.StringIO()
    stats = pstats.Stats(profile, stream=buffer)
    stats.sort_stats(sort)
    stats.print_stats(top_n)
    with open(text_path, "w", encoding="utf-8") as handle:
        handle.write(buffer.getvalue())
    return text_path


@contextmanager
def profiled(
    out_path: Optional[Union[str, "os.PathLike[str]"]],
    top_n: int = DEFAULT_TOP_N,
    sort: str = "cumulative",
) -> Iterator[Optional[cProfile.Profile]]:
    """Profile the enclosed block with cProfile.

    With ``out_path`` of None this is a no-op (yields None), so
    callers can write ``with profiled(args.profile_out):``
    unconditionally.  Otherwise yields the live profile and writes
    ``out_path`` (+ ``.txt`` table) when the block exits - including
    on error, so a crashing run still leaves its profile behind.
    """
    if not out_path:
        yield None
        return
    profile = cProfile.Profile()
    profile.enable()
    try:
        yield profile
    finally:
        profile.disable()
        write_profile_stats(profile, out_path, top_n=top_n, sort=sort)


@contextmanager
def span_memory(tracer: Optional[Tracer] = None) -> Iterator[None]:
    """Enable per-span tracemalloc accounting for the enclosed block.

    Starts :mod:`tracemalloc` (if this block started it, it also stops
    it) and flips ``tracer.capture_memory`` so spans record
    ``mem_peak_bytes`` / ``mem_alloc_bytes``.  Nesting-safe: previous
    states are restored on exit.
    """
    target = _global_tracer() if tracer is None else tracer
    previous = target.capture_memory
    started_here = not tracemalloc.is_tracing()
    if started_here:
        tracemalloc.start()
    target.capture_memory = True
    try:
        yield
    finally:
        target.capture_memory = previous
        if started_here:
            tracemalloc.stop()
