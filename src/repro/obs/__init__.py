"""Observability for the EMPROF reproduction: traces, metrics, logs.

EMPROF's pitch is profiling with zero observer effect; this package
holds the reproduction to the same bar by making the profiler itself
observable *without* perturbing it.  Three primitives, all stdlib-only:

* :data:`trace` - a process-global span :class:`~repro.obs.trace.Tracer`
  (``with trace.span("detect", samples=n): ...``), thread-safe and
  nestable, exporting JSON and Chrome ``chrome://tracing`` format;
* :data:`metrics` - a process-global
  :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges and
  histograms with JSON and Prometheus-text exporters;
* :func:`~repro.obs.logbridge.get_logger` - stdlib logging under the
  ``repro`` namespace, wired to the CLI's ``--quiet``/``--verbose``.

On top of those primitives sits the **run observatory**:

* :mod:`repro.obs.ledger` - an append-only JSONL run ledger
  (:class:`~repro.obs.ledger.RunLedger` /
  :class:`~repro.obs.ledger.RunRecord`), written by ``repro profile
  --ledger``, the bench harness, and measurement campaigns;
* :mod:`repro.obs.regress` - statistical baseline comparison over
  ledger history (``repro obs regress``);
* :mod:`repro.obs.dashboard` - a self-contained HTML report over the
  same history (``repro obs dashboard``).

Everything is inert unless ``EMPROF_OBS=1`` is set in the environment
(mirroring ``EMPROF_CONTRACTS``) or :func:`set_obs_enabled` is called:
disabled instruments cost one attribute check per call, which is what
lets the hot loops stay instrumented permanently.  The overhead guard
in ``tests/test_obs_overhead.py`` enforces that bound.

See ``docs/observability.md`` for the span/metric catalogue and the
exporter formats.
"""

from __future__ import annotations

from .events import Event, EventBus, bus
from .ledger import RunLedger, RunRecord
from .logbridge import configure_logging, get_logger, level_for_verbosity
from .metrics import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .runtime import obs_enabled, set_obs_enabled
from .trace import SpanRecord, Tracer
from .tracectx import TraceContext

#: Process-global tracer; import as ``from repro.obs import trace``.
trace = Tracer()

#: Process-global metrics registry.
metrics = MetricsRegistry()

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Event",
    "EventBus",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunLedger",
    "RunRecord",
    "SpanRecord",
    "TraceContext",
    "Tracer",
    "bus",
    "configure_logging",
    "get_logger",
    "level_for_verbosity",
    "metrics",
    "obs_enabled",
    "set_obs_enabled",
    "trace",
]
