"""The engine flight recorder: decision-level introspection.

A reported (or missed) stall used to be a black box: the vectorized
engine (:mod:`repro.core.engine`) collapses thousands of threshold,
hysteresis and carry decisions into a tuple, and the rest of the obs
stack only sees wall-times and counts.  This module records the
*decisions themselves* — schema-versioned :class:`FlightEvent` records
in a preallocated bounded ring (:class:`FlightRecorder`) — so that
``repro explain`` can answer "why was this stall reported?" and, via
the near-miss log of rejected candidates, "why was nothing reported
here?".

Design constraints, in order:

1. **Zero cost when off.**  The engine holds an ``Optional``
   recorder; with ``None`` (the default) every hook is a single
   ``is not None`` check and the hot path is bit-identical to the
   uninstrumented engine (proven by ``tests/test_engine_equivalence``
   and guarded by ``tests/test_obs_overhead``).
2. **Bounded.**  The ring is preallocated; once full, the oldest
   events are overwritten (classic flight-recorder semantics) and
   ``overwritten`` counts what was lost — evidence built from a
   wrapped ring says so instead of silently pretending completeness.
3. **Schema-versioned.**  Every event carries an explicit
   ``schema_version`` (enforced by the ``obs-event-schema`` emlint
   rule at every constructor site), so spilled ``.flight`` sidecars
   remain interpretable across engine versions.
4. **Stdlib only.**  This module sits in the ``obs-api`` layer so the
   engine may import it; like the rest of that surface it must not
   import numpy or any higher layer.

The on-disk sidecar format (NDJSON, one event per line under a header
line) is written by :meth:`FlightRecorder.spill` and read back by
:func:`read_flight`; :mod:`repro.io` wraps both with the repository's
typed :class:`~repro.errors.CorruptCaptureError` contract.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Version of the event schema below.  Bump when an event kind's
#: attrs change meaning; readers use it to interpret old sidecars.
FLIGHT_SCHEMA_VERSION = 1

#: Header ``format`` field of a spilled ``.flight`` sidecar.
FLIGHT_FORMAT = "emprof-flight-v1"

#: The closed set of decision-event kinds the engine emits.
#:
#: * ``normalizer_emit``   - a normalizer window settled; samples
#:   ``[pos, attrs.until)`` now have their final normalized values.
#: * ``threshold_runs``    - raw below-threshold run count of a chunk.
#: * ``hysteresis_merge``  - a gap between two dips merged them
#:   (short gap, or never recovered above the hysteresis level).
#: * ``hysteresis_split``  - a gap kept two dips separate.
#: * ``carry_open``        - a dip was still open at a chunk boundary
#:   and was carried as scalar state.
#: * ``carry_merge``       - a carried dip merged with (or continued
#:   into) the next chunk's first run.
#: * ``stall_emitted``     - a dip was finalized and reported.
#: * ``stall_rejected``    - a dip was finalized and rejected
#:   (the near-miss log: too few samples, inverted refined edges, or
#:   below the minimum duration).
#: * ``gap``               - the stream announced a discontinuity
#:   (driver drop or non-finite run).
#: * ``resync``            - the detector resynchronized at a gap.
#: * ``quality_veto``      - a reported stall was flagged
#:   low-confidence because it overlaps an impaired interval.
#: * ``finish``            - end of stream.
FLIGHT_KINDS = (
    "normalizer_emit",
    "threshold_runs",
    "hysteresis_merge",
    "hysteresis_split",
    "carry_open",
    "carry_merge",
    "stall_emitted",
    "stall_rejected",
    "gap",
    "resync",
    "quality_veto",
    "finish",
)

_KIND_SET = frozenset(FLIGHT_KINDS)


@dataclass(frozen=True)
class FlightEvent:
    """One engine decision.

    ``schema_version`` has no default on purpose: every constructor
    site must state which schema it writes (the ``obs-event-schema``
    lint rule enforces this), so a spilled sidecar is always
    self-describing.

    Attributes:
        schema_version: event-schema version (:data:`FLIGHT_SCHEMA_VERSION`).
        kind: one of :data:`FLIGHT_KINDS`.
        pos: absolute stream sample position the decision anchors to
            (fractional where boundaries were refined).
        attrs: kind-specific detail; JSON-safe scalars only.
    """

    schema_version: int
    kind: str
    pos: float
    attrs: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in _KIND_SET:
            raise ValueError(
                f"unknown flight event kind {self.kind!r}; "
                f"expected one of {', '.join(FLIGHT_KINDS)}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (one sidecar line)."""
        return {
            "schema_version": self.schema_version,
            "kind": self.kind,
            "pos": self.pos,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FlightEvent":
        """Inverse of :meth:`to_dict`; raises ``ValueError`` if malformed."""
        try:
            return cls(
                schema_version=int(payload["schema_version"]),
                kind=str(payload["kind"]),
                pos=float(payload["pos"]),
                attrs=dict(payload.get("attrs", {})),
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed flight event: {exc}") from exc


class FlightRecorder:
    """Preallocated bounded ring of :class:`FlightEvent` records.

    The ring never grows: once ``capacity`` events are held, each new
    event overwrites the oldest and :attr:`overwritten` increments.
    Recording is append-only and cheap (one list assignment); all
    interpretation happens at read time.

    The engine treats an attached recorder as enabled — gating lives
    in the *caller* holding ``Optional[FlightRecorder]``, so the
    off-path cost is exactly one ``is not None`` test per decision
    point.
    """

    def __init__(self, capacity: int = 16384):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self._ring: List[Optional[FlightEvent]] = [None] * int(capacity)
        self._total = 0

    @property
    def capacity(self) -> int:
        """Maximum events retained."""
        return len(self._ring)

    @property
    def total_recorded(self) -> int:
        """Events ever recorded (including overwritten ones)."""
        return self._total

    @property
    def overwritten(self) -> int:
        """Events lost to ring wrap-around."""
        return max(0, self._total - len(self._ring))

    def __len__(self) -> int:
        return min(self._total, len(self._ring))

    def record(self, event: FlightEvent) -> None:
        """Append one event (overwrites the oldest when full)."""
        self._ring[self._total % len(self._ring)] = event
        self._total += 1

    def events(self) -> List[FlightEvent]:
        """Retained events, oldest first."""
        n = len(self)
        if n < len(self._ring):
            return list(self._ring[:n])
        head = self._total % len(self._ring)
        return list(self._ring[head:]) + list(self._ring[:head])

    def tail(self, n: int) -> List[FlightEvent]:
        """The most recent ``n`` retained events, oldest first."""
        n = max(0, int(n))
        if n == 0:
            return []
        return self.events()[-n:]

    def clear(self) -> None:
        """Drop every retained event and reset the counters."""
        self._ring = [None] * len(self._ring)
        self._total = 0

    def spill(
        self, path, meta: Optional[Mapping[str, Any]] = None
    ) -> int:
        """Write the retained events to ``path`` as an NDJSON sidecar.

        The first line is a header record (``format``, counters, and
        any ``meta`` the caller adds — capture path, config, …); each
        following line is one event.  Returns the number of events
        written.
        """
        events = self.events()
        header: Dict[str, Any] = {
            "format": FLIGHT_FORMAT,
            "schema_version": FLIGHT_SCHEMA_VERSION,
            "events": len(events),
            "total_recorded": self._total,
            "overwritten": self.overwritten,
        }
        if meta:
            header.update({str(k): v for k, v in meta.items()})
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(header) + "\n")
            for event in events:
                fh.write(json.dumps(event.to_dict()) + "\n")
        return len(events)


def read_flight(path) -> Tuple[Dict[str, Any], List[FlightEvent]]:
    """Read a sidecar written by :meth:`FlightRecorder.spill`.

    Returns ``(header, events)``.  Raises ``ValueError`` on a missing
    or foreign header and on malformed event lines; callers wanting
    the repository's typed-error contract use
    :func:`repro.io.load_flight`, which wraps this.
    """
    with open(path, "r", encoding="utf-8") as fh:
        first = fh.readline()
        if not first.strip():
            raise ValueError("empty flight sidecar")
        try:
            header = json.loads(first)
        except json.JSONDecodeError as exc:
            raise ValueError(f"malformed flight header: {exc}") from exc
        if not isinstance(header, dict) or header.get("format") != FLIGHT_FORMAT:
            raise ValueError(
                f"not an EMPROF flight sidecar "
                f"(format={header.get('format') if isinstance(header, dict) else None!r})"
            )
        events: List[FlightEvent] = []
        for lineno, line in enumerate(fh, start=2):
            if not line.strip():
                continue
            try:
                events.append(FlightEvent.from_dict(json.loads(line)))
            except (json.JSONDecodeError, ValueError) as exc:
                raise ValueError(f"bad flight event at line {lineno}: {exc}") from exc
    return header, events


# ---------------------------------------------------------------------------
# evidence: from decisions to per-stall provenance
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StallEvidence:
    """Why one reported stall was reported.

    Attributes:
        index: position in ``ProfileReport.stalls``.
        trigger_sample: the first whole sample strictly below the
            detection threshold — the exact sample that opened the dip.
        begin_sample / end_sample: the refined (fractional) interval.
        threshold: detection threshold in force.
        min_level: deepest normalized level inside the dip.
        depth_margin: ``threshold - min_level`` — how far below the
            line the dip went.
        duration_cycles: refined duration in processor cycles.
        merge_chain: per merged hysteresis gap inside this stall:
            ``{"pos", "gap_len", "gap_max", "reason"}`` in time order.
        carried: the dip straddled at least one chunk boundary.
        carry_chunks: how many boundaries it was carried across.
        quality_overlaps: impaired ``[begin, end)`` sample intervals
            overlapping this stall (empty when none / no monitoring).
        low_confidence: the report's confidence flag.
        is_refresh: refresh-coincident classification.
        complete: False when the ring wrapped and the decision trail
            for this stall was overwritten (fields above fall back to
            the report's own values).
    """

    index: int
    trigger_sample: int
    begin_sample: float
    end_sample: float
    threshold: float
    min_level: float
    depth_margin: float
    duration_cycles: float
    merge_chain: Tuple[Dict[str, Any], ...] = ()
    carried: bool = False
    carry_chunks: int = 0
    quality_overlaps: Tuple[Tuple[float, float], ...] = ()
    low_confidence: bool = False
    is_refresh: bool = False
    complete: bool = True

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "trigger_sample": self.trigger_sample,
            "begin_sample": self.begin_sample,
            "end_sample": self.end_sample,
            "threshold": self.threshold,
            "min_level": self.min_level,
            "depth_margin": self.depth_margin,
            "duration_cycles": self.duration_cycles,
            "merge_chain": [dict(m) for m in self.merge_chain],
            "carried": self.carried,
            "carry_chunks": self.carry_chunks,
            "quality_overlaps": [list(iv) for iv in self.quality_overlaps],
            "low_confidence": self.low_confidence,
            "is_refresh": self.is_refresh,
            "complete": self.complete,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "StallEvidence":
        """Inverse of :meth:`to_dict`."""
        return cls(
            index=int(payload["index"]),
            trigger_sample=int(payload["trigger_sample"]),
            begin_sample=float(payload["begin_sample"]),
            end_sample=float(payload["end_sample"]),
            threshold=float(payload["threshold"]),
            min_level=float(payload["min_level"]),
            depth_margin=float(payload["depth_margin"]),
            duration_cycles=float(payload["duration_cycles"]),
            merge_chain=tuple(dict(m) for m in payload.get("merge_chain", [])),
            carried=bool(payload.get("carried", False)),
            carry_chunks=int(payload.get("carry_chunks", 0)),
            quality_overlaps=tuple(
                (float(iv[0]), float(iv[1]))
                for iv in payload.get("quality_overlaps", [])
            ),
            low_confidence=bool(payload.get("low_confidence", False)),
            is_refresh=bool(payload.get("is_refresh", False)),
            complete=bool(payload.get("complete", True)),
        )


@dataclass(frozen=True)
class NearMiss:
    """A dip candidate the detector rejected (the "why not here?" log).

    Attributes:
        trigger_sample: first whole sample below threshold.
        begin_sample / end_sample: refined candidate interval.
        reason: ``too_few_samples`` / ``inverted_edges`` /
            ``below_min_duration``.
        measured: the measured quantity the limit was applied to
            (whole samples, refined samples, or cycles respectively).
        limit: the configured limit it fell short of.
        min_level: deepest level inside the candidate.
        depth_margin: ``threshold - min_level``.
    """

    trigger_sample: int
    begin_sample: float
    end_sample: float
    reason: str
    measured: float
    limit: float
    min_level: float
    depth_margin: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trigger_sample": self.trigger_sample,
            "begin_sample": self.begin_sample,
            "end_sample": self.end_sample,
            "reason": self.reason,
            "measured": self.measured,
            "limit": self.limit,
            "min_level": self.min_level,
            "depth_margin": self.depth_margin,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "NearMiss":
        """Inverse of :meth:`to_dict`."""
        return cls(
            trigger_sample=int(payload["trigger_sample"]),
            begin_sample=float(payload["begin_sample"]),
            end_sample=float(payload["end_sample"]),
            reason=str(payload["reason"]),
            measured=float(payload["measured"]),
            limit=float(payload["limit"]),
            min_level=float(payload["min_level"]),
            depth_margin=float(payload["depth_margin"]),
        )


@dataclass(frozen=True)
class ReportEvidence:
    """The provenance record attached to a flight-recorded report.

    ``stalls[i]`` explains ``report.stalls[i]``; ``near_misses`` are
    the rejected candidates in time order.  ``overwritten_events``
    warns when the ring wrapped and early decisions were lost.
    """

    schema_version: int
    threshold: float
    recover_threshold: float
    min_duration_cycles: float
    min_duration_samples: int
    stalls: Tuple[StallEvidence, ...] = ()
    near_misses: Tuple[NearMiss, ...] = ()
    total_events: int = 0
    overwritten_events: int = 0

    def for_stall(self, index: int) -> StallEvidence:
        """Evidence for ``report.stalls[index]``."""
        return self.stalls[index]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "threshold": self.threshold,
            "recover_threshold": self.recover_threshold,
            "min_duration_cycles": self.min_duration_cycles,
            "min_duration_samples": self.min_duration_samples,
            "stalls": [s.to_dict() for s in self.stalls],
            "near_misses": [m.to_dict() for m in self.near_misses],
            "total_events": self.total_events,
            "overwritten_events": self.overwritten_events,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ReportEvidence":
        """Inverse of :meth:`to_dict`; raises ``ValueError`` if malformed."""
        try:
            return cls(
                schema_version=int(payload["schema_version"]),
                threshold=float(payload["threshold"]),
                recover_threshold=float(payload["recover_threshold"]),
                min_duration_cycles=float(payload["min_duration_cycles"]),
                min_duration_samples=int(payload["min_duration_samples"]),
                stalls=tuple(
                    StallEvidence.from_dict(s) for s in payload.get("stalls", [])
                ),
                near_misses=tuple(
                    NearMiss.from_dict(m) for m in payload.get("near_misses", [])
                ),
                total_events=int(payload.get("total_events", 0)),
                overwritten_events=int(payload.get("overwritten_events", 0)),
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed report evidence: {exc}") from exc


def _overlapping(
    begin: float, end: float, intervals: Sequence[Tuple[float, float]]
) -> Tuple[Tuple[float, float], ...]:
    """Intervals from ``intervals`` overlapping ``[begin, end]``."""
    return tuple(
        (float(b), float(e))
        for b, e in intervals
        if begin <= e and end >= b
    )


def build_evidence(
    stalls: Sequence,
    events: Iterable[FlightEvent],
    config,
    quality_intervals: Sequence[Tuple[float, float]] = (),
    recorder: Optional[FlightRecorder] = None,
) -> ReportEvidence:
    """Assemble per-stall provenance from a run's decision events.

    Args:
        stalls: the report's stall list (duck-typed: ``begin_sample``,
            ``end_sample``, ``min_level``, ``is_refresh``,
            ``low_confidence``).
        events: the run's flight events, in record order.
        config: the detector configuration in force (duck-typed:
            ``threshold``, ``recover_threshold``,
            ``min_duration_cycles``, ``min_duration_samples``).
        quality_intervals: impaired sample intervals from the quality
            monitor (empty when no monitoring ran).
        recorder: when given, its counters annotate completeness.
    """
    events = list(events)
    emitted = [e for e in events if e.kind == "stall_emitted"]
    merges = [e for e in events if e.kind == "hysteresis_merge"]
    carries = [e for e in events if e.kind in ("carry_open", "carry_merge")]
    rejected = [e for e in events if e.kind == "stall_rejected"]
    threshold = float(config.threshold)

    # stall_emitted events arrive in the same order stalls are
    # reported; verify by position and fall back to a degraded record
    # when the ring wrapped over this stall's trail.
    evidence: List[StallEvidence] = []
    cursor = 0
    for index, stall in enumerate(stalls):
        begin = float(stall.begin_sample)
        end = float(stall.end_sample)
        match: Optional[FlightEvent] = None
        while cursor < len(emitted):
            event = emitted[cursor]
            cursor += 1
            if abs(float(event.attrs.get("begin", -1.0)) - begin) < 1e-9:
                match = event
                break
        min_level = float(stall.min_level)
        if match is not None:
            trigger = int(match.attrs["trigger"])
            chain = tuple(
                {
                    "pos": m.pos,
                    "gap_len": m.attrs.get("gap_len"),
                    "gap_max": m.attrs.get("gap_max"),
                    "reason": m.attrs.get("reason"),
                }
                for m in merges
                if begin <= m.pos <= end
            )
            carry_chunks = sum(
                1
                for c in carries
                if begin - 1.0 <= float(c.attrs.get("start", -1)) <= end
            )
        else:
            # The decision trail was overwritten: reconstruct what the
            # report itself still tells us and say so.
            trigger = math.ceil(begin)
            chain = ()
            carry_chunks = 0
        evidence.append(
            StallEvidence(
                index=index,
                trigger_sample=trigger,
                begin_sample=begin,
                end_sample=end,
                threshold=threshold,
                min_level=min_level,
                depth_margin=threshold - min_level,
                duration_cycles=float(stall.end_cycle - stall.begin_cycle),
                merge_chain=chain,
                carried=carry_chunks > 0,
                carry_chunks=carry_chunks,
                quality_overlaps=_overlapping(begin, end, quality_intervals),
                low_confidence=bool(stall.low_confidence),
                is_refresh=bool(stall.is_refresh),
                complete=match is not None,
            )
        )

    near_misses = tuple(
        NearMiss(
            trigger_sample=int(e.attrs["trigger"]),
            begin_sample=float(e.attrs["begin"]),
            end_sample=float(e.attrs["end"]),
            reason=str(e.attrs["reason"]),
            measured=float(e.attrs["measured"]),
            limit=float(e.attrs["limit"]),
            min_level=float(e.attrs["min_level"]),
            depth_margin=threshold - float(e.attrs["min_level"]),
        )
        for e in rejected
    )

    return ReportEvidence(
        schema_version=FLIGHT_SCHEMA_VERSION,
        threshold=threshold,
        recover_threshold=float(config.recover_threshold),
        min_duration_cycles=float(config.min_duration_cycles),
        min_duration_samples=int(config.min_duration_samples),
        stalls=tuple(evidence),
        near_misses=near_misses,
        total_events=recorder.total_recorded if recorder is not None else len(events),
        overwritten_events=recorder.overwritten if recorder is not None else 0,
    )
