"""``repro-obs``: inspect observability artifacts from the terminal.

Two layers of interface, one exit-code contract:

**Snapshot forms** (the original surface):

* ``repro-obs metrics.json`` - pretty-print a metrics snapshot written
  by ``repro profile --metrics-out``;
* ``repro-obs --trace spans.json`` - summarize a span trace;
* ``repro-obs --live`` (or no arguments) - run a small synthetic
  capture+profile with observability enabled and print the result.

**Observatory subcommands** (over the run ledger):

* ``repro-obs ledger LEDGER.jsonl`` - list ledger entries;
* ``repro-obs regress LEDGER.jsonl`` - judge the latest run of every
  group against its history (:mod:`repro.obs.regress`);
* ``repro-obs dashboard LEDGER.jsonl -o out.html`` - write the
  self-contained HTML dashboard (:mod:`repro.obs.dashboard`).

**Live subcommands** (over the event bus / status protocol):

* ``repro-obs serve`` - serve the line-JSON status protocol
  (:mod:`repro.obs.statusd`) over this process's event bus,
  optionally pre-loading an NDJSON event file;
* ``repro-obs tail HOST:PORT`` - print a live server's recent events;
* ``repro-obs watch HOST:PORT`` - poll a live server and render
  streaming progress (chunks/s, samples/s, stall rate, quality
  flags); ``repro-obs watch --demo`` runs a self-contained demo
  (producer + server + watcher in one process);
* ``repro-obs stitch DIR|TRACE.json ...`` - merge per-process trace
  payloads (and the event stream's heartbeats) into one cross-process
  trace (:mod:`repro.obs.tracectx`).

Exit codes (CI contract, pinned by tests):

* ``0`` - success; for ``regress``, no regression detected
  (insufficient history is success);
* ``2`` - invalid input: a named file is missing or unreadable;
* ``3`` - ``regress`` found at least one regression.

Also reachable as ``repro obs ...`` from the main CLI.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from .ledger import RunLedger

EXIT_OK = 0
EXIT_BAD_INPUT = 2
EXIT_REGRESSION = 3

_SUBCOMMANDS = (
    "ledger",
    "regress",
    "dashboard",
    "serve",
    "tail",
    "watch",
    "stitch",
)

_QUANTILES = (0.5, 0.9, 0.99)


def format_metrics_snapshot(snapshot: Dict[str, Any]) -> str:
    """Human-readable rendering of a registry snapshot document."""
    lines: List[str] = []
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})

    if counters:
        lines.append("counters:")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {counters[name]['value']:g}")
    if gauges:
        lines.append("gauges:")
        width = max(len(name) for name in gauges)
        for name in sorted(gauges):
            lines.append(f"  {name:<{width}}  {gauges[name]['value']:g}")
    if histograms:
        lines.append("histograms:")
        for name in sorted(histograms):
            hist = histograms[name]
            count = hist.get("count", 0)
            lines.append(f"  {name}:")
            lines.append(
                f"    count {count}   sum {hist.get('sum', 0.0):g}   "
                f"min {hist.get('min')}   max {hist.get('max')}"
            )
            if count:
                quants = "   ".join(
                    f"p{int(q * 100)} {_snapshot_quantile(hist, q):.3g}"
                    for q in _QUANTILES
                )
                lines.append(f"    {quants}")
    if not lines:
        lines.append("(no metrics recorded)")
    return "\n".join(lines)


def _snapshot_quantile(hist: Dict[str, Any], q: float) -> float:
    """Quantile estimate from a snapshot's cumulative buckets."""
    buckets = hist.get("buckets", [])
    total = hist.get("count", 0)
    if not total or not buckets:
        return 0.0
    target = q * total
    low = hist.get("min")
    previous_cumulative = 0
    previous_bound = low if isinstance(low, (int, float)) else 0.0
    for bucket in buckets:
        cumulative = bucket["count"]
        in_bucket = cumulative - previous_cumulative
        bound = bucket["le"]
        upper = (
            float(bound)
            if isinstance(bound, (int, float))
            else hist.get("max") or previous_bound
        )
        if cumulative >= target and in_bucket > 0:
            frac = min(max((target - previous_cumulative) / in_bucket, 0.0), 1.0)
            return previous_bound + frac * (upper - previous_bound)
        if in_bucket > 0:
            previous_bound = upper
        previous_cumulative = cumulative
    maximum = hist.get("max")
    return float(maximum) if isinstance(maximum, (int, float)) else previous_bound


def format_trace_summary(payload: Dict[str, Any]) -> str:
    """Per-span-name rollup of a native-format trace document."""
    spans = payload.get("spans", [])
    if not spans:
        return "(no spans recorded)"
    rollup: Dict[str, Dict[str, float]] = {}
    for span in spans:
        row = rollup.setdefault(span["name"], {"count": 0.0, "total_s": 0.0})
        row["count"] += 1.0
        row["total_s"] += span.get("duration_s", 0.0)
    width = max(len(name) for name in rollup)
    lines = [f"{len(spans)} spans ({payload.get('dropped', 0)} dropped)"]
    lines.append(f"  {'span':<{width}}  {'count':>7}  {'total':>10}  {'mean':>10}")
    for name in sorted(rollup, key=lambda n: -rollup[n]["total_s"]):
        row = rollup[name]
        mean_s = row["total_s"] / row["count"]
        lines.append(
            f"  {name:<{width}}  {int(row['count']):>7}  "
            f"{row['total_s'] * 1e3:>8.3f}ms  {mean_s * 1e3:>8.3f}ms"
        )
    return "\n".join(lines)


def run_live_demo() -> str:
    """Capture+profile a tiny synthetic workload with obs enabled.

    Returns the pretty-printed metric snapshot plus a trace summary.
    Imports the heavy pipeline lazily so ``repro-obs`` on a file stays
    instant.
    """
    from . import metrics, set_obs_enabled, trace
    from ..core.profiler import Emprof
    from ..devices import olimex
    from ..experiments.runner import run_device
    from ..workloads import Microbenchmark

    previous = set_obs_enabled(True)
    trace.reset()
    metrics.reset()
    try:
        workload = Microbenchmark(total_misses=64, consecutive_misses=4)
        run = run_device(workload, olimex(), bandwidth_hz=40e6, seed=0)
        # A second, streaming-free profile over the same capture keeps
        # the demo deterministic and exercises profile() spans too.
        Emprof.from_capture(run.capture).profile()
    finally:
        set_obs_enabled(previous)
    parts = [
        "live demo: micro workload on olimex @ 40 MHz",
        "",
        format_metrics_snapshot(metrics.snapshot()),
        "",
        format_trace_summary(trace.to_payload()),
    ]
    return "\n".join(parts)


# -- ledger-backed subcommands ----------------------------------------------


def _load_ledger(path: str, allow_missing: bool = False):
    """Open and read a ledger, or return an exit code on bad input.

    Returns ``(records, bad_lines)`` on success and an ``int`` exit
    code on failure, so callers can ``return`` it directly.
    """
    ledger = RunLedger(path)
    if not ledger.exists():
        if allow_missing:
            print(f"repro-obs: no ledger at {path} yet; nothing to check")
            return EXIT_OK
        print(f"repro-obs: cannot read {path}: no such file", file=sys.stderr)
        return EXIT_BAD_INPUT
    try:
        return ledger.read_with_errors()
    except OSError as exc:
        print(f"repro-obs: cannot read {path}: {exc}", file=sys.stderr)
        return EXIT_BAD_INPUT


def cmd_ledger(args: argparse.Namespace) -> int:
    """List ledger entries (newest last, like the file itself)."""
    loaded = _load_ledger(args.ledger)
    if isinstance(loaded, int):
        return loaded
    records, bad_lines = loaded
    if args.kind:
        records = [r for r in records if r.kind == args.kind]
    selected = len(records)
    if args.tail > 0:
        records = records[-args.tail:]
    if not records:
        print("(empty ledger)")
        return EXIT_OK
    hidden = selected - len(records)
    if hidden > 0:
        print(
            f"(showing last {len(records)} of {selected} entries; "
            f"--tail 0 for all)"
        )
    group_width = max(len(r.group) for r in records)
    print(
        f"{'run':<{group_width}}  {'wall':>10}  {'rev':>9}  "
        f"{'fingerprint':>24}  schema"
    )
    for entry in records:
        print(
            f"{entry.group:<{group_width}}  "
            f"{entry.wall_time_s * 1e3:>8.2f}ms  {entry.git_rev:>9}  "
            f"{entry.config_fingerprint or '-':>24}  v{entry.schema_version}"
        )
    summary = f"{len(records)} entries"
    if bad_lines:
        summary += f" ({bad_lines} unparseable lines skipped)"
    print(summary)
    return EXIT_OK


def cmd_regress(args: argparse.Namespace) -> int:
    """Judge the latest run of every group against its history."""
    from .regress import RegressConfig, check_records

    loaded = _load_ledger(args.ledger, allow_missing=args.allow_missing)
    if isinstance(loaded, int):
        return loaded
    records, bad_lines = loaded
    if args.kind:
        records = [r for r in records if r.kind == args.kind]
    try:
        config = RegressConfig(
            baseline_window=args.window,
            min_history=args.min_history,
            mad_sigmas=args.sigmas,
            rel_slack=args.rel_slack,
            include_spans=not args.no_spans,
        )
    except ValueError as exc:
        print(f"repro-obs: invalid regression config: {exc}", file=sys.stderr)
        return EXIT_BAD_INPUT
    report = check_records(records, config)
    print(report.format())
    if bad_lines:
        print(f"({bad_lines} unparseable ledger lines skipped)")
    return EXIT_OK if report.ok else EXIT_REGRESSION


def cmd_dashboard(args: argparse.Namespace) -> int:
    """Write the self-contained HTML dashboard from ledger history."""
    from .dashboard import write_dashboard

    loaded = _load_ledger(args.ledger)
    if isinstance(loaded, int):
        return loaded
    records, bad_lines = loaded
    destination = write_dashboard(args.output, records, title=args.title)
    note = f" ({bad_lines} unparseable lines skipped)" if bad_lines else ""
    print(f"dashboard ({len(records)} entries) -> {destination}{note}")
    return EXIT_OK


# -- live subcommands --------------------------------------------------------


def format_event(event) -> str:
    """One-line terminal rendering of an event."""
    stamp = time.strftime("%H:%M:%S", time.localtime(event.t_unix_s))
    attrs = " ".join(
        f"{key}={value}" for key, value in sorted(event.attrs.items())
    )
    return f"{stamp}  {event.source:<8} {event.kind:<19} {attrs}".rstrip()


def _parse_target(address: str):
    """``(host, port)`` or an exit code, printable-error included."""
    from . import statusd

    try:
        return statusd.parse_address(address)
    except ValueError as exc:
        print(f"repro-obs: {exc}", file=sys.stderr)
        return EXIT_BAD_INPUT


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve the status protocol over this process's event bus."""
    from . import metrics, statusd
    from .events import bus, read_events

    if args.events:
        events, bad_lines = read_events(args.events)
        if not events and not Path(args.events).is_file():
            print(
                f"repro-obs: cannot read {args.events}: no such file",
                file=sys.stderr,
            )
            return EXIT_BAD_INPUT
        for event in events:
            bus.ingest(event.to_dict())
        note = f" ({bad_lines} unparseable lines skipped)" if bad_lines else ""
        print(f"loaded {len(events)} event(s) from {args.events}{note}")
    server = statusd.StatusServer(
        bus, metrics=metrics, host=args.host, port=args.port
    ).start()
    print(
        f"serving line-JSON status on {server.host}:{server.port} "
        "(status / metrics / tail N / health / watch)"
    )
    try:
        if args.duration is not None:
            time.sleep(args.duration)
        else:  # pragma: no cover - interactive foreground serve
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    finally:
        server.close()
    return EXIT_OK


def cmd_tail(args: argparse.Namespace) -> int:
    """Print a live server's most recent events."""
    from . import statusd
    from .events import Event

    target = _parse_target(args.address)
    if isinstance(target, int):
        return target
    host, port = target
    try:
        response = statusd.query(host, port, {"req": "tail", "n": args.n})
    except (OSError, ValueError) as exc:
        print(f"repro-obs: cannot query {host}:{port}: {exc}", file=sys.stderr)
        return EXIT_BAD_INPUT
    if not response.get("ok"):
        print(f"repro-obs: server error: {response.get('error')}", file=sys.stderr)
        return EXIT_BAD_INPUT
    events = []
    for payload in response.get("events", []):
        try:
            events.append(Event.from_dict(payload))
        except ValueError:
            continue
    for event in events:
        print(format_event(event))
    print(f"{len(events)} event(s)")
    return EXIT_OK


def _watch_line(previous: Dict[str, Any], stats: Dict[str, Any], dt: float) -> str:
    """One progress line from two successive ``status`` rollups."""
    def rate(key: str) -> float:
        return max(0.0, (stats.get(key, 0) - previous.get(key, 0)) / dt)

    def count_rate(kind: str) -> float:
        now = stats.get("counts", {}).get(kind, 0)
        before = previous.get("counts", {}).get(kind, 0)
        return max(0.0, (now - before) / dt)

    alive = len(stats.get("last_heartbeat_unix_s", {}))
    return (
        f"{count_rate('chunk_processed'):>8.1f} chunks/s  "
        f"{rate('samples_total'):>12.0f} samples/s  "
        f"{rate('stalls_total'):>8.1f} stalls/s  "
        f"{stats.get('quality_flags_total', 0):>4} quality flags  "
        f"{stats.get('dropped_events', 0):>4} dropped  "
        f"{alive:>2} source(s)"
    )


#: Ceiling on the watch client's reconnect backoff between probes.
_RECONNECT_CAP_S = 2.0


def _watch_loop(
    host: str,
    port: int,
    interval_s: float,
    duration_s: Optional[float],
    reconnect_timeout_s: float = 10.0,
) -> int:
    """Poll ``status`` and render progress until duration (or error).

    A server that was *never* reachable is a bad address: fail fast
    with :data:`EXIT_BAD_INPUT`.  A server that drops mid-stream (a
    campaign pass ended, ``repro-campaignd`` restarted) is retried
    with capped exponential backoff for up to ``reconnect_timeout_s``
    before the watcher gives up; on reconnect the rate baseline is
    reset, since a restarted server's counters restart from zero.
    ``reconnect_timeout_s=0`` disables retrying (one strike and out).
    """
    from . import statusd

    previous: Optional[Dict[str, Any]] = None
    previous_t = time.monotonic()
    deadline = (
        None if duration_s is None else time.monotonic() + duration_s
    )
    ever_connected = False
    lost_at: Optional[float] = None
    backoff_s = 0.0
    while True:
        try:
            response = statusd.query(host, port, {"req": "status"})
        except (OSError, ValueError) as exc:
            if not ever_connected:
                print(
                    f"repro-obs: cannot query {host}:{port}: {exc}",
                    file=sys.stderr,
                )
                return EXIT_BAD_INPUT
            now = time.monotonic()
            if lost_at is None:
                lost_at = now
                backoff_s = min(max(interval_s, 0.05), _RECONNECT_CAP_S)
                if reconnect_timeout_s > 0:
                    print(
                        f"(connection lost; retrying for up to "
                        f"{reconnect_timeout_s:.0f}s)"
                    )
            if (
                reconnect_timeout_s <= 0
                or now - lost_at >= reconnect_timeout_s
            ):
                print("(server went away)")
                return EXIT_OK
            if deadline is not None and now >= deadline:
                return EXIT_OK
            try:
                time.sleep(backoff_s)
            except KeyboardInterrupt:  # pragma: no cover - interactive
                return EXIT_OK
            backoff_s = min(backoff_s * 2.0, _RECONNECT_CAP_S)
            continue
        ever_connected = True
        if lost_at is not None:
            lost_at = None
            previous = None  # restarted counters: drop the baseline
            print("(reconnected; rate baseline reset)")
        stats = response.get("events", {})
        now = time.monotonic()
        if previous is not None:
            print(_watch_line(previous, stats, max(now - previous_t, 1e-9)))
        previous, previous_t = stats, now
        if deadline is not None and now >= deadline:
            return EXIT_OK
        try:
            time.sleep(interval_s)
        except KeyboardInterrupt:  # pragma: no cover - interactive stop
            return EXIT_OK


def run_watch_demo(
    duration_s: float = 2.0, interval_s: float = 0.25
) -> int:
    """Self-contained live demo: producer + status server + watcher.

    Streams a synthetic dip signal through :class:`StreamingEmprof` on
    a background thread (emitting per-chunk events and heartbeats),
    serves the bus on an ephemeral port, and runs the watch loop
    against it - one process, no arguments, bounded runtime.  This is
    what ``make watch-demo`` runs.
    """
    import threading

    import numpy as np

    from . import set_obs_enabled, statusd
    from .events import bus
    from ..core.streaming import StreamingEmprof

    previous_enabled = set_obs_enabled(True)
    bus.reset()
    previous_source = bus.set_source("demo")
    stop = threading.Event()

    def _produce() -> None:
        rng = np.random.default_rng(0)
        streamer = StreamingEmprof(sample_rate_hz=50e6, clock_hz=1e9)
        while not stop.is_set():
            chunk = 0.9 + rng.normal(0, 0.02, 5000)
            for start in range(400, 4600, 700):
                chunk[start : start + 13] = 0.1
            streamer.process(np.clip(chunk, 0.0, None))
            bus.emit("heartbeat", worker="demo")
            if stop.wait(0.05):
                break
        streamer.finish()

    server = statusd.StatusServer(bus).start()
    producer = threading.Thread(
        target=_produce, name="watch-demo-producer", daemon=True
    )
    producer.start()
    print(
        f"watch demo: streaming profile on {server.host}:{server.port} "
        f"for {duration_s:.0f}s"
    )
    try:
        return _watch_loop(server.host, server.port, interval_s, duration_s)
    finally:
        stop.set()
        producer.join(timeout=2.0)
        server.close()
        bus.reset()
        bus.set_source(previous_source)
        set_obs_enabled(previous_enabled)


def cmd_watch(args: argparse.Namespace) -> int:
    """Render live progress from a status server (or run the demo)."""
    if args.demo:
        duration = args.duration if args.duration is not None else 3.0
        return run_watch_demo(duration_s=duration, interval_s=args.interval)
    if not args.address:
        print(
            "repro-obs: watch needs HOST:PORT (or --demo)", file=sys.stderr
        )
        return EXIT_BAD_INPUT
    target = _parse_target(args.address)
    if isinstance(target, int):
        return target
    host, port = target
    return _watch_loop(
        host,
        port,
        args.interval,
        args.duration,
        reconnect_timeout_s=args.reconnect_timeout,
    )


def cmd_stitch(args: argparse.Namespace) -> int:
    """Merge per-process trace payloads into one stitched trace."""
    from .events import read_events
    from .ledger import atomic_write_json
    from .tracectx import render_stitched, stitch_traces

    trace_paths: List[Path] = []
    events_path = Path(args.events) if args.events else None
    for target in args.inputs:
        path = Path(target)
        if path.is_dir():
            # A campaign directory: every per-process payload, plus
            # its event stream unless one was named explicitly.
            trace_paths.extend(sorted(path.glob("*.trace.json")))
            candidate = path / "events.ndjsonl"
            if events_path is None and candidate.is_file():
                events_path = candidate
        else:
            trace_paths.append(path)
    if not trace_paths:
        print("repro-obs: no trace payloads to stitch", file=sys.stderr)
        return EXIT_BAD_INPUT
    payloads = []
    for path in trace_paths:
        try:
            payloads.append(json.loads(path.read_text(encoding="utf-8")))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"repro-obs: cannot read {path}: {exc}", file=sys.stderr)
            return EXIT_BAD_INPUT
    events = None
    bad_lines = 0
    if events_path is not None:
        events, bad_lines = read_events(events_path)
    document = stitch_traces(payloads, events=events)
    if args.json:
        atomic_write_json(args.json, document)
        print(f"stitched document -> {args.json}")
    print(render_stitched(document))
    if bad_lines:
        print(f"({bad_lines} unparseable event lines skipped)")
    return EXIT_OK


def _build_sub_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="EMPROF run-ledger observatory",
    )
    sub = parser.add_subparsers(dest="subcommand", required=True)

    led = sub.add_parser("ledger", help="list run-ledger entries")
    led.add_argument("ledger", help="ledger .jsonl path")
    led.add_argument("--kind", help="only entries of this run kind")
    led.add_argument(
        "--tail",
        type=int,
        default=20,
        help="only the last N entries (default 20, so campaign-scale "
        "ledgers stay readable; 0 lists everything)",
    )
    led.set_defaults(func=cmd_ledger)

    reg = sub.add_parser(
        "regress", help="compare the latest runs against ledger history"
    )
    reg.add_argument("ledger", help="ledger .jsonl path")
    reg.add_argument("--kind", help="only judge entries of this run kind")
    reg.add_argument(
        "--window", type=int, default=5, help="baseline window size"
    )
    reg.add_argument(
        "--min-history", type=int, default=3,
        help="prior entries required before a group is judged",
    )
    reg.add_argument(
        "--sigmas", type=float, default=4.0, help="MAD-sigma slack multiplier"
    )
    reg.add_argument(
        "--rel-slack", type=float, default=0.25, help="relative slack floor"
    )
    reg.add_argument(
        "--no-spans", action="store_true",
        help="judge wall time only, not per-span totals",
    )
    reg.add_argument(
        "--allow-missing", action="store_true",
        help="exit 0 when the ledger does not exist yet (fresh checkout)",
    )
    reg.set_defaults(func=cmd_regress)

    dash = sub.add_parser(
        "dashboard", help="write the self-contained HTML dashboard"
    )
    dash.add_argument("ledger", help="ledger .jsonl path")
    dash.add_argument(
        "-o", "--output", default="dashboard_obs.html",
        help="output HTML path (default: dashboard_obs.html)",
    )
    dash.add_argument(
        "--title", default="EMPROF run observatory", help="report title"
    )
    dash.set_defaults(func=cmd_dashboard)

    serve = sub.add_parser(
        "serve", help="serve the line-JSON status protocol"
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve.add_argument(
        "--port", type=int, default=0,
        help="bind port (default: 0 = ephemeral, printed at startup)",
    )
    serve.add_argument(
        "--events", help="pre-load an NDJSON event file into the bus"
    )
    serve.add_argument(
        "--duration", type=float, default=None,
        help="serve for this many seconds then exit (default: forever)",
    )
    serve.set_defaults(func=cmd_serve)

    tail = sub.add_parser(
        "tail", help="print a live status server's recent events"
    )
    tail.add_argument("address", help="HOST:PORT of a status server")
    tail.add_argument(
        "-n", type=int, default=20, help="events to fetch (default: 20)"
    )
    tail.set_defaults(func=cmd_tail)

    watch = sub.add_parser(
        "watch", help="render live progress from a status server"
    )
    watch.add_argument(
        "address", nargs="?", help="HOST:PORT of a status server"
    )
    watch.add_argument(
        "--interval", type=float, default=1.0,
        help="seconds between progress lines (default: 1)",
    )
    watch.add_argument(
        "--duration", type=float, default=None,
        help="stop after this many seconds (default: until interrupted)",
    )
    watch.add_argument(
        "--demo", action="store_true",
        help="run a self-contained producer+server+watcher demo",
    )
    watch.add_argument(
        "--reconnect-timeout", type=float, default=10.0, metavar="S",
        help="keep retrying a dropped server for this long with capped "
        "exponential backoff; 0 gives up on the first miss "
        "(default: 10)",
    )
    watch.set_defaults(func=cmd_watch)

    stitch = sub.add_parser(
        "stitch", help="merge per-process traces into one stitched trace"
    )
    stitch.add_argument(
        "inputs", nargs="+",
        help="trace payload .json files, or campaign directories "
        "(globs *.trace.json and picks up events.ndjsonl)",
    )
    stitch.add_argument(
        "--events", help="NDJSON event file for the heartbeat table"
    )
    stitch.add_argument(
        "--json", metavar="OUT",
        help="also write the stitched document as JSON to OUT",
    )
    stitch.set_defaults(func=cmd_stitch)

    return parser


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description=(
            "pretty-print EMPROF observability artifacts; see also the "
            "'ledger', 'regress' and 'dashboard' subcommands"
        ),
    )
    parser.add_argument(
        "metrics",
        nargs="?",
        help="metrics snapshot .json (from `repro profile --metrics-out`)",
    )
    parser.add_argument(
        "--trace",
        metavar="SPANS_JSON",
        help="summarize a span trace (from `repro profile --trace-out`)",
    )
    parser.add_argument(
        "--live",
        action="store_true",
        help="run a small synthetic workload with observability on",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in _SUBCOMMANDS:
        args = _build_sub_parser().parse_args(argv)
        return args.func(args)

    parser = build_parser()
    args = parser.parse_args(argv)

    if not args.metrics and not args.trace and not args.live:
        print(run_live_demo())
        return EXIT_OK

    if args.live:
        print(run_live_demo())
    if args.metrics:
        try:
            with open(args.metrics, "r", encoding="utf-8") as handle:
                snapshot = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"repro-obs: cannot read {args.metrics}: {exc}", file=sys.stderr)
            return EXIT_BAD_INPUT
        print(format_metrics_snapshot(snapshot))
    if args.trace:
        try:
            with open(args.trace, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"repro-obs: cannot read {args.trace}: {exc}", file=sys.stderr)
            return EXIT_BAD_INPUT
        print(format_trace_summary(payload))
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
