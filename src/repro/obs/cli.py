"""``repro-obs``: inspect observability artifacts from the terminal.

Two layers of interface, one exit-code contract:

**Snapshot forms** (the original surface):

* ``repro-obs metrics.json`` - pretty-print a metrics snapshot written
  by ``repro profile --metrics-out``;
* ``repro-obs --trace spans.json`` - summarize a span trace;
* ``repro-obs --live`` (or no arguments) - run a small synthetic
  capture+profile with observability enabled and print the result.

**Observatory subcommands** (over the run ledger):

* ``repro-obs ledger LEDGER.jsonl`` - list ledger entries;
* ``repro-obs regress LEDGER.jsonl`` - judge the latest run of every
  group against its history (:mod:`repro.obs.regress`);
* ``repro-obs dashboard LEDGER.jsonl -o out.html`` - write the
  self-contained HTML dashboard (:mod:`repro.obs.dashboard`).

Exit codes (CI contract, pinned by tests):

* ``0`` - success; for ``regress``, no regression detected
  (insufficient history is success);
* ``2`` - invalid input: a named file is missing or unreadable;
* ``3`` - ``regress`` found at least one regression.

Also reachable as ``repro obs ...`` from the main CLI.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

from .ledger import RunLedger

EXIT_OK = 0
EXIT_BAD_INPUT = 2
EXIT_REGRESSION = 3

_SUBCOMMANDS = ("ledger", "regress", "dashboard")

_QUANTILES = (0.5, 0.9, 0.99)


def format_metrics_snapshot(snapshot: Dict[str, Any]) -> str:
    """Human-readable rendering of a registry snapshot document."""
    lines: List[str] = []
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})

    if counters:
        lines.append("counters:")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {counters[name]['value']:g}")
    if gauges:
        lines.append("gauges:")
        width = max(len(name) for name in gauges)
        for name in sorted(gauges):
            lines.append(f"  {name:<{width}}  {gauges[name]['value']:g}")
    if histograms:
        lines.append("histograms:")
        for name in sorted(histograms):
            hist = histograms[name]
            count = hist.get("count", 0)
            lines.append(f"  {name}:")
            lines.append(
                f"    count {count}   sum {hist.get('sum', 0.0):g}   "
                f"min {hist.get('min')}   max {hist.get('max')}"
            )
            if count:
                quants = "   ".join(
                    f"p{int(q * 100)} {_snapshot_quantile(hist, q):.3g}"
                    for q in _QUANTILES
                )
                lines.append(f"    {quants}")
    if not lines:
        lines.append("(no metrics recorded)")
    return "\n".join(lines)


def _snapshot_quantile(hist: Dict[str, Any], q: float) -> float:
    """Quantile estimate from a snapshot's cumulative buckets."""
    buckets = hist.get("buckets", [])
    total = hist.get("count", 0)
    if not total or not buckets:
        return 0.0
    target = q * total
    low = hist.get("min")
    previous_cumulative = 0
    previous_bound = low if isinstance(low, (int, float)) else 0.0
    for bucket in buckets:
        cumulative = bucket["count"]
        in_bucket = cumulative - previous_cumulative
        bound = bucket["le"]
        upper = (
            float(bound)
            if isinstance(bound, (int, float))
            else hist.get("max") or previous_bound
        )
        if cumulative >= target and in_bucket > 0:
            frac = min(max((target - previous_cumulative) / in_bucket, 0.0), 1.0)
            return previous_bound + frac * (upper - previous_bound)
        if in_bucket > 0:
            previous_bound = upper
        previous_cumulative = cumulative
    maximum = hist.get("max")
    return float(maximum) if isinstance(maximum, (int, float)) else previous_bound


def format_trace_summary(payload: Dict[str, Any]) -> str:
    """Per-span-name rollup of a native-format trace document."""
    spans = payload.get("spans", [])
    if not spans:
        return "(no spans recorded)"
    rollup: Dict[str, Dict[str, float]] = {}
    for span in spans:
        row = rollup.setdefault(span["name"], {"count": 0.0, "total_s": 0.0})
        row["count"] += 1.0
        row["total_s"] += span.get("duration_s", 0.0)
    width = max(len(name) for name in rollup)
    lines = [f"{len(spans)} spans ({payload.get('dropped', 0)} dropped)"]
    lines.append(f"  {'span':<{width}}  {'count':>7}  {'total':>10}  {'mean':>10}")
    for name in sorted(rollup, key=lambda n: -rollup[n]["total_s"]):
        row = rollup[name]
        mean_s = row["total_s"] / row["count"]
        lines.append(
            f"  {name:<{width}}  {int(row['count']):>7}  "
            f"{row['total_s'] * 1e3:>8.3f}ms  {mean_s * 1e3:>8.3f}ms"
        )
    return "\n".join(lines)


def run_live_demo() -> str:
    """Capture+profile a tiny synthetic workload with obs enabled.

    Returns the pretty-printed metric snapshot plus a trace summary.
    Imports the heavy pipeline lazily so ``repro-obs`` on a file stays
    instant.
    """
    from . import metrics, set_obs_enabled, trace
    from ..core.profiler import Emprof
    from ..devices import olimex
    from ..experiments.runner import run_device
    from ..workloads import Microbenchmark

    previous = set_obs_enabled(True)
    trace.reset()
    metrics.reset()
    try:
        workload = Microbenchmark(total_misses=64, consecutive_misses=4)
        run = run_device(workload, olimex(), bandwidth_hz=40e6, seed=0)
        # A second, streaming-free profile over the same capture keeps
        # the demo deterministic and exercises profile() spans too.
        Emprof.from_capture(run.capture).profile()
    finally:
        set_obs_enabled(previous)
    parts = [
        "live demo: micro workload on olimex @ 40 MHz",
        "",
        format_metrics_snapshot(metrics.snapshot()),
        "",
        format_trace_summary(trace.to_payload()),
    ]
    return "\n".join(parts)


# -- ledger-backed subcommands ----------------------------------------------


def _load_ledger(path: str, allow_missing: bool = False):
    """Open and read a ledger, or return an exit code on bad input.

    Returns ``(records, bad_lines)`` on success and an ``int`` exit
    code on failure, so callers can ``return`` it directly.
    """
    ledger = RunLedger(path)
    if not ledger.exists():
        if allow_missing:
            print(f"repro-obs: no ledger at {path} yet; nothing to check")
            return EXIT_OK
        print(f"repro-obs: cannot read {path}: no such file", file=sys.stderr)
        return EXIT_BAD_INPUT
    try:
        return ledger.read_with_errors()
    except OSError as exc:
        print(f"repro-obs: cannot read {path}: {exc}", file=sys.stderr)
        return EXIT_BAD_INPUT


def cmd_ledger(args: argparse.Namespace) -> int:
    """List ledger entries (newest last, like the file itself)."""
    loaded = _load_ledger(args.ledger)
    if isinstance(loaded, int):
        return loaded
    records, bad_lines = loaded
    if args.kind:
        records = [r for r in records if r.kind == args.kind]
    if args.tail > 0:
        records = records[-args.tail:]
    if not records:
        print("(empty ledger)")
        return EXIT_OK
    group_width = max(len(r.group) for r in records)
    print(
        f"{'run':<{group_width}}  {'wall':>10}  {'rev':>9}  "
        f"{'fingerprint':>24}  schema"
    )
    for entry in records:
        print(
            f"{entry.group:<{group_width}}  "
            f"{entry.wall_time_s * 1e3:>8.2f}ms  {entry.git_rev:>9}  "
            f"{entry.config_fingerprint or '-':>24}  v{entry.schema_version}"
        )
    summary = f"{len(records)} entries"
    if bad_lines:
        summary += f" ({bad_lines} unparseable lines skipped)"
    print(summary)
    return EXIT_OK


def cmd_regress(args: argparse.Namespace) -> int:
    """Judge the latest run of every group against its history."""
    from .regress import RegressConfig, check_records

    loaded = _load_ledger(args.ledger, allow_missing=args.allow_missing)
    if isinstance(loaded, int):
        return loaded
    records, bad_lines = loaded
    if args.kind:
        records = [r for r in records if r.kind == args.kind]
    try:
        config = RegressConfig(
            baseline_window=args.window,
            min_history=args.min_history,
            mad_sigmas=args.sigmas,
            rel_slack=args.rel_slack,
            include_spans=not args.no_spans,
        )
    except ValueError as exc:
        print(f"repro-obs: invalid regression config: {exc}", file=sys.stderr)
        return EXIT_BAD_INPUT
    report = check_records(records, config)
    print(report.format())
    if bad_lines:
        print(f"({bad_lines} unparseable ledger lines skipped)")
    return EXIT_OK if report.ok else EXIT_REGRESSION


def cmd_dashboard(args: argparse.Namespace) -> int:
    """Write the self-contained HTML dashboard from ledger history."""
    from .dashboard import write_dashboard

    loaded = _load_ledger(args.ledger)
    if isinstance(loaded, int):
        return loaded
    records, bad_lines = loaded
    destination = write_dashboard(args.output, records, title=args.title)
    note = f" ({bad_lines} unparseable lines skipped)" if bad_lines else ""
    print(f"dashboard ({len(records)} entries) -> {destination}{note}")
    return EXIT_OK


def _build_sub_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="EMPROF run-ledger observatory",
    )
    sub = parser.add_subparsers(dest="subcommand", required=True)

    led = sub.add_parser("ledger", help="list run-ledger entries")
    led.add_argument("ledger", help="ledger .jsonl path")
    led.add_argument("--kind", help="only entries of this run kind")
    led.add_argument(
        "--tail", type=int, default=0, help="only the last N entries"
    )
    led.set_defaults(func=cmd_ledger)

    reg = sub.add_parser(
        "regress", help="compare the latest runs against ledger history"
    )
    reg.add_argument("ledger", help="ledger .jsonl path")
    reg.add_argument("--kind", help="only judge entries of this run kind")
    reg.add_argument(
        "--window", type=int, default=5, help="baseline window size"
    )
    reg.add_argument(
        "--min-history", type=int, default=3,
        help="prior entries required before a group is judged",
    )
    reg.add_argument(
        "--sigmas", type=float, default=4.0, help="MAD-sigma slack multiplier"
    )
    reg.add_argument(
        "--rel-slack", type=float, default=0.25, help="relative slack floor"
    )
    reg.add_argument(
        "--no-spans", action="store_true",
        help="judge wall time only, not per-span totals",
    )
    reg.add_argument(
        "--allow-missing", action="store_true",
        help="exit 0 when the ledger does not exist yet (fresh checkout)",
    )
    reg.set_defaults(func=cmd_regress)

    dash = sub.add_parser(
        "dashboard", help="write the self-contained HTML dashboard"
    )
    dash.add_argument("ledger", help="ledger .jsonl path")
    dash.add_argument(
        "-o", "--output", default="dashboard_obs.html",
        help="output HTML path (default: dashboard_obs.html)",
    )
    dash.add_argument(
        "--title", default="EMPROF run observatory", help="report title"
    )
    dash.set_defaults(func=cmd_dashboard)

    return parser


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description=(
            "pretty-print EMPROF observability artifacts; see also the "
            "'ledger', 'regress' and 'dashboard' subcommands"
        ),
    )
    parser.add_argument(
        "metrics",
        nargs="?",
        help="metrics snapshot .json (from `repro profile --metrics-out`)",
    )
    parser.add_argument(
        "--trace",
        metavar="SPANS_JSON",
        help="summarize a span trace (from `repro profile --trace-out`)",
    )
    parser.add_argument(
        "--live",
        action="store_true",
        help="run a small synthetic workload with observability on",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in _SUBCOMMANDS:
        args = _build_sub_parser().parse_args(argv)
        return args.func(args)

    parser = build_parser()
    args = parser.parse_args(argv)

    if not args.metrics and not args.trace and not args.live:
        print(run_live_demo())
        return EXIT_OK

    if args.live:
        print(run_live_demo())
    if args.metrics:
        try:
            with open(args.metrics, "r", encoding="utf-8") as handle:
                snapshot = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"repro-obs: cannot read {args.metrics}: {exc}", file=sys.stderr)
            return EXIT_BAD_INPUT
        print(format_metrics_snapshot(snapshot))
    if args.trace:
        try:
            with open(args.trace, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"repro-obs: cannot read {args.trace}: {exc}", file=sys.stderr)
            return EXIT_BAD_INPUT
        print(format_trace_summary(payload))
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
