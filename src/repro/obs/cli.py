"""``repro-obs``: inspect observability artifacts from the terminal.

Three modes:

* ``repro-obs metrics.json`` - pretty-print a metrics snapshot written
  by ``repro profile --metrics-out`` (or any
  :meth:`~repro.obs.metrics.MetricsRegistry.to_json` document);
* ``repro-obs --trace spans.json`` - summarize a span trace written by
  ``repro profile --trace-out`` (native JSON format);
* ``repro-obs --live`` - run a small synthetic capture+profile with
  observability enabled and print the resulting snapshot, as a
  smoke-test of the whole instrumentation chain.

Also reachable as ``repro obs`` from the main CLI.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

_QUANTILES = (0.5, 0.9, 0.99)


def format_metrics_snapshot(snapshot: Dict[str, Any]) -> str:
    """Human-readable rendering of a registry snapshot document."""
    lines: List[str] = []
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})

    if counters:
        lines.append("counters:")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {counters[name]['value']:g}")
    if gauges:
        lines.append("gauges:")
        width = max(len(name) for name in gauges)
        for name in sorted(gauges):
            lines.append(f"  {name:<{width}}  {gauges[name]['value']:g}")
    if histograms:
        lines.append("histograms:")
        for name in sorted(histograms):
            hist = histograms[name]
            count = hist.get("count", 0)
            lines.append(f"  {name}:")
            lines.append(
                f"    count {count}   sum {hist.get('sum', 0.0):g}   "
                f"min {hist.get('min')}   max {hist.get('max')}"
            )
            if count:
                quants = "   ".join(
                    f"p{int(q * 100)} {_snapshot_quantile(hist, q):.3g}"
                    for q in _QUANTILES
                )
                lines.append(f"    {quants}")
    if not lines:
        lines.append("(no metrics recorded)")
    return "\n".join(lines)


def _snapshot_quantile(hist: Dict[str, Any], q: float) -> float:
    """Quantile estimate from a snapshot's cumulative buckets."""
    buckets = hist.get("buckets", [])
    total = hist.get("count", 0)
    if not total or not buckets:
        return 0.0
    target = q * total
    low = hist.get("min")
    previous_cumulative = 0
    previous_bound = low if isinstance(low, (int, float)) else 0.0
    for bucket in buckets:
        cumulative = bucket["count"]
        in_bucket = cumulative - previous_cumulative
        bound = bucket["le"]
        upper = (
            float(bound)
            if isinstance(bound, (int, float))
            else hist.get("max") or previous_bound
        )
        if cumulative >= target and in_bucket > 0:
            frac = min(max((target - previous_cumulative) / in_bucket, 0.0), 1.0)
            return previous_bound + frac * (upper - previous_bound)
        if in_bucket > 0:
            previous_bound = upper
        previous_cumulative = cumulative
    maximum = hist.get("max")
    return float(maximum) if isinstance(maximum, (int, float)) else previous_bound


def format_trace_summary(payload: Dict[str, Any]) -> str:
    """Per-span-name rollup of a native-format trace document."""
    spans = payload.get("spans", [])
    if not spans:
        return "(no spans recorded)"
    rollup: Dict[str, Dict[str, float]] = {}
    for span in spans:
        row = rollup.setdefault(span["name"], {"count": 0.0, "total_s": 0.0})
        row["count"] += 1.0
        row["total_s"] += span.get("duration_s", 0.0)
    width = max(len(name) for name in rollup)
    lines = [f"{len(spans)} spans ({payload.get('dropped', 0)} dropped)"]
    lines.append(f"  {'span':<{width}}  {'count':>7}  {'total':>10}  {'mean':>10}")
    for name in sorted(rollup, key=lambda n: -rollup[n]["total_s"]):
        row = rollup[name]
        mean_s = row["total_s"] / row["count"]
        lines.append(
            f"  {name:<{width}}  {int(row['count']):>7}  "
            f"{row['total_s'] * 1e3:>8.3f}ms  {mean_s * 1e3:>8.3f}ms"
        )
    return "\n".join(lines)


def run_live_demo() -> str:
    """Capture+profile a tiny synthetic workload with obs enabled.

    Returns the pretty-printed metric snapshot plus a trace summary.
    Imports the heavy pipeline lazily so ``repro-obs`` on a file stays
    instant.
    """
    from . import metrics, set_obs_enabled, trace
    from ..core.profiler import Emprof
    from ..devices import olimex
    from ..experiments.runner import run_device
    from ..workloads import Microbenchmark

    previous = set_obs_enabled(True)
    trace.reset()
    metrics.reset()
    try:
        workload = Microbenchmark(total_misses=64, consecutive_misses=4)
        run = run_device(workload, olimex(), bandwidth_hz=40e6, seed=0)
        # A second, streaming-free profile over the same capture keeps
        # the demo deterministic and exercises profile() spans too.
        Emprof.from_capture(run.capture).profile()
    finally:
        set_obs_enabled(previous)
    parts = [
        "live demo: micro workload on olimex @ 40 MHz",
        "",
        format_metrics_snapshot(metrics.snapshot()),
        "",
        format_trace_summary(trace.to_payload()),
    ]
    return "\n".join(parts)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="pretty-print EMPROF observability artifacts",
    )
    parser.add_argument(
        "metrics",
        nargs="?",
        help="metrics snapshot .json (from `repro profile --metrics-out`)",
    )
    parser.add_argument(
        "--trace",
        metavar="SPANS_JSON",
        help="summarize a span trace (from `repro profile --trace-out`)",
    )
    parser.add_argument(
        "--live",
        action="store_true",
        help="run a small synthetic workload with observability on",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if not args.metrics and not args.trace and not args.live:
        print(run_live_demo())
        return 0

    if args.live:
        print(run_live_demo())
    if args.metrics:
        try:
            with open(args.metrics, "r", encoding="utf-8") as handle:
                snapshot = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"repro-obs: cannot read {args.metrics}: {exc}", file=sys.stderr)
            return 2
        print(format_metrics_snapshot(snapshot))
    if args.trace:
        try:
            with open(args.trace, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"repro-obs: cannot read {args.trace}: {exc}", file=sys.stderr)
            return 2
        print(format_trace_summary(payload))
    return 0


if __name__ == "__main__":
    sys.exit(main())
