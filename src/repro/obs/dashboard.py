"""Self-contained HTML dashboard over the run ledger.

``render_dashboard`` turns ledger history (:mod:`repro.obs.ledger`)
into **one** HTML file with zero external references: styles are an
inline ``<style>`` block, charts are inline SVG sparklines and plain
CSS bars, and there is no ``<script>``, no network fetch, and no
third-party import anywhere - the file opens identically on an
air-gapped bench machine, which is where EM-measurement campaigns
actually run.

Sections:

* headline tiles - entries, groups, regression verdicts, revisions;
* one card per ``(kind, label)`` group - wall-time trend sparkline,
  latest vs. baseline, and the observatory's verdict for that group;
* per-span timing breakdown of each group's latest entry (bars);
* metric sparklines - selected counters across ledger history;
* quality/fault overlay - signal-quality accounting and failed runs
  from campaign telemetry.

Verdict coloring follows the status convention (good/critical) and is
always paired with a text label, never color alone.
"""

from __future__ import annotations

import html
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .ledger import PathLike, RunRecord
from .regress import RegressConfig, RegressionReport, check_records

#: Sparkline geometry (CSS pixels).
_SPARK_WIDTH = 220
_SPARK_HEIGHT = 44
_SPARK_PAD = 4

#: Most spans / counters shown per card before folding the tail.
_MAX_SPAN_ROWS = 8
_MAX_COUNTER_CHARTS = 6

_CSS = """
:root { color-scheme: light dark; }
body.viz-root {
  margin: 0; padding: 24px;
  background: var(--surface-1); color: var(--text-primary);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
  --surface-1: #fcfcfb; --surface-2: #f1f0ec;
  --text-primary: #0b0b0b; --text-secondary: #52514e;
  --grid: #dddcd6; --series-1: #2a78d6;
  --status-good: #0ca30c; --status-critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  body.viz-root {
    --surface-1: #1a1a19; --surface-2: #242423;
    --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --grid: #3a3a38; --series-1: #3987e5;
    --status-good: #0ca30c; --status-critical: #d03b3b;
  }
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 10px; }
.meta { color: var(--text-secondary); margin: 0 0 18px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.tile {
  background: var(--surface-2); border-radius: 8px;
  padding: 10px 16px; min-width: 110px;
}
.tile .value { font-size: 22px; font-weight: 600; }
.tile .label { color: var(--text-secondary); font-size: 12px; }
.cards { display: flex; flex-wrap: wrap; gap: 14px; }
.card {
  background: var(--surface-2); border-radius: 8px;
  padding: 12px 16px; width: 300px;
}
.card .name { font-weight: 600; word-break: break-all; }
.card .sub { color: var(--text-secondary); font-size: 12px; margin-bottom: 6px; }
.spark line.mid { stroke: var(--grid); stroke-width: 1; }
.spark polyline {
  fill: none; stroke: var(--series-1);
  stroke-width: 2; stroke-linejoin: round; stroke-linecap: round;
}
.spark circle { fill: var(--series-1); }
.spark text { fill: var(--text-secondary); font-size: 10px; }
.badge {
  display: inline-block; border-radius: 10px; padding: 0 8px;
  font-size: 12px; font-weight: 600; color: #ffffff;
}
.badge.ok { background: var(--status-good); }
.badge.regression { background: var(--status-critical); }
.badge.pending { background: var(--text-secondary); }
.bar-row { display: flex; align-items: center; gap: 8px; margin: 2px 0; }
.bar-row .bar-label {
  width: 150px; font-size: 12px; color: var(--text-secondary);
  overflow: hidden; text-overflow: ellipsis; white-space: nowrap;
}
.bar-row .bar-track { flex: 1; background: var(--surface-1); border-radius: 4px; }
.bar-row .bar-fill {
  height: 10px; border-radius: 4px; background: var(--series-1);
  min-width: 2px;
}
.bar-row .bar-value { width: 80px; font-size: 12px; text-align: right; }
table.quality { border-collapse: collapse; font-size: 13px; }
table.quality th, table.quality td {
  text-align: right; padding: 4px 10px;
  border-bottom: 1px solid var(--grid);
}
table.quality th { color: var(--text-secondary); font-weight: 500; }
table.quality td.name, table.quality th.name { text-align: left; }
footer { margin-top: 28px; color: var(--text-secondary); font-size: 12px; }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _fmt_duration(seconds: float) -> str:
    """Human duration: picks s / ms / µs by magnitude."""
    magnitude = abs(seconds)
    if magnitude >= 1.0:
        return f"{seconds:.2f} s"
    if magnitude >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds * 1e6:.0f} µs"


def _fmt_when(unix_s: float) -> str:
    if unix_s <= 0:
        return "-"
    return time.strftime("%Y-%m-%d %H:%M:%S", time.gmtime(unix_s)) + " UTC"


def _sparkline(
    values: Sequence[float], latest_label: str = "", tooltip: str = ""
) -> str:
    """Inline-SVG trend line with a dot on the newest point.

    ``tooltip``, when given, becomes the SVG ``<title>`` - the
    browser-native hover tooltip - used to surface latency percentiles
    without spending card real estate on them.
    """
    if not values:
        return ""
    width, height, pad = _SPARK_WIDTH, _SPARK_HEIGHT, _SPARK_PAD
    lowest = min(values)
    highest = max(values)
    value_span = highest - lowest
    points: List[Tuple[float, float]] = []
    n = len(values)
    for index, value in enumerate(values):
        x = pad + (width - 2 * pad) * (index / (n - 1) if n > 1 else 0.5)
        if value_span <= 0:
            y = height / 2
        else:
            y = (height - pad) - (height - 2 * pad) * (
                (value - lowest) / value_span
            )
        points.append((x, y))
    polyline = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
    last_x, last_y = points[-1]
    label = (
        f'<text x="{width - 2:.0f}" y="10" text-anchor="end">'
        f"{_esc(latest_label)}</text>"
        if latest_label
        else ""
    )
    hover = f"<title>{_esc(tooltip)}</title>" if tooltip else ""
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="trend, latest {_esc(latest_label)}">'
        f"{hover}"
        f'<line class="mid" x1="{pad}" y1="{height / 2:.1f}" '
        f'x2="{width - pad}" y2="{height / 2:.1f}"/>'
        f'<polyline points="{polyline}"/>'
        f'<circle cx="{last_x:.1f}" cy="{last_y:.1f}" r="3"/>'
        f"{label}</svg>"
    )


def _badge(status: str) -> str:
    if status == "regression":
        return '<span class="badge regression">REGRESSION</span>'
    if status == "ok":
        return '<span class="badge ok">ok</span>'
    return '<span class="badge pending">gathering history</span>'


def _tile(value: str, label: str) -> str:
    return (
        f'<div class="tile"><div class="value">{_esc(value)}</div>'
        f'<div class="label">{_esc(label)}</div></div>'
    )


def _group_status(report: RegressionReport) -> Dict[str, str]:
    """Worst verdict per group: regression > ok > insufficient."""
    rank = {"regression": 2, "ok": 1}
    out: Dict[str, str] = {}
    for verdict in report.verdicts:
        current = out.get(verdict.group)
        if current is None or rank.get(verdict.status, 0) > rank.get(current, 0):
            out[verdict.group] = verdict.status
    return out


def _percentile_tooltip(entry: RunRecord) -> str:
    """The latest entry's histogram percentiles, one line per metric.

    Feeds the wall-time sparkline's hover tooltip; entries recorded
    before the exporter carried percentiles simply yield "".
    """
    if not entry.metrics:
        return ""
    lines: List[str] = []
    for name, row in sorted(entry.metrics.get("histograms", {}).items()):
        if not isinstance(row, dict):
            continue
        percentiles = row.get("percentiles")
        if not isinstance(percentiles, dict):
            continue
        cells = [
            f"{suffix} {_fmt_duration(float(value))}"
            for suffix, value in sorted(percentiles.items())
            if isinstance(value, (int, float))
        ]
        if cells:
            lines.append(f"{name}: " + " · ".join(cells))
    return "\n".join(lines)


def _group_cards(
    groups: Dict[str, List[RunRecord]], status_by_group: Dict[str, str]
) -> List[str]:
    parts: List[str] = []
    for group in sorted(groups):
        entries = groups[group]
        walls = [e.wall_time_s for e in entries]
        latest = entries[-1]
        status = status_by_group.get(group, "insufficient-history")
        parts.append(
            '<div class="card">'
            f'<div class="name">{_esc(group)}</div>'
            f'<div class="sub">{len(entries)} entries · latest '
            f"{_fmt_duration(latest.wall_time_s)} · rev "
            f"{_esc(latest.git_rev)} · {_fmt_when(latest.created_unix_s)}"
            f"</div>"
            + _sparkline(
                walls,
                _fmt_duration(latest.wall_time_s),
                tooltip=_percentile_tooltip(latest),
            )
            + f"<div>wall time {_badge(status)}</div>"
            "</div>"
        )
    return parts


def _span_section(groups: Dict[str, List[RunRecord]]) -> List[str]:
    parts: List[str] = []
    for group in sorted(groups):
        latest = groups[group][-1]
        if not latest.spans:
            continue
        rows: List[Tuple[str, float, float]] = []
        for name, rollup in latest.spans.items():
            if not isinstance(rollup, dict):
                continue
            try:
                total = float(rollup["total_s"])
                count = float(rollup.get("count", 0))
            except (KeyError, TypeError, ValueError):
                continue
            rows.append((name, total, count))
        if not rows:
            continue
        rows.sort(key=lambda r: -r[1])
        shown = rows[:_MAX_SPAN_ROWS]
        folded = rows[_MAX_SPAN_ROWS:]
        top = shown[0][1]
        bar_rows = []
        for name, total, count in shown:
            pct = 100.0 * total / top if top > 0 else 0.0
            bar_rows.append(
                '<div class="bar-row">'
                f'<div class="bar-label" title="{_esc(name)}">{_esc(name)}'
                f" ×{count:.0f}</div>"
                f'<div class="bar-track"><div class="bar-fill" '
                f'style="width:{pct:.1f}%"></div></div>'
                f'<div class="bar-value">{_fmt_duration(total)}</div>'
                "</div>"
            )
        if folded:
            rest = sum(total for _, total, _ in folded)
            bar_rows.append(
                f'<div class="sub">+ {len(folded)} more spans, '
                f"{_fmt_duration(rest)}</div>"
            )
        parts.append(
            f'<div class="card" style="width:520px">'
            f'<div class="name">{_esc(group)}</div>'
            f'<div class="sub">latest entry, spans by total time</div>'
            + "".join(bar_rows)
            + "</div>"
        )
    return parts


def _counter_value(entry: RunRecord, name: str) -> Optional[float]:
    if not entry.metrics:
        return None
    row = entry.metrics.get("counters", {}).get(name)
    if not isinstance(row, dict):
        return None
    try:
        return float(row["value"])
    except (KeyError, TypeError, ValueError):
        return None


def _metric_section(groups: Dict[str, List[RunRecord]]) -> List[str]:
    parts: List[str] = []
    for group in sorted(groups):
        entries = groups[group]
        latest = entries[-1]
        if not latest.metrics:
            continue
        names = sorted(latest.metrics.get("counters", {}))
        charts: List[str] = []
        for name in names:
            series = [
                value
                for value in (_counter_value(e, name) for e in entries)
                if value is not None
            ]
            if len(series) < 2 or max(series) <= 0:
                continue
            charts.append(
                '<div class="card">'
                f'<div class="sub" title="{_esc(name)}">{_esc(name)}</div>'
                + _sparkline(series, f"{series[-1]:g}")
                + "</div>"
            )
            if len(charts) >= _MAX_COUNTER_CHARTS:
                break
        if charts:
            parts.append(
                f"<h2>metrics · {_esc(group)}</h2>"
                f'<div class="cards">{"".join(charts)}</div>'
            )
    return parts


def _gauge_value(entry: RunRecord, name: str) -> Optional[float]:
    if not entry.metrics:
        return None
    row = entry.metrics.get("gauges", {}).get(name)
    if not isinstance(row, dict):
        return None
    try:
        return float(row["value"])
    except (KeyError, TypeError, ValueError):
        return None


#: Event-bus health gauges (exported by
#: :func:`repro.obs.events.export_gauges`) shown as dashboard tiles.
_BUS_GAUGES = (
    ("eventbus_dropped_events", "bus events dropped"),
    ("eventbus_queue_depth", "bus queue depth"),
    ("eventbus_sink_errors", "bus sink errors"),
    ("eventbus_sinks", "bus sinks"),
)


def _bus_section(groups: Dict[str, List[RunRecord]]) -> List[str]:
    """Event-bus health tiles from each group's latest snapshot."""
    parts: List[str] = []
    for group in sorted(groups):
        latest = groups[group][-1]
        tiles = [
            _tile(f"{value:g}", label)
            for name, label in _BUS_GAUGES
            for value in [_gauge_value(latest, name)]
            if value is not None
        ]
        if tiles:
            parts.append(
                f"<h2>event-bus health · {_esc(group)}</h2>"
                f'<section class="tiles">{"".join(tiles)}</section>'
            )
    return parts


#: Supervisor incident records surfaced alongside quality trouble.
_INCIDENT_KINDS = {
    "campaign-requeue": "requeued",
    "campaign-quarantine": "quarantined",
}

#: Run statuses that belong on the fault table even without quality
#: accounting: the run failed, its worker died/hung mid-lease, or the
#: supervisor quarantined it as a poison spec.
_TROUBLE_STATUSES = ("failed", "interrupted", "poisoned")


def _quality_section(records: Sequence[RunRecord]) -> str:
    rows: List[str] = []
    for entry in records:
        status = str(entry.extra.get("status", ""))
        incident = _INCIDENT_KINDS.get(entry.kind)
        if (
            entry.quality is None
            and status not in _TROUBLE_STATUSES
            and incident is None
        ):
            continue
        quality = entry.quality or {}
        shown = incident or status or "done"
        detail = str(entry.extra.get("reason", "") or "")
        attempts = entry.extra.get("attempts", "")
        rows.append(
            "<tr>"
            f'<td class="name">{_esc(entry.group)}</td>'
            f"<td>{_fmt_when(entry.created_unix_s)}</td>"
            f'<td>{_esc(shown)}</td>'
            f"<td>{_esc(str(attempts))}</td>"
            f"<td>{quality.get('gap_count', 0)}</td>"
            f"<td>{quality.get('dropped_samples', 0)}</td>"
            f"<td>{quality.get('clipped_samples', 0)}</td>"
            f"<td>{quality.get('gain_steps', 0)}</td>"
            f"<td>{quality.get('impaired_sample_spans', 0)}</td>"
            f"<td>{entry.extra.get('low_confidence_count', 0)}</td>"
            f'<td class="name">{_esc(detail)}</td>'
            "</tr>"
        )
    if not rows:
        return ""
    return (
        "<h2>quality &amp; faults</h2>"
        '<table class="quality"><thead><tr>'
        '<th class="name">run</th><th>when</th><th>status</th>'
        "<th>attempts</th>"
        "<th>gaps</th><th>dropped</th><th>clipped</th>"
        "<th>gain steps</th><th>impaired spans</th><th>low-conf</th>"
        '<th class="name">detail</th>'
        "</tr></thead><tbody>"
        + "".join(rows)
        + "</tbody></table>"
    )


def render_dashboard(
    records: Sequence[RunRecord],
    title: str = "EMPROF run observatory",
    regress_config: Optional[RegressConfig] = None,
) -> str:
    """Render ledger history as one self-contained HTML document."""
    groups: Dict[str, List[RunRecord]] = {}
    for entry in records:
        groups.setdefault(entry.group, []).append(entry)
    report = check_records(records, regress_config)
    status_by_group = _group_status(report)
    revisions = sorted({e.git_rev for e in records})

    tiles = [
        _tile(str(len(records)), "ledger entries"),
        _tile(str(len(groups)), "run groups"),
        _tile(str(len(report.regressions)), "regressions"),
        _tile(str(len(revisions)), "git revisions"),
    ]
    body: List[str] = [
        f"<header><h1>{_esc(title)}</h1>",
        f'<p class="meta">generated {_fmt_when(time.time())} · '
        f"schema repro-obs-ledger v1 · wall-time gate: median-of-window "
        f"baseline with MAD slack</p></header>",
        f'<section class="tiles">{"".join(tiles)}</section>',
    ]
    if groups:
        body.append("<h2>wall-time trends</h2>")
        body.append(
            '<div class="cards">'
            + "".join(_group_cards(groups, status_by_group))
            + "</div>"
        )
        span_cards = _span_section(groups)
        if span_cards:
            body.append("<h2>span breakdown (latest entries)</h2>")
            body.append(f'<div class="cards">{"".join(span_cards)}</div>')
        body.extend(_metric_section(groups))
        body.extend(_bus_section(groups))
        quality = _quality_section(records)
        if quality:
            body.append(quality)
    else:
        body.append(
            '<p class="meta">The ledger is empty. Run '
            "<code>make bench</code>, <code>repro profile --ledger</code>, "
            "or a campaign to start accumulating history.</p>"
        )
    body.append(
        "<footer>EMPROF reproduction · repro.obs.dashboard · "
        "single-file report, no scripts, no network</footer>"
    )
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">'
        f"<title>{_esc(title)}</title>"
        f"<style>{_CSS}</style></head>"
        '<body class="viz-root">' + "".join(body) + "</body></html>\n"
    )


def write_dashboard(
    path: PathLike,
    records: Sequence[RunRecord],
    title: str = "EMPROF run observatory",
    regress_config: Optional[RegressConfig] = None,
) -> Path:
    """Render and write the dashboard; returns the output path."""
    destination = Path(path)
    if destination.parent != Path("."):
        destination.parent.mkdir(parents=True, exist_ok=True)
    destination.write_text(
        render_dashboard(records, title=title, regress_config=regress_config),
        encoding="utf-8",
    )
    return destination
