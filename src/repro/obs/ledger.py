"""The run ledger: an append-only JSONL history of pipeline runs.

EMPROF's pitch is durable, zero-observer-effect visibility into a
running system; the reproduction's own runs deserve the same.  Every
``repro profile`` invocation (with ``--ledger``), every ``make bench``
session, and every :class:`repro.experiments.campaign.Campaign` item
can append one schema-versioned :class:`RunRecord` to a shared JSONL
file - by default ``LEDGER_obs.jsonl`` at the repository root - and
nothing ever rewrites or truncates that file.  The accumulated
history is what :mod:`repro.obs.regress` judges new runs against and
what :mod:`repro.obs.dashboard` renders.

Design rules:

* **Append-only.**  One JSON object per line, written with a single
  ``write`` + ``flush`` + ``fsync``, so an interrupted run can at
  worst leave one torn final line - which readers skip and count
  rather than crash on.
* **Self-describing.**  Every record carries ``schema`` /
  ``schema_version``, the run kind, a config fingerprint, and the git
  revision, so ledgers survive tool upgrades and mixed histories.
* **Stdlib only.**  Importing this module must never pull numpy,
  matplotlib, or any other heavy dependency (a test pins this), and
  nothing here runs unless explicitly invoked - the ``EMPROF_OBS``
  zero-cost-when-off guarantee is untouched.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import subprocess
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

SCHEMA = "repro-obs-ledger"
SCHEMA_VERSION = 1

#: Default ledger filename, conventionally at the repository root.
DEFAULT_LEDGER_NAME = "LEDGER_obs.jsonl"

#: The run kinds the observatory understands.  ``profile`` is one CLI
#: profiling run, ``bench`` one benchmark node, ``campaign-run`` one
#: item of a measurement campaign, ``campaign`` the campaign summary,
#: ``campaign-requeue`` a supervised run re-leased after its worker
#: died or hung, and ``campaign-quarantine`` a run poisoned after
#: exhausting its attempts.
RUN_KINDS = (
    "profile",
    "bench",
    "campaign-run",
    "campaign",
    "campaign-requeue",
    "campaign-quarantine",
)

PathLike = Union[str, Path]

#: Environment variable controlling the default fsync policy.  Set to
#: ``0`` / ``false`` / ``no`` / ``off`` to skip the per-append fsync
#: (e.g. on CI runners with slow fsync or tmpfs-backed workspaces).
#: Anything else - including unset - keeps the durable default.
ENV_LEDGER_FSYNC = "EMPROF_LEDGER_FSYNC"

_FALSEY = ("0", "false", "no", "off")


def fsync_default() -> bool:
    """The process-environment fsync policy, read at call time.

    ``EMPROF_LEDGER_FSYNC=0`` (or ``false``/``no``/``off``, any case)
    disables per-append fsync for ledgers that do not pin a policy
    explicitly; every other value - including unset - enables it.
    """
    raw = os.environ.get(ENV_LEDGER_FSYNC)
    if raw is None:
        return True
    return raw.strip().lower() not in _FALSEY


_GIT_REV_CACHE: Dict[str, str] = {}
_GIT_REV_LOCK = threading.Lock()


def git_rev(cwd: Optional[PathLike] = None) -> str:
    """Short git revision of ``cwd`` (default: process cwd).

    Never raises: outside a repository, without git installed, or on
    any subprocess failure it returns ``"unknown"``.  Results are
    cached per directory - the revision cannot change mid-process in
    a way this module needs to observe.  The cache is lock-protected
    so concurrent campaign workers cannot race the first fill.
    """
    key = str(cwd) if cwd is not None else ""
    with _GIT_REV_LOCK:
        cached = _GIT_REV_CACHE.get(key)
    if cached is not None:
        return cached
    rev = "unknown"
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
        if proc.returncode == 0 and proc.stdout.strip():
            rev = proc.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        rev = "unknown"
    with _GIT_REV_LOCK:
        _GIT_REV_CACHE[key] = rev
    return rev


def config_fingerprint(payload: Any) -> str:
    """Stable short fingerprint of a configuration object.

    Dataclasses are converted via :func:`dataclasses.asdict`; anything
    JSON can't express is stringified.  Two runs share a fingerprint
    exactly when their canonical JSON forms match, so ledger history
    can be partitioned by configuration without storing the config.
    """
    if dataclasses.is_dataclass(payload) and not isinstance(payload, type):
        payload = dataclasses.asdict(payload)
    canonical = json.dumps(payload, sort_keys=True, default=str)
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
    return f"sha256:{digest[:16]}"


@dataclass(frozen=True)
class RunRecord:
    """One ledger entry: what ran, under what, and what it measured.

    Attributes:
        kind: one of :data:`RUN_KINDS`.
        label: stable identity of the run within its kind (capture
            stem, benchmark nodeid, ``campaign/run`` name); regression
            baselines group on ``(kind, label)``.
        wall_time_s: run wall time in seconds.
        created_unix_s: wall-clock creation time (``time.time()``).
        git_rev: short git revision the run executed at.
        config_fingerprint: :func:`config_fingerprint` of the run's
            configuration, or ``""`` when not applicable.
        metrics: a :meth:`MetricsRegistry.snapshot` document, or None.
        spans: a :meth:`Tracer.aggregate` rollup, or None.
        quality: a signal-quality summary dict, or None.
        accuracy: accuracy statistics (detected vs. ground truth), or
            None when no ground truth existed.
        extra: free-form small JSON-safe context (status, paths,
            counts).
    """

    kind: str
    label: str
    wall_time_s: float
    created_unix_s: float
    git_rev: str = "unknown"
    config_fingerprint: str = ""
    schema_version: int = SCHEMA_VERSION
    metrics: Optional[Dict[str, Any]] = None
    spans: Optional[Dict[str, Any]] = None
    quality: Optional[Dict[str, Any]] = None
    accuracy: Optional[Dict[str, Any]] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def group(self) -> str:
        """The regression-baseline grouping key, ``kind:label``."""
        return f"{self.kind}:{self.label}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-pure representation (one ledger line, unserialized)."""
        return {
            "schema": SCHEMA,
            "schema_version": self.schema_version,
            "kind": self.kind,
            "label": self.label,
            "wall_time_s": self.wall_time_s,
            "created_unix_s": self.created_unix_s,
            "git_rev": self.git_rev,
            "config_fingerprint": self.config_fingerprint,
            "metrics": self.metrics,
            "spans": self.spans,
            "quality": self.quality,
            "accuracy": self.accuracy,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunRecord":
        """Parse one ledger line's JSON object.

        Raises:
            ValueError: the object is not a ledger record (wrong or
                missing schema, missing identity fields).
        """
        if not isinstance(payload, dict):
            raise ValueError("ledger line is not a JSON object")
        if payload.get("schema") != SCHEMA:
            raise ValueError(
                f"not a {SCHEMA} record (schema={payload.get('schema')!r})"
            )
        try:
            kind = str(payload["kind"])
            label = str(payload["label"])
            wall_time_s = float(payload["wall_time_s"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed ledger record: {exc}") from exc
        return cls(
            kind=kind,
            label=label,
            wall_time_s=wall_time_s,
            created_unix_s=float(payload.get("created_unix_s", 0.0)),
            git_rev=str(payload.get("git_rev", "unknown")),
            config_fingerprint=str(payload.get("config_fingerprint", "")),
            schema_version=int(payload.get("schema_version", 1)),
            metrics=payload.get("metrics"),
            spans=payload.get("spans"),
            quality=payload.get("quality"),
            accuracy=payload.get("accuracy"),
            extra=dict(payload.get("extra") or {}),
        )


def record(
    kind: str,
    label: str,
    wall_time_s: float,
    config: Any = None,
    metrics: Optional[Dict[str, Any]] = None,
    spans: Optional[Dict[str, Any]] = None,
    quality: Optional[Dict[str, Any]] = None,
    accuracy: Optional[Dict[str, Any]] = None,
    extra: Optional[Dict[str, Any]] = None,
    cwd: Optional[PathLike] = None,
) -> RunRecord:
    """Build a :class:`RunRecord`, stamping time and git revision.

    Raises:
        ValueError: ``kind`` is not one of :data:`RUN_KINDS`.
    """
    if kind not in RUN_KINDS:
        raise ValueError(
            f"unknown run kind {kind!r}; expected one of {', '.join(RUN_KINDS)}"
        )
    return RunRecord(
        kind=kind,
        label=label,
        wall_time_s=float(wall_time_s),
        created_unix_s=time.time(),
        git_rev=git_rev(cwd),
        config_fingerprint=(
            config_fingerprint(config) if config is not None else ""
        ),
        metrics=metrics,
        spans=spans,
        quality=quality,
        accuracy=accuracy,
        extra=dict(extra or {}),
    )


class RunLedger:
    """Append-only JSONL store of :class:`RunRecord` entries.

    The ledger file never shrinks: :meth:`append` only ever adds one
    line, and readers tolerate (and count) torn or foreign lines so a
    crash mid-write cannot poison the history.

    ``fsync`` pins the durability policy for this ledger: ``True``
    fsyncs every :meth:`append` (the historical behaviour), ``False``
    relies on the OS page cache, and ``None`` (the default) defers to
    the :data:`ENV_LEDGER_FSYNC` environment variable - read once at
    construction - which itself defaults to ``True``.
    """

    def __init__(self, path: PathLike, fsync: Optional[bool] = None):
        self.path = Path(path)
        self.fsync = fsync_default() if fsync is None else bool(fsync)

    def exists(self) -> bool:
        """Whether the ledger file is present on disk."""
        return self.path.is_file()

    def append(self, entry: RunRecord) -> RunRecord:
        """Append one record (single write + flush, fsync per policy)."""
        if self.path.parent != Path("."):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(entry.to_dict(), sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        return entry

    def append_many(self, entries: List[RunRecord]) -> int:
        """Append several records; returns how many were written."""
        for entry in entries:
            self.append(entry)
        return len(entries)

    def appender(
        self, fsync_each: Optional[bool] = None
    ) -> "LedgerAppender":
        """A reusable append handle (see :class:`LedgerAppender`).

        Use as a context manager around a burst of appends — e.g. a
        100-run campaign — so each record does not pay the open/close
        (and, with ``fsync_each=False``, fsync) cost of
        :meth:`append`.  ``fsync_each=None`` inherits the ledger's
        :attr:`fsync` policy.
        """
        return LedgerAppender(
            self, fsync_each=self.fsync if fsync_each is None else fsync_each
        )

    def read_with_errors(self) -> Tuple[List[RunRecord], int]:
        """All parseable records, in file order, plus a bad-line count.

        A missing file reads as an empty history (no error) - the
        first run of a fresh checkout has nothing to compare against,
        which is a normal state, not a failure.
        """
        if not self.path.is_file():
            return [], 0
        records: List[RunRecord] = []
        bad_lines = 0
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(RunRecord.from_dict(json.loads(line)))
                except (json.JSONDecodeError, ValueError):
                    bad_lines += 1
        return records, bad_lines

    def read(
        self, kind: Optional[str] = None, label: Optional[str] = None
    ) -> List[RunRecord]:
        """Parseable records, optionally filtered by kind and label."""
        records, _ = self.read_with_errors()
        if kind is not None:
            records = [r for r in records if r.kind == kind]
        if label is not None:
            records = [r for r in records if r.label == label]
        return records

    def groups(self) -> Dict[str, List[RunRecord]]:
        """Records bucketed by :attr:`RunRecord.group`, file order kept."""
        out: Dict[str, List[RunRecord]] = {}
        for entry in self.read():
            out.setdefault(entry.group, []).append(entry)
        return out

    def __len__(self) -> int:
        records, _ = self.read_with_errors()
        return len(records)


class LedgerAppender:
    """Reusable append handle over one :class:`RunLedger`.

    :meth:`RunLedger.append` opens, writes, flushes, fsyncs, and
    closes the file for every record — the right discipline for a
    single record, but measurable churn for a campaign appending
    hundreds.  The appender keeps one ``O_APPEND`` handle open across
    appends while preserving the ledger's durability contract:

    * **Single-append semantics.**  Each record is still exactly one
      ``write`` of one ``\\n``-terminated line, immediately flushed,
      so readers never see an interleaved or torn *parsed* record —
      at worst one torn final line, which they already skip and count.
    * **Durability.**  With ``fsync_each=True`` every record is
      fsynced exactly as :meth:`RunLedger.append` does.
      ``fsync_each=False`` defers the fsync to :meth:`close` — the
      mode :class:`repro.experiments.campaign.Campaign` uses, since
      its crash-recovery source of truth is the manifest, not the
      ledger.  Even that deferred fsync is skipped when the owning
      ledger's :attr:`RunLedger.fsync` policy is off.

    Use as a context manager; appending after close raises
    ``ValueError``.
    """

    def __init__(self, ledger: RunLedger, fsync_each: bool = True):
        self.ledger = ledger
        self.fsync_each = fsync_each
        if ledger.path.parent != Path("."):
            ledger.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(ledger.path, "a", encoding="utf-8")
        self._wrote = False

    def append(self, entry: RunRecord) -> RunRecord:
        """Append one record through the persistent handle."""
        if self._handle is None:
            raise ValueError("appender is closed")
        line = json.dumps(entry.to_dict(), sort_keys=True)
        self._handle.write(line + "\n")
        self._handle.flush()
        self._wrote = True
        if self.fsync_each:
            os.fsync(self._handle.fileno())
        return entry

    def close(self) -> None:
        """Flush (and, if deferred, fsync) then release the handle."""
        if self._handle is None:
            return
        try:
            self._handle.flush()
            if self._wrote and not self.fsync_each and self.ledger.fsync:
                os.fsync(self._handle.fileno())
        finally:
            handle, self._handle = self._handle, None
            handle.close()

    @property
    def closed(self) -> bool:
        return self._handle is None

    def __enter__(self) -> "LedgerAppender":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def atomic_write_json(path: PathLike, payload: Any, indent: int = 2) -> Path:
    """Write ``payload`` as JSON via temp-file + ``os.replace``.

    An interrupted writer leaves either the previous file or the new
    one, never a torn hybrid - the same discipline the campaign
    manifest uses.  Returns the destination path.
    """
    destination = Path(path)
    tmp = destination.with_name(destination.name + ".tmp")
    tmp.write_text(json.dumps(payload, indent=indent) + "\n", encoding="utf-8")
    os.replace(tmp, destination)
    return destination
