"""Live telemetry: a bounded, thread-safe event bus with NDJSON sinks.

Everything else in :mod:`repro.obs` is *post-hoc* - spans, metric
snapshots and ledger records exist only after a run exits.  EMPROF's
whole premise is continuous, zero-observer-effect monitoring of a
*live* system, so this module gives the reproduction's own pipeline
the same property: producers (the streaming profiler, the experiment
drivers, campaign workers) ``emit()`` small schema-versioned events
while they run, and consumers (the :mod:`repro.obs.statusd` status
server, NDJSON files, terminal watchers) observe them mid-flight.

Design rules, in priority order:

* **Never block the hot path.**  ``emit()`` with ``EMPROF_OBS`` unset
  is one flag check and a return - zero events, zero allocations (the
  overhead guard pins this).  With observability on, ``emit()`` does
  bounded work under one lock: update counters, append to a ring, and
  enqueue for sink delivery.  Sink I/O happens on a drainer thread.
* **Bounded everywhere.**  The sink-delivery queue holds at most
  ``capacity`` events; when it is full the event is *dropped* and the
  explicit :attr:`EventBus.dropped_events` counter is incremented -
  the producer is never made to wait.  The ``tail`` ring is a fixed
  ring (old events are evicted by design; eviction is not a drop).
* **Schema-versioned line JSON.**  Every event serializes to one JSON
  object (``schema``/``schema_version``/``kind``/``attrs``), one per
  line in NDJSON sinks, and readers skip-and-count torn or foreign
  lines - the same discipline as the run ledger.

The process-global bus lives at :data:`bus`; instrumented code uses
it exactly like the global tracer and metrics registry.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Tuple, Union

from . import runtime

SCHEMA = "repro-obs-event"
SCHEMA_VERSION = 1

#: The telemetry vocabulary.  Producers must use one of these kinds;
#: the set is deliberately closed so consumers (status server, watch
#: clients, the stitcher) can rely on it.
EVENT_KINDS = (
    "run_started",
    "run_finished",
    "chunk_processed",
    "stall_detected",
    "quality_flag",
    "checkpoint_written",
    "heartbeat",
    "worker_spawned",
    "worker_killed",
    "job_requeued",
    "job_quarantined",
)

#: Default bound on the sink-delivery queue.
DEFAULT_CAPACITY = 4096

#: Default size of the in-memory ``tail`` ring.
DEFAULT_TAIL_CAPACITY = 512

_ATTR_TYPES = (str, int, float, bool)


def _clean_attrs(attrs: Dict[str, Any]) -> Dict[str, Any]:
    """Coerce attribute values to JSON-safe scalars (drop None)."""
    return {
        key: value if isinstance(value, _ATTR_TYPES) else str(value)
        for key, value in attrs.items()
        if value is not None
    }


@dataclass(frozen=True)
class Event:
    """One telemetry event.

    Attributes:
        kind: one of :data:`EVENT_KINDS`.
        t_unix_s: wall-clock emission time (``time.time()``).
        seq: per-bus sequence number (gaps reveal drops).
        pid: emitting process id.
        source: emitting process label (``main``, ``worker0`` ...).
        trace_id: the emitting process's trace id, when a trace
            context is active (stitches events to spans).
        attrs: small JSON-safe payload (counts, names, rates).
    """

    kind: str
    t_unix_s: float
    seq: int
    pid: int
    source: str = "main"
    trace_id: Optional[str] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-pure representation (one NDJSON line, unserialized)."""
        return {
            "schema": SCHEMA,
            "schema_version": SCHEMA_VERSION,
            "kind": self.kind,
            "t_unix_s": self.t_unix_s,
            "seq": self.seq,
            "pid": self.pid,
            "source": self.source,
            "trace_id": self.trace_id,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Event":
        """Parse one event line's JSON object.

        Raises:
            ValueError: not an event object (wrong schema, unknown
                kind, missing fields).
        """
        if not isinstance(payload, dict):
            raise ValueError("event line is not a JSON object")
        if payload.get("schema") != SCHEMA:
            raise ValueError(
                f"not a {SCHEMA} record (schema={payload.get('schema')!r})"
            )
        kind = payload.get("kind")
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        try:
            t_unix_s = float(payload["t_unix_s"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed event: {exc}") from exc
        trace_id = payload.get("trace_id")
        return cls(
            kind=str(kind),
            t_unix_s=t_unix_s,
            seq=int(payload.get("seq", 0)),
            pid=int(payload.get("pid", 0)),
            source=str(payload.get("source", "main")),
            trace_id=str(trace_id) if trace_id is not None else None,
            attrs=dict(payload.get("attrs") or {}),
        )


# ---------------------------------------------------------------------------
# sinks
# ---------------------------------------------------------------------------


class InMemorySink:
    """Collects events in a list; the test double and demo consumer."""

    def __init__(self) -> None:
        self.events: List[Event] = []
        self._lock = threading.Lock()

    def write(self, event: Event) -> None:
        """Record one event."""
        with self._lock:
            self.events.append(event)

    def close(self) -> None:
        """No-op (memory only)."""


class NDJSONFileSink:
    """Appends one JSON line per event to a file.

    The file is opened lazily in append mode; every event is exactly
    one ``write`` of one newline-terminated line, flushed immediately
    (no fsync - this is telemetry, not the ledger), so concurrent
    appenders on a POSIX filesystem interleave whole lines and readers
    tolerate the rare torn tail.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._handle = None
        self._lock = threading.Lock()

    def write(self, event: Event) -> None:
        """Append one event line, flushing the stream."""
        line = json.dumps(event.to_dict(), sort_keys=True) + "\n"
        with self._lock:
            if self._handle is None:
                if self.path.parent != Path("."):
                    self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(line)
            self._handle.flush()

    def close(self) -> None:
        """Release the file handle (further writes reopen)."""
        with self._lock:
            if self._handle is not None:
                handle, self._handle = self._handle, None
                handle.close()


class SocketSink:
    """Pushes events to a :mod:`repro.obs.statusd` server as line JSON.

    Each event becomes one ``{"req": "emit", "event": {...}}`` line on
    a persistent TCP connection (the ``emit`` request is fire-and-
    forget; the server sends no response).  Connection failures are
    raised to the bus - which counts them as sink errors and keeps
    going - and after ``max_failures`` consecutive failures the sink
    disables itself so a vanished server cannot slow the drainer.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout_s: float = 2.0,
        max_failures: int = 8,
    ):
        self.host = host
        self.port = int(port)
        self.timeout_s = float(timeout_s)
        self.max_failures = int(max_failures)
        self._sock: Optional[socket.socket] = None
        self._failures = 0
        self._lock = threading.Lock()

    @property
    def disabled(self) -> bool:
        """True once ``max_failures`` consecutive sends have failed."""
        return self._failures >= self.max_failures

    def write(self, event: Event) -> None:
        """Send one event; raises ``OSError`` on connection trouble."""
        if self.disabled:
            return
        line = (
            json.dumps({"req": "emit", "event": event.to_dict()}, sort_keys=True)
            + "\n"
        ).encode("utf-8")
        with self._lock:
            try:
                if self._sock is None:
                    self._sock = socket.create_connection(
                        (self.host, self.port), timeout=self.timeout_s
                    )
                self._sock.sendall(line)
                self._failures = 0
            except OSError:
                self._failures += 1
                if self._sock is not None:
                    try:
                        self._sock.close()
                    except OSError:  # pragma: no cover - close best-effort
                        pass
                    self._sock = None
                raise

    def close(self) -> None:
        """Close the connection (further writes reconnect)."""
        with self._lock:
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:  # pragma: no cover - close best-effort
                    pass
                self._sock = None


# ---------------------------------------------------------------------------
# the bus
# ---------------------------------------------------------------------------


class EventBus:
    """Thread-safe, bounded fan-out point for telemetry events.

    One process-global instance lives at :data:`bus`.  Private buses
    (tests, isolated campaigns) are cheap.

    Args:
        capacity: bound on the sink-delivery queue.  When full, new
            events are counted in :attr:`dropped_events` and discarded
            rather than blocking the producer.
        tail_capacity: size of the in-memory ring served by
            :meth:`tail` (eviction from the ring is by design and not
            counted as a drop).
        auto_drain: start a daemon drainer thread when the first sink
            is attached.  Pass False for deterministic tests and call
            :meth:`drain` manually.
        source: label stamped on emitted events (``main``,
            ``worker3`` ...); see :meth:`set_source`.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        tail_capacity: int = DEFAULT_TAIL_CAPACITY,
        auto_drain: bool = True,
        source: str = "main",
    ):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if tail_capacity < 1:
            raise ValueError("tail_capacity must be at least 1")
        self.capacity = int(capacity)
        self.auto_drain = bool(auto_drain)
        self._default_source = source
        self._source = source
        self._cond = threading.Condition()
        self._pending: Deque[Event] = deque()
        self._recent: Deque[Event] = deque(maxlen=int(tail_capacity))
        self._sinks: List[Any] = []
        self._dropped = 0
        self._sink_errors = 0
        self._seq = 0
        self._counts: Dict[str, int] = {}
        self._samples_total = 0
        self._stalls_total = 0
        self._started_unix_s = time.time()
        self._last_event_unix_s = 0.0
        self._last_heartbeat: Dict[str, float] = {}
        self._drainer: Optional[threading.Thread] = None
        self._draining = False
        self._closed = False

    # -- producing -----------------------------------------------------------

    def set_source(self, source: str) -> str:
        """Relabel the emitting process; returns the previous label."""
        with self._cond:
            previous, self._source = self._source, str(source)
        return previous

    def emit(self, kind: str, **attrs: Any) -> Optional[Event]:
        """Emit one event; returns it, or None when obs is disabled.

        Raises:
            ValueError: ``kind`` is not in :data:`EVENT_KINDS` (the
                schema is closed; typos must not mint new kinds).
        """
        if not runtime._enabled:
            return None
        if kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {kind!r}; expected one of "
                f"{', '.join(EVENT_KINDS)}"
            )
        event = Event(
            kind=kind,
            t_unix_s=time.time(),
            seq=0,  # replaced under the lock below
            pid=os.getpid(),
            source=self._source,
            trace_id=_current_trace_id(),
            attrs=_clean_attrs(attrs),
        )
        return self._admit(event, stamp_seq=True)

    def ingest(self, payload: Dict[str, Any]) -> Event:
        """Accept one already-serialized event (a status server's
        ``emit`` request, a replayed NDJSON line).

        Deliberately *not* gated on ``EMPROF_OBS``: running an
        aggregator is an explicit opt-in, and the emitting process
        already paid its own gate.  The event keeps its original
        ``seq``/``pid``/``source``.

        Raises:
            ValueError: the payload is not a valid event object.
        """
        return self._admit(Event.from_dict(payload), stamp_seq=False)

    def _admit(self, event: Event, stamp_seq: bool) -> Event:
        with self._cond:
            if stamp_seq:
                self._seq += 1
                event = Event(
                    kind=event.kind,
                    t_unix_s=event.t_unix_s,
                    seq=self._seq,
                    pid=event.pid,
                    source=event.source,
                    trace_id=event.trace_id,
                    attrs=event.attrs,
                )
            self._counts[event.kind] = self._counts.get(event.kind, 0) + 1
            self._last_event_unix_s = event.t_unix_s
            if event.kind == "chunk_processed":
                self._samples_total += int(event.attrs.get("samples", 0) or 0)
                self._stalls_total += int(event.attrs.get("stalls", 0) or 0)
            elif event.kind == "heartbeat":
                self._last_heartbeat[event.source] = event.t_unix_s
            self._recent.append(event)
            if self._sinks:
                if len(self._pending) >= self.capacity:
                    self._dropped += 1
                else:
                    self._pending.append(event)
                    self._cond.notify_all()
        return event

    # -- sinks ---------------------------------------------------------------

    def add_sink(self, sink: Any) -> Any:
        """Attach a sink (anything with ``write(event)``); returns it."""
        with self._cond:
            self._sinks.append(sink)
            start = (
                self.auto_drain and self._drainer is None and not self._closed
            )
            if start:
                self._drainer = threading.Thread(
                    target=self._drain_loop,
                    name="repro-obs-eventbus",
                    daemon=True,
                )
                self._drainer.start()
        return sink

    def remove_sink(self, sink: Any) -> None:
        """Detach a sink; unknown sinks are ignored."""
        with self._cond:
            try:
                self._sinks.remove(sink)
            except ValueError:
                pass

    def _drain_loop(self) -> None:
        # Capture the condition once: reset() replaces self._cond (so a
        # forked child gets a clean lock), and mixing the old lock with
        # the new attribute mid-iteration would wait on an un-acquired
        # lock.  A reset also orphans this drainer on purpose - noticing
        # the swap is its signal to retire.
        cond = self._cond
        while True:
            with cond:
                if cond is not self._cond:
                    return
                while not self._pending and not self._closed:
                    cond.wait(timeout=0.5)
                    if cond is not self._cond:
                        return
                if self._closed and not self._pending:
                    return
                batch = list(self._pending)
                self._pending.clear()
                sinks = list(self._sinks)
                self._draining = True
            try:
                self._deliver(batch, sinks)
            finally:
                with cond:
                    self._draining = False
                    cond.notify_all()

    def _deliver(self, batch: List[Event], sinks: List[Any]) -> None:
        for sink in sinks:
            for event in batch:
                try:
                    sink.write(event)
                except Exception:
                    # A sink must never take the bus down; errors are
                    # counted and the batch continues.
                    with self._cond:
                        self._sink_errors += 1

    def drain(self) -> int:
        """Deliver pending events synchronously; returns how many.

        The manual-drain counterpart of the drainer thread, for
        ``auto_drain=False`` buses (deterministic tests, one-shot
        flushes at process exit).
        """
        with self._cond:
            batch = list(self._pending)
            self._pending.clear()
            sinks = list(self._sinks)
        if batch and sinks:
            self._deliver(batch, sinks)
        return len(batch)

    def flush(self, timeout_s: float = 5.0) -> bool:
        """Wait until the delivery queue is empty; True on success."""
        if self._drainer is None:
            self.drain()
            return True
        deadline = time.monotonic() + timeout_s
        with self._cond:
            while self._pending or self._draining:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(timeout=remaining)
        return True

    def close(self) -> None:
        """Flush, stop the drainer, and close closeable sinks."""
        self.flush()
        with self._cond:
            self._closed = True
            self._cond.notify_all()
            drainer, self._drainer = self._drainer, None
            sinks = list(self._sinks)
            self._sinks = []
        if drainer is not None:
            drainer.join(timeout=2.0)
        for sink in sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                try:
                    close()
                except Exception:  # pragma: no cover - close best-effort
                    with self._cond:
                        self._sink_errors += 1

    # -- observing -----------------------------------------------------------

    @property
    def dropped_events(self) -> int:
        """Events discarded because the delivery queue was full."""
        with self._cond:
            return self._dropped

    @property
    def sink_errors(self) -> int:
        """Exceptions swallowed from sink ``write`` calls."""
        with self._cond:
            return self._sink_errors

    @property
    def queue_depth(self) -> int:
        """Events admitted but not yet delivered to the sinks.

        The delivery queue is shared by every sink (one drainer fans
        each batch out to all of them), so this is the bus's single
        backlog figure — a depth stuck near ``capacity`` means some
        sink is too slow and drops are imminent.
        """
        with self._cond:
            return len(self._pending)

    @property
    def sink_count(self) -> int:
        """Sinks currently attached."""
        with self._cond:
            return len(self._sinks)

    def tail(self, n: int = 20) -> List[Event]:
        """The most recent ``n`` events (oldest first)."""
        if n < 0:
            raise ValueError("n cannot be negative")
        with self._cond:
            recent = list(self._recent)
        return recent[-n:] if n else []

    def stats(self) -> Dict[str, Any]:
        """JSON-pure rollup: counts by kind, totals, drop accounting.

        This is what the status server's ``status`` response carries;
        keeping it cheap (no iteration over retained events) is what
        lets a live query never perturb the producers.
        """
        with self._cond:
            counts = dict(self._counts)
            return {
                "counts": counts,
                "total": sum(counts.values()),
                "dropped_events": self._dropped,
                "sink_errors": self._sink_errors,
                "queue_depth": len(self._pending),
                "sinks": len(self._sinks),
                "samples_total": self._samples_total,
                "stalls_total": self._stalls_total,
                "quality_flags_total": counts.get("quality_flag", 0),
                "started_unix_s": self._started_unix_s,
                "last_event_unix_s": self._last_event_unix_s,
                "last_heartbeat_unix_s": dict(self._last_heartbeat),
            }

    def reset(self) -> None:
        """Forget all events, counters, and sinks (tests, fork children).

        Sinks are dropped *without* closing them: after ``fork`` the
        child shares file descriptors with the parent, and closing
        them here would yank the parent's sinks out from under it.
        The threading state is rebuilt outright - a forked child
        inherits the parent's drainer as a dead Thread object (and,
        worst case, a lock an unforked thread held), and keeping
        either would wedge the child's bus permanently.
        """
        self._cond = threading.Condition()
        with self._cond:
            self._pending.clear()
            self._recent.clear()
            self._sinks = []
            self._dropped = 0
            self._sink_errors = 0
            self._seq = 0
            self._counts = {}
            self._samples_total = 0
            self._stalls_total = 0
            self._started_unix_s = time.time()
            self._last_event_unix_s = 0.0
            self._last_heartbeat = {}
            self._source = self._default_source
            self._drainer = None
            self._draining = False
            self._closed = False


def export_gauges(registry=None, source: Optional[EventBus] = None) -> None:
    """Publish the bus's health counters as metrics gauges.

    Called at export time (``repro profile --metrics-out``/``--ledger``,
    the obs snapshot commands) rather than on every emit, so the hot
    path never touches the metrics registry.  The gauges land in both
    exporters (Prometheus text and JSON snapshots) and from there in
    the dashboard's bus-health tiles:

    * ``eventbus_dropped_events`` — events discarded because the
      delivery queue was full (producers are never blocked).
    * ``eventbus_queue_depth`` — current sink-delivery backlog (the
      queue is shared by all sinks; see :attr:`EventBus.queue_depth`).
    * ``eventbus_sink_errors`` — exceptions swallowed from sink writes.
    * ``eventbus_sinks`` — sinks currently attached.
    """
    if registry is None:
        from . import metrics as registry  # the process-global registry
    b = source if source is not None else bus
    registry.gauge(
        "eventbus_dropped_events",
        "events discarded because the sink-delivery queue was full",
    ).set(float(b.dropped_events))
    registry.gauge(
        "eventbus_queue_depth",
        "events admitted but not yet delivered to sinks (shared queue)",
    ).set(float(b.queue_depth))
    registry.gauge(
        "eventbus_sink_errors", "exceptions swallowed from sink writes"
    ).set(float(b.sink_errors))
    registry.gauge(
        "eventbus_sinks", "sinks currently attached to the bus"
    ).set(float(b.sink_count))


def _current_trace_id() -> Optional[str]:
    """The active trace id, without creating one as a side effect."""
    from . import tracectx

    context = tracectx.peek()
    return context.trace_id if context is not None else None


def read_events(path: Union[str, Path]) -> Tuple[List[Event], int]:
    """Read an NDJSON event file; returns (events, bad_line_count).

    Missing files read as empty.  Torn or foreign lines are skipped
    and counted, never raised - a live producer may still be appending.
    """
    source = Path(path)
    if not source.is_file():
        return [], 0
    events: List[Event] = []
    bad_lines = 0
    with open(source, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(Event.from_dict(json.loads(line)))
            except (json.JSONDecodeError, ValueError):
                bad_lines += 1
    return events, bad_lines


#: Process-global event bus; import as ``from repro.obs import events``
#: and emit via ``events.bus.emit("chunk_processed", samples=n)``.
bus = EventBus()
