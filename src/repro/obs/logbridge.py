"""Bridge from the obs layer to stdlib :mod:`logging`.

Library code must not print; it logs under the ``repro`` namespace and
stays silent by default (a ``NullHandler`` is installed on import, per
the stdlib's library convention).  Applications - including the
``repro`` CLI via its global ``--quiet`` / ``--verbose`` flags - call
:func:`configure_logging` once to attach a real handler at the chosen
verbosity.

Verbosity maps to levels as::

    -1  (--quiet)    ERROR
     0  (default)    WARNING
     1  (-v)         INFO
     2+ (-vv)        DEBUG
"""

from __future__ import annotations

import logging
import sys
from typing import IO, Optional

ROOT_LOGGER_NAME = "repro"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"

logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger under the ``repro`` namespace.

    ``get_logger()`` returns the root ``repro`` logger;
    ``get_logger("obs")`` returns ``repro.obs``; names already under
    the namespace are passed through unchanged.
    """
    if name is None:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def level_for_verbosity(verbosity: int) -> int:
    """The stdlib logging level for a ``--quiet``/``-v`` count."""
    if verbosity <= -1:
        return logging.ERROR
    if verbosity == 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


def configure_logging(
    verbosity: int = 0, stream: Optional[IO[str]] = None
) -> logging.Logger:
    """Attach (or re-level) the CLI handler on the ``repro`` logger.

    Idempotent: calling again adjusts the existing handler's level
    instead of stacking a second one, so tests and long-lived sessions
    can reconfigure freely.  Returns the root ``repro`` logger.
    """
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    level = level_for_verbosity(verbosity)
    handler = None
    for existing in logger.handlers:
        if getattr(existing, "_repro_obs_handler", False):
            handler = existing
            break
    if handler is None:
        handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT))
        handler._repro_obs_handler = True  # type: ignore[attr-defined]
        logger.addHandler(handler)
    elif stream is not None:
        # Not setStream(): that flushes the outgoing stream, which may
        # already be closed (a captured stderr from a previous
        # configuration).  Emit flushes per record, so nothing is lost.
        handler.acquire()
        try:
            handler.stream = stream  # type: ignore[attr-defined]
        finally:
            handler.release()
    handler.setLevel(level)
    logger.setLevel(level)
    return logger
