"""Decision-level explanation of profiling runs.

Built on the flight recorder's evidence (:mod:`repro.obs.flight`),
this module answers the three questions ``repro explain`` exists for:

* **"why was this stall reported?"** — :func:`explain_report` turns a
  flight-recorded :class:`~repro.core.events.ProfileReport` into one
  :class:`StallCard` per stall: the exact trigger sample, the depth
  margin against the threshold, the hysteresis merge chain, carry
  provenance, and any overlapping impaired intervals.
* **"why was nothing reported here?"** — :func:`near_misses_between`
  queries the rejected-candidate log for a sample window.
* **"why do these two runs differ?"** — :func:`diff_reports` aligns
  the stall sets of two runs by interval overlap and attributes every
  unmatched stall to the first diverging decision it can find in the
  other run's evidence (a near-miss covering the same window, a
  quality veto, or no candidate dip at all);
  :func:`first_divergence` pinpoints where two raw event streams part
  ways.

Everything here is read-side interpretation: stdlib-only, pure
functions over evidence/report objects (duck-typed so the module
never imports the core layer), no engine interaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .flight import FlightEvent, NearMiss, ReportEvidence, StallEvidence

#: Human explanations for the rejection-reason taxonomy of
#: ``stall_rejected`` events (see :mod:`repro.core.engine`).
REJECT_REASONS = {
    "too_few_samples": (
        "too few whole samples below threshold (indistinguishable "
        "from noise at this sample rate)"
    ),
    "inverted_edges": (
        "boundary refinement inverted the edges (the dip was "
        "shallower than one sample of threshold crossing)"
    ),
    "below_min_duration": "refined duration under the minimum stall length",
}


# ---------------------------------------------------------------------------
# per-stall provenance cards
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StallCard:
    """One stall's provenance, ready for rendering.

    ``evidence`` carries the numbers; ``lines`` is the prose trail —
    one string per decision, in the order the engine took them.
    """

    index: int
    evidence: StallEvidence
    lines: Tuple[str, ...]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "evidence": self.evidence.to_dict(),
            "lines": list(self.lines),
        }


def _fmt_pos(value: float) -> str:
    """Compact sample-position formatting (drop trailing zeros)."""
    return f"{value:.3f}".rstrip("0").rstrip(".")


def stall_card(evidence: StallEvidence) -> StallCard:
    """Build the provenance card for one stall's evidence record."""
    e = evidence
    lines: List[str] = []
    if not e.complete:
        lines.append(
            "decision trail overwritten (flight ring wrapped); "
            "reconstructed from the report alone"
        )
    lines.append(
        f"triggered at sample {e.trigger_sample}: first whole sample "
        f"below threshold {e.threshold:g}"
    )
    lines.append(
        f"deepest level {e.min_level:.4f} — margin "
        f"{e.depth_margin:.4f} below the threshold"
    )
    for merge in e.merge_chain:
        reason = merge.get("reason")
        if reason == "no_recovery":
            why = (
                f"never recovered above the hysteresis level "
                f"(gap peak {merge.get('gap_max'):.4f})"
            )
        else:
            why = f"gap of {merge.get('gap_len')} sample(s) under the merge limit"
        lines.append(
            f"merged across a gap at sample {_fmt_pos(float(merge['pos']))}: {why}"
        )
    if e.carried:
        lines.append(
            f"carried across {e.carry_chunks} chunk boundar"
            f"{'y' if e.carry_chunks == 1 else 'ies'} as scalar state"
        )
    lines.append(
        f"refined to [{_fmt_pos(e.begin_sample)}, {_fmt_pos(e.end_sample)}) "
        f"samples = {e.duration_cycles:.1f} cycles"
    )
    if e.is_refresh:
        lines.append("classified refresh-coincident (duration over refresh limit)")
    for begin, end in e.quality_overlaps:
        lines.append(
            f"overlaps impaired interval [{_fmt_pos(begin)}, {_fmt_pos(end)})"
        )
    if e.low_confidence:
        lines.append("flagged low-confidence (impairment overlap)")
    return StallCard(index=e.index, evidence=e, lines=tuple(lines))


def explain_report(report) -> List[StallCard]:
    """Provenance cards for every stall of a flight-recorded report.

    Raises ``ValueError`` when the report carries no evidence (it was
    profiled without a flight recorder).
    """
    if report.evidence is None:
        raise ValueError(
            "report has no evidence; re-profile with a flight recorder "
            "(repro explain does this automatically for captures)"
        )
    return [stall_card(e) for e in report.evidence.stalls]


def near_misses_between(
    evidence: ReportEvidence, begin_sample: float, end_sample: float
) -> List[NearMiss]:
    """Rejected candidates overlapping ``[begin_sample, end_sample)``.

    The "why was nothing reported here?" query: a rejected candidate in
    the window names the exact limit the dip fell short of; an empty
    result means the signal never even produced a candidate there.
    """
    return [
        m
        for m in evidence.near_misses
        if m.begin_sample <= end_sample and m.end_sample >= begin_sample
    ]


def near_miss_line(miss: NearMiss) -> str:
    """One-line human rendering of a rejected candidate."""
    why = REJECT_REASONS.get(miss.reason, miss.reason)
    return (
        f"candidate at sample {miss.trigger_sample} "
        f"[{_fmt_pos(miss.begin_sample)}, {_fmt_pos(miss.end_sample)}) "
        f"rejected: {why} (measured {miss.measured:g}, limit {miss.limit:g})"
    )


# ---------------------------------------------------------------------------
# run diffing
# ---------------------------------------------------------------------------


def align_stalls(
    stalls_a: Sequence, stalls_b: Sequence
) -> Tuple[List[Tuple[int, int]], List[int], List[int]]:
    """Align two stall lists by sample-interval overlap.

    Returns ``(pairs, only_a, only_b)``: matched index pairs plus the
    unmatched indices on each side.  Both lists are in time order, so
    a single merge-style sweep suffices; a stall matches the first
    not-yet-taken stall on the other side whose interval overlaps it.
    """
    pairs: List[Tuple[int, int]] = []
    only_a: List[int] = []
    only_b: List[int] = []
    j = 0
    for i, sa in enumerate(stalls_a):
        matched = False
        while j < len(stalls_b):
            sb = stalls_b[j]
            if sb.end_sample < sa.begin_sample:
                only_b.append(j)
                j += 1
                continue
            if sb.begin_sample > sa.end_sample:
                break
            pairs.append((i, j))
            j += 1
            matched = True
            break
        if not matched:
            only_a.append(i)
    only_b.extend(range(j, len(stalls_b)))
    return pairs, only_a, only_b


@dataclass(frozen=True)
class StallDelta:
    """One stall present in exactly one of two compared runs.

    Attributes:
        side: ``"a"`` or ``"b"`` — which run reported it.
        index: its position in that run's stall list.
        begin_sample / end_sample: its interval.
        cause: machine-readable attribution (``rejected:<reason>``,
            ``quality_veto``, ``no_candidate``, or ``unknown`` when the
            other run carries no evidence).
        detail: human sentence naming the first diverging decision.
    """

    side: str
    index: int
    begin_sample: float
    end_sample: float
    cause: str
    detail: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "side": self.side,
            "index": self.index,
            "begin_sample": self.begin_sample,
            "end_sample": self.end_sample,
            "cause": self.cause,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class ReportDiff:
    """The aligned difference between two profiled runs."""

    pairs: Tuple[Tuple[int, int], ...]
    deltas: Tuple[StallDelta, ...] = ()
    identical: bool = field(default=False)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "pairs": [list(p) for p in self.pairs],
            "deltas": [d.to_dict() for d in self.deltas],
            "identical": self.identical,
        }


def _attribute_missing(
    stall, other_evidence: Optional[ReportEvidence], other_name: str
) -> Tuple[str, str]:
    """Why does ``other_name`` not report ``stall``?  -> (cause, detail)."""
    begin = float(stall.begin_sample)
    end = float(stall.end_sample)
    if other_evidence is None:
        return "unknown", f"run {other_name} carries no flight evidence"
    misses = near_misses_between(other_evidence, begin, end)
    if misses:
        m = misses[0]
        why = REJECT_REASONS.get(m.reason, m.reason)
        return (
            f"rejected:{m.reason}",
            f"run {other_name} saw the dip (trigger sample "
            f"{m.trigger_sample}) but rejected it: {why} "
            f"(measured {m.measured:g}, limit {m.limit:g})",
        )
    vetoed = [
        e
        for e in other_evidence.stalls
        if e.low_confidence and e.begin_sample <= end and e.end_sample >= begin
    ]
    if vetoed:
        return (
            "quality_veto",
            f"run {other_name} reports an overlapping stall but flags it "
            f"low-confidence (impairment overlap)",
        )
    return (
        "no_candidate",
        f"run {other_name} produced no dip candidate in "
        f"[{_fmt_pos(begin)}, {_fmt_pos(end)}): its signal never "
        f"crossed the threshold there",
    )


def diff_reports(report_a, report_b) -> ReportDiff:
    """Align two runs' stall sets and attribute every difference.

    For each stall reported by exactly one run, the other run's
    evidence is searched for the first diverging decision: a rejected
    candidate covering the same window (names the limit that killed
    it), a quality veto, or — absent both — the conclusion that the
    other signal never produced a candidate there.
    """
    pairs, only_a, only_b = align_stalls(report_a.stalls, report_b.stalls)
    deltas: List[StallDelta] = []
    for i in only_a:
        stall = report_a.stalls[i]
        cause, detail = _attribute_missing(stall, report_b.evidence, "B")
        deltas.append(
            StallDelta(
                side="a",
                index=i,
                begin_sample=float(stall.begin_sample),
                end_sample=float(stall.end_sample),
                cause=cause,
                detail=detail,
            )
        )
    for j in only_b:
        stall = report_b.stalls[j]
        cause, detail = _attribute_missing(stall, report_a.evidence, "A")
        deltas.append(
            StallDelta(
                side="b",
                index=j,
                begin_sample=float(stall.begin_sample),
                end_sample=float(stall.end_sample),
                cause=cause,
                detail=detail,
            )
        )
    deltas.sort(key=lambda d: d.begin_sample)
    return ReportDiff(
        pairs=tuple(pairs),
        deltas=tuple(deltas),
        identical=not deltas and len(pairs) == len(report_a.stalls),
    )


def first_divergence(
    events_a: Sequence[FlightEvent],
    events_b: Sequence[FlightEvent],
    pos_tolerance: float = 1e-9,
) -> Optional[Tuple[int, Optional[FlightEvent], Optional[FlightEvent]]]:
    """First index where two decision-event streams part ways.

    Returns ``(index, event_a, event_b)`` — either event is ``None``
    when its stream ended early — or ``None`` when the streams agree
    end to end.  Events diverge on kind, on position (beyond
    ``pos_tolerance``), or on attrs.
    """
    for idx in range(max(len(events_a), len(events_b))):
        ea = events_a[idx] if idx < len(events_a) else None
        eb = events_b[idx] if idx < len(events_b) else None
        if ea is None or eb is None:
            return idx, ea, eb
        if (
            ea.kind != eb.kind
            or abs(ea.pos - eb.pos) > pos_tolerance
            or dict(ea.attrs) != dict(eb.attrs)
        ):
            return idx, ea, eb
    return None
