"""The observability master switch.

EMPROF's core argument is zero observer effect; the reproduction holds
itself to the same standard.  Every span, counter, and histogram in
:mod:`repro.obs` is gated on one process-wide flag so that with
``EMPROF_OBS`` unset (the default) instrumented hot paths pay at most
a cheap attribute check - no timestamps, no allocations, no locks.

The flag mirrors :mod:`repro.devtools.contracts`' ``EMPROF_CONTRACTS``
toggle, with the opposite default: contracts defend correctness and
default *on*; observability is a diagnostic aid and defaults *off*.

Set ``EMPROF_OBS=1`` in the environment (read once at import), or call
:func:`set_obs_enabled` at runtime.
"""

from __future__ import annotations

import os

_ENV_FLAG = "EMPROF_OBS"

_enabled = os.environ.get(_ENV_FLAG, "0").strip().lower() in (
    "1",
    "true",
    "on",
    "yes",
)


def obs_enabled() -> bool:
    """Whether observability instrumentation is currently active."""
    return _enabled


def set_obs_enabled(enabled: bool) -> bool:
    """Enable/disable observability; returns the previous setting."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous
