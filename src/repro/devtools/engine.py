"""emlint core: findings, suppressions, and the file/tree driver.

The engine is rule-agnostic: a :class:`Rule` walks one parsed module
and yields :class:`Finding` objects; the engine parses files, collects
findings from every rule, and drops those silenced by a
``# emlint: disable=<rule>`` comment.  Rules themselves live in
:mod:`repro.devtools.rules`.

Suppression comments work at line granularity:

* a trailing comment silences the rules named on that physical line;
* a comment on a line of its own also silences the following line
  (useful when the flagged expression is long);
* ``disable=all`` silences every rule.

Unparseable files are reported as ``parse-error`` findings rather than
crashing the run, so a syntax error still fails the lint gate with a
file:line diagnostic.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

_SUPPRESS_RE = re.compile(r"#\s*emlint:\s*disable=([A-Za-z0-9_,\- ]+)")

#: Directory names never descended into when walking a tree.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "build", "dist"}


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """``path:line:col: rule: message`` - the text-reporter form."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


@dataclass(frozen=True)
class FileContext:
    """Everything a rule may consult about the module being linted."""

    path: str
    source: str
    tree: ast.Module


class Rule:
    """Base class for emlint rules.

    Subclasses set :attr:`name` (the id used in suppression comments
    and ``--rules``) and :attr:`description`, and implement
    :meth:`check` as a generator over the module AST.
    """

    name: str = ""
    description: str = ""

    def check(self, context: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, context: FileContext, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        return Finding(
            path=context.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.name,
            message=message,
        )


@dataclass
class LintResult:
    """Aggregate outcome of linting one or more files.

    The whole-program driver (:func:`analyze_paths`) additionally
    fills the cache counters (warm-run accounting), the count of
    findings silenced by an adopt-now baseline, and the keys of
    baseline entries that no longer match anything (stale — the debt
    was paid, remove the entry).
    """

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed_count: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    baseline_suppressed: int = 0
    stale_baseline: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings


def _parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> set of rule names silenced on that line."""
    out: Dict[int, Set[str]] = {}
    carry: Optional[Set[str]] = None
    for lineno, line in enumerate(source.splitlines(), start=1):
        if carry:
            out.setdefault(lineno, set()).update(carry)
        carry = None
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        names = {
            part.strip().lower()
            for part in match.group(1).split(",")
            if part.strip()
        }
        if not names:
            continue
        out.setdefault(lineno, set()).update(names)
        if line.lstrip().startswith("#"):
            # Standalone comment: extends to the statement below it.
            carry = names
    return out


def _is_suppressed(finding: Finding, suppressions: Dict[int, Set[str]]) -> bool:
    names = suppressions.get(finding.line)
    if not names:
        return False
    return "all" in names or finding.rule.lower() in names


def _default_rules() -> Sequence[Rule]:
    from .rules import ALL_RULES  # deferred: rules.py imports this module

    return [cls() for cls in ALL_RULES]


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> LintResult:
    """Lint one module's source text (per-file rules only)."""
    active = list(rules) if rules is not None else list(_default_rules())
    result = LintResult(files_checked=1)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        result.findings.append(
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1),
                rule="parse-error",
                message=f"could not parse module: {exc.msg}",
            )
        )
        return result

    context = FileContext(path=path, source=source, tree=tree)
    suppressions = _parse_suppressions(source)
    raw: List[Finding] = []
    for rule in active:
        raw.extend(rule.check(context))
    for finding in sorted(raw, key=lambda f: (f.line, f.col, f.rule)):
        if _is_suppressed(finding, suppressions):
            result.suppressed_count += 1
        else:
            result.findings.append(finding)
    return result


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths`` (files or directories)."""
    for path in paths:
        path = Path(path)
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            parts = set(candidate.parts)
            if parts & _SKIP_DIRS:
                continue
            if any(part.endswith(".egg-info") for part in candidate.parts):
                continue
            yield candidate


def lint_paths(
    paths: Sequence[Path],
    rules: Optional[Sequence[Rule]] = None,
) -> LintResult:
    """Lint every Python file under ``paths`` and aggregate the result."""
    active = list(rules) if rules is not None else list(_default_rules())
    total = LintResult()
    for file_path in iter_python_files(Path(p) for p in paths):
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            total.findings.append(
                Finding(
                    path=str(file_path),
                    line=1,
                    col=1,
                    rule="io-error",
                    message=f"could not read file: {exc}",
                )
            )
            total.files_checked += 1
            continue
        one = lint_source(source, path=str(file_path), rules=active)
        total.findings.extend(one.findings)
        total.suppressed_count += one.suppressed_count
        total.files_checked += 1
    return total


# ---------------------------------------------------------------------------
# whole-program analysis (two-phase driver)
# ---------------------------------------------------------------------------


def _default_cross_rules():
    from .xrules import ALL_CROSS_RULES  # deferred: xrules imports this module

    return [cls() for cls in ALL_CROSS_RULES]


def analyze_paths(
    paths: Sequence[Path],
    rules: Optional[Sequence[Rule]] = None,
    cross_rules=None,
    *,
    layers=None,
    cache_path: Optional[Path] = None,
    jobs: Optional[int] = None,
    baseline=None,
) -> LintResult:
    """Two-phase whole-program analysis over every file under ``paths``.

    Phase 1 runs the per-file rules and extracts a
    :class:`repro.devtools.facts.ModuleFacts` summary per file —
    cached by content hash when ``cache_path`` is given, parallelized
    across files.  Phase 2 assembles the project fact base (import
    graph + layer map) and runs the cross-module rules over it.
    Inline ``# emlint: disable=`` suppressions apply to cross findings
    through the cached suppression maps; an optional adopt-now
    ``baseline`` (:class:`repro.devtools.baseline.Baseline`) filters
    the final finding list and reports stale entries.

    Args:
        paths: files or directories to analyze.
        rules: per-file rules (default: all registered).
        cross_rules: cross-module rules (default: all registered);
            pass ``[]`` to skip phase 2 entirely.
        layers: a :class:`repro.devtools.graph.LayerConfig`; default
            loads ``pyproject.toml`` from the current directory,
            falling back to the built-in repository map.
        cache_path: location of the incremental cache; ``None``
            disables caching.
        jobs: phase-1 worker threads (default: min(8, cpu count)).
        baseline: adopt-now suppression file, already loaded.
    """
    from .cache import FactCache, extract_outcomes
    from .graph import load_layer_config
    from .xrules import ProgramFacts

    active = list(rules) if rules is not None else list(_default_rules())
    active_cross = (
        list(cross_rules) if cross_rules is not None else _default_cross_rules()
    )
    layer_config = layers if layers is not None else load_layer_config()

    cache = FactCache(cache_path) if cache_path is not None else None
    outcomes, hits, misses = extract_outcomes(
        [Path(p) for p in paths], active, cache=cache, jobs=jobs
    )

    result = LintResult(
        files_checked=len(outcomes), cache_hits=hits, cache_misses=misses
    )
    for outcome in outcomes:
        result.findings.extend(outcome.findings)
        result.suppressed_count += outcome.suppressed_count

    if active_cross:
        modules = {
            o.facts.module: o.facts for o in outcomes if o.facts is not None
        }
        program = ProgramFacts.build(modules, layers=layer_config)
        suppression_by_path: Dict[str, Dict[int, Set[str]]] = {
            facts.path: {
                line: set(names) for line, names in facts.suppressions.items()
            }
            for facts in modules.values()
        }
        cross_findings: List[Finding] = []
        for rule in active_cross:
            cross_findings.extend(rule.check(program))
        for finding in sorted(
            cross_findings, key=lambda f: (f.path, f.line, f.col, f.rule)
        ):
            if _is_suppressed(
                finding, suppression_by_path.get(finding.path, {})
            ):
                result.suppressed_count += 1
            else:
                result.findings.append(finding)

    if baseline is not None:
        kept, suppressed = baseline.apply(result.findings)
        result.findings = kept
        result.baseline_suppressed = suppressed
        result.stale_baseline = [e.key for e in baseline.stale_entries()]

    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return result
