"""Developer tooling for the EMPROF reproduction.

Two halves, both specific to this codebase's failure modes:

* **emlint**, a two-phase whole-program static analyzer
  (``python -m repro.devtools.lint`` / ``make lint``).  Phase 1 runs
  per-file rules (:mod:`repro.devtools.rules`: unit safety,
  determinism, config immutability, float equality, mutable defaults,
  silent excepts) and extracts a per-module fact base
  (:mod:`repro.devtools.facts`), cached by content hash
  (:mod:`repro.devtools.cache`) and extracted in parallel.  Phase 2
  runs cross-module rules (:mod:`repro.devtools.xrules`) over the
  import graph and layer map (:mod:`repro.devtools.graph`,
  configured via ``pyproject.toml`` ``[tool.emlint]``): architecture
  layering, import cycles, concurrency safety (shared mutable state,
  fork-unsafe import-time captures, unpicklable worker targets), and
  hot-loop vectorization.  Known debt is carried in an adopt-now
  baseline (:mod:`repro.devtools.baseline`); reports come out as
  text, JSON, or SARIF (:mod:`repro.devtools.reporters`).  The
  tier-1 tests ``tests/test_lint_clean.py`` keep the tree clean.

* :mod:`repro.devtools.contracts` - runtime contracts (decorators and
  check functions) asserting the event invariants the analysis
  pipeline relies on: stall ``begin <= end``, monotonically
  non-decreasing stall positions, normalized magnitude in [0, 1].
  They are applied to the public ``core.detect`` / ``core.events`` /
  ``core.streaming`` surfaces and can be disabled with the
  ``EMPROF_CONTRACTS=0`` environment variable.

See ``docs/static-analysis.md`` for the rule catalogue, the layer
map, the suppression syntax (``# emlint: disable=<rule>``), and the
baseline workflow.
"""

from __future__ import annotations

__all__ = [
    "baseline",
    "cache",
    "contracts",
    "engine",
    "facts",
    "graph",
    "lint",
    "reporters",
    "rules",
    "xrules",
]
