"""Developer tooling for the EMPROF reproduction.

Two halves, both specific to this codebase's failure modes:

* :mod:`repro.devtools.lint` (``emlint``) - an AST-based static
  analyzer whose rules encode the project's domain invariants: no
  mixing of cycle/sample/second/hertz quantities without an explicit
  conversion, no global (non-injected) RNGs, frozen ``*Config``
  dataclasses, no float ``==``, no mutable default arguments.  Run it
  with ``python -m repro.devtools.lint src/`` or ``make lint``; the
  tier-1 test ``tests/test_lint_clean.py`` keeps the tree clean.

* :mod:`repro.devtools.contracts` - runtime contracts (decorators and
  check functions) asserting the event invariants the analysis
  pipeline relies on: stall ``begin <= end``, monotonically
  non-decreasing stall positions, normalized magnitude in [0, 1].
  They are applied to the public ``core.detect`` / ``core.events`` /
  ``core.streaming`` surfaces and can be disabled with the
  ``EMPROF_CONTRACTS=0`` environment variable.

See ``docs/static-analysis.md`` for the rule catalogue and the
suppression syntax (``# emlint: disable=<rule>``).
"""

from __future__ import annotations

__all__ = ["contracts", "engine", "lint", "reporters", "rules"]
