"""Phase 2 substrate: the project import graph and the layer map.

The layer map is declared ``pyproject``-style under ``[tool.emlint]``
(parsed with stdlib :mod:`tomllib`); :data:`DEFAULT_LAYER_CONFIG`
encodes the repository's architecture as a built-in fallback so the
analyzer works on any tree without configuration:

* ``core`` / ``emsignal`` / ``sim`` (and the other library layers)
  must not import ``experiments`` / ``cli`` internals, nor the
  observatory's internals (``obs.ledger``, ``obs.dashboard``, ...).
  The *instrumentation surface* (``obs.metrics`` / ``obs.trace`` /
  ``obs.runtime``) is its own layer precisely so hot code may import
  it.
* ``obs`` stays stdlib-only at import time (deferred, function-level
  imports are the sanctioned escape hatch and are exempt).
* no import cycles, at module granularity.

The import graph contains only **module-level** imports between
project modules: deferred imports inside functions are how cycles and
heavy dependencies are legitimately broken, so they never create
edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from .facts import ImportFact, ModuleFacts

try:  # Python 3.11+
    import tomllib
except ImportError:  # pragma: no cover - older interpreters
    tomllib = None  # type: ignore[assignment]


# ---------------------------------------------------------------------------
# layer configuration
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LayerConfig:
    """The declarative architecture map the layering rules enforce.

    Attributes:
        layers: layer name -> module prefixes.  A module belongs to the
            layer with the *longest* matching prefix (exact module or
            dotted-prefix match), so ``repro.obs.metrics`` can sit in
            ``obs-api`` while ``repro.obs`` as a whole is
            ``obs-internal``.
        forbidden: source layer -> layer names it must not import.
        stdlib_only: layers whose module-level imports must be stdlib
            or internal to their own top-level package.
        hot: module prefixes whose loops the vectorization rule
            audits.
    """

    layers: Mapping[str, Tuple[str, ...]] = field(default_factory=dict)
    forbidden: Mapping[str, Tuple[str, ...]] = field(default_factory=dict)
    stdlib_only: Tuple[str, ...] = ()
    hot: Tuple[str, ...] = ()

    def layer_of(self, module: str) -> Optional[str]:
        """Layer owning ``module``, by longest prefix match."""
        best: Optional[str] = None
        best_len = -1
        for layer, prefixes in self.layers.items():
            for prefix in prefixes:
                if module == prefix or module.startswith(prefix + "."):
                    if len(prefix) > best_len:
                        best, best_len = layer, len(prefix)
        return best

    def is_hot(self, module: str) -> bool:
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.hot
        )


#: The repository's architecture, used when no ``[tool.emlint]`` table
#: is found.  Kept in sync with ``pyproject.toml`` by a test.
DEFAULT_LAYER_CONFIG = LayerConfig(
    layers={
        "core": ("repro.core",),
        "emsignal": ("repro.emsignal",),
        "sim": ("repro.sim",),
        "devices": ("repro.devices",),
        "workloads": ("repro.workloads",),
        "attribution": ("repro.attribution",),
        "faults": ("repro.faults",),
        "baselines": ("repro.baselines",),
        "errors": ("repro.errors",),
        "obs-api": (
            "repro.obs.metrics",
            "repro.obs.trace",
            "repro.obs.runtime",
            "repro.obs.events",
            "repro.obs.tracectx",
            "repro.obs.flight",
        ),
        "obs-internal": ("repro.obs",),
        "experiments": ("repro.experiments",),
        "cli": (
            "repro.cli",
            "repro.__main__",
            "repro.render",
            "repro.analysis",
            "repro.acquire",
            "repro.io",
        ),
        "devtools": ("repro.devtools",),
    },
    forbidden={
        layer: ("experiments", "cli", "obs-internal")
        for layer in (
            "core",
            "emsignal",
            "sim",
            "devices",
            "workloads",
            "attribution",
            "baselines",
            "errors",
            "obs-api",
        )
    },
    stdlib_only=("obs-api", "obs-internal"),
    hot=("repro.core", "repro.emsignal", "repro.attribution"),
)


def _as_str_tuple(value: object, context: str) -> Tuple[str, ...]:
    if not isinstance(value, list) or not all(
        isinstance(item, str) for item in value
    ):
        raise ValueError(f"[tool.emlint] {context} must be a list of strings")
    return tuple(value)


def layer_config_from_dict(payload: Mapping[str, object]) -> LayerConfig:
    """Build a :class:`LayerConfig` from a ``[tool.emlint]`` table."""
    layers = {
        str(name): _as_str_tuple(prefixes, f"layers.{name}")
        for name, prefixes in (payload.get("layers") or {}).items()
    }
    forbidden = {
        str(name): _as_str_tuple(targets, f"forbidden.{name}")
        for name, targets in (payload.get("forbidden") or {}).items()
    }
    for source, targets in forbidden.items():
        unknown = [t for t in (source, *targets) if t not in layers]
        if unknown:
            raise ValueError(
                f"[tool.emlint] forbidden references unknown layer(s): "
                f"{', '.join(sorted(set(unknown)))}"
            )
    stdlib_only = _as_str_tuple(payload.get("stdlib_only") or [], "stdlib_only")
    hot = _as_str_tuple(payload.get("hot") or [], "hot")
    return LayerConfig(
        layers=layers, forbidden=forbidden, stdlib_only=stdlib_only, hot=hot
    )


def load_layer_config(pyproject: Optional[Path] = None) -> LayerConfig:
    """Layer config from ``pyproject.toml``, else the built-in default.

    Raises:
        ValueError: the ``[tool.emlint]`` table is malformed (an
            unreadable/absent file silently falls back to the default;
            a *broken* config must not).
    """
    if pyproject is None:
        pyproject = Path("pyproject.toml")
    if tomllib is None or not Path(pyproject).is_file():
        return DEFAULT_LAYER_CONFIG
    with open(pyproject, "rb") as handle:
        payload = tomllib.load(handle)
    table = payload.get("tool", {}).get("emlint")
    if not table:
        return DEFAULT_LAYER_CONFIG
    return layer_config_from_dict(table)


# ---------------------------------------------------------------------------
# import graph
# ---------------------------------------------------------------------------


def resolve_import_edges(
    fact: ImportFact, known_modules: Set[str]
) -> List[str]:
    """Project-internal modules one import statement depends on.

    ``from pkg import name`` resolves to ``pkg.name`` when that is a
    known project module (importing a submodule), otherwise to ``pkg``
    itself (importing an object).  Bare ``import pkg.sub`` resolves to
    the deepest known prefix.
    """
    edges: List[str] = []
    target = fact.target
    if not target:
        return edges
    if fact.names:
        for name in fact.names:
            dotted = f"{target}.{name}"
            if dotted in known_modules:
                edges.append(dotted)
            elif target in known_modules:
                edges.append(target)
    else:
        probe = target
        while probe:
            if probe in known_modules:
                edges.append(probe)
                break
            probe = probe.rpartition(".")[0]
    return edges


def build_import_graph(
    modules: Mapping[str, ModuleFacts],
    module_level_only: bool = True,
) -> Dict[str, Set[str]]:
    """Adjacency map of project-internal imports (no external edges)."""
    known = set(modules)
    graph: Dict[str, Set[str]] = {name: set() for name in known}
    for name, facts in modules.items():
        for imp in facts.imports:
            if module_level_only and not imp.module_level:
                continue
            for edge in resolve_import_edges(imp, known):
                if edge != name:
                    graph[name].add(edge)
    return graph


def find_cycles(graph: Mapping[str, Set[str]]) -> List[List[str]]:
    """Strongly connected components of size > 1 (import cycles).

    Iterative Tarjan; each cycle is returned sorted for determinism,
    and the cycle list is sorted by its first member.
    """
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    cycles: List[List[str]] = []

    for root in sorted(graph):
        if root in index:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, edge_index = work[-1]
            if edge_index == 0:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            neighbors = sorted(graph.get(node, ()))
            if edge_index < len(neighbors):
                work[-1] = (node, edge_index + 1)
                neighbor = neighbors[edge_index]
                if neighbor not in index:
                    work.append((neighbor, 0))
                elif neighbor in on_stack:
                    lowlink[node] = min(lowlink[node], index[neighbor])
            else:
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1:
                        cycles.append(sorted(component))
    cycles.sort(key=lambda c: c[0])
    return cycles
