"""emlint output formats: text, machine-readable JSON, and SARIF 2.1.0."""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Optional

from .engine import LintResult

#: bumped whenever the JSON shape changes incompatibly
JSON_FORMAT_VERSION = 2

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(result: LintResult) -> str:
    """One ``path:line:col: rule: message`` line per finding + summary."""
    lines = [finding.format() for finding in result.findings]
    noun = "finding" if len(result.findings) == 1 else "findings"
    summary = (
        f"emlint: {len(result.findings)} {noun} in "
        f"{result.files_checked} file(s) "
        f"({result.suppressed_count} suppressed"
    )
    if result.baseline_suppressed:
        summary += f", {result.baseline_suppressed} baselined"
    summary += ")"
    lines.append(summary)
    if result.cache_hits or result.cache_misses:
        lines.append(
            f"emlint: cache {result.cache_hits} hit(s), "
            f"{result.cache_misses} miss(es)"
        )
    for key in result.stale_baseline:
        lines.append(f"emlint: stale baseline entry (fixed? remove it): {key}")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Stable JSON document for tooling (CI annotations, dashboards)."""
    payload = {
        "version": JSON_FORMAT_VERSION,
        "files_checked": result.files_checked,
        "finding_count": len(result.findings),
        "suppressed_count": result.suppressed_count,
        "baseline_suppressed": result.baseline_suppressed,
        "stale_baseline": list(result.stale_baseline),
        "cache_hits": result.cache_hits,
        "cache_misses": result.cache_misses,
        "findings": [asdict(finding) for finding in result.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _artifact_uri(path: str) -> str:
    """Relative posix URI when under the cwd, else an absolute file path."""
    p = Path(path)
    try:
        p = p.resolve().relative_to(Path.cwd().resolve())
    except ValueError:
        pass
    return p.as_posix()


def render_sarif(
    result: LintResult, rule_descriptions: Optional[Dict[str, str]] = None
) -> str:
    """SARIF 2.1.0 log for code-scanning UIs (GitHub, VS Code, ...).

    ``rule_descriptions`` maps rule id -> short description for the
    tool-driver rule table; rules that only appear in findings (e.g.
    ``parse-error``) are added to the table automatically.
    """
    descriptions = dict(rule_descriptions or {})
    for finding in result.findings:
        descriptions.setdefault(finding.rule, finding.rule)
    rule_ids = sorted(descriptions)
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    sarif_results = [
        {
            "ruleId": finding.rule,
            "ruleIndex": rule_index[finding.rule],
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _artifact_uri(finding.path)
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    }
                }
            ],
        }
        for finding in result.findings
    ]
    log = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "emlint",
                        "informationUri": (
                            "https://example.invalid/emprof-repro/"
                            "docs/static-analysis.md"
                        ),
                        "rules": [
                            {
                                "id": rule_id,
                                "shortDescription": {
                                    "text": descriptions[rule_id]
                                },
                            }
                            for rule_id in rule_ids
                        ],
                    }
                },
                "results": sarif_results,
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)
