"""emlint output formats: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json
from dataclasses import asdict

from .engine import LintResult

#: bumped whenever the JSON shape changes incompatibly
JSON_FORMAT_VERSION = 1


def render_text(result: LintResult) -> str:
    """One ``path:line:col: rule: message`` line per finding + summary."""
    lines = [finding.format() for finding in result.findings]
    noun = "finding" if len(result.findings) == 1 else "findings"
    lines.append(
        f"emlint: {len(result.findings)} {noun} in "
        f"{result.files_checked} file(s) "
        f"({result.suppressed_count} suppressed)"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Stable JSON document for tooling (CI annotations, dashboards)."""
    payload = {
        "version": JSON_FORMAT_VERSION,
        "files_checked": result.files_checked,
        "finding_count": len(result.findings),
        "suppressed_count": result.suppressed_count,
        "findings": [asdict(finding) for finding in result.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
