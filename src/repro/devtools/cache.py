"""Incremental fact/finding cache keyed by content hash.

Per-file work (parsing, per-file rules, fact extraction) is a pure
function of the file's bytes and the active rule set, so it is cached
in a single JSON document (``.emlint_cache.json`` by default) keyed by
``sha256(source)`` plus a rule-set signature.  A warm whole-repo run
re-parses nothing; an edited file misses on its hash and is
re-extracted.  The cache file is written atomically (temp +
``os.replace``) and any unreadable/stale/foreign cache is treated as
empty — a corrupt cache can cost time, never correctness.

Extraction is parallelized across files with a thread pool: the work
is a mix of file IO and C-level ``ast.parse``, and determinism is kept
by sorting outcomes by path after the pool drains.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .engine import (
    Finding,
    LintResult,
    Rule,
    iter_python_files,
    lint_source,
    _parse_suppressions,
)
from .facts import FACTS_SCHEMA_VERSION, ModuleFacts, extract_facts, module_name_for

CACHE_SCHEMA = "emlint-cache"
CACHE_SCHEMA_VERSION = 1

#: Default cache filename, conventionally at the repository root.
DEFAULT_CACHE_NAME = ".emlint_cache.json"


def content_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def ruleset_signature(rules: Sequence[Rule]) -> str:
    """Cache signature: facts schema + the active per-file rule names."""
    names = ",".join(sorted(rule.name for rule in rules))
    return f"v{CACHE_SCHEMA_VERSION}.f{FACTS_SCHEMA_VERSION}:{names}"


@dataclass
class FileOutcome:
    """Everything phase 1 produces for one file."""

    path: str
    content_hash: str
    findings: List[Finding] = field(default_factory=list)
    suppressed_count: int = 0
    facts: Optional[ModuleFacts] = None
    from_cache: bool = False


class FactCache:
    """The on-disk cache document; missing/corrupt reads as empty."""

    def __init__(self, path: Optional[Path]):
        self.path = Path(path) if path is not None else None
        self._entries: Dict[str, dict] = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        if self.path is None or not self.path.is_file():
            return
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != CACHE_SCHEMA
            or payload.get("version") != CACHE_SCHEMA_VERSION
        ):
            return
        entries = payload.get("entries")
        if isinstance(entries, dict):
            self._entries = entries

    def get(
        self, path: str, source_hash: str, signature: str
    ) -> Optional[FileOutcome]:
        entry = self._entries.get(path)
        if not isinstance(entry, dict):
            return None
        if entry.get("hash") != source_hash or entry.get("signature") != signature:
            return None
        try:
            findings = [Finding(**f) for f in entry.get("findings", [])]
            facts_payload = entry.get("facts")
            facts = (
                ModuleFacts.from_dict(facts_payload)
                if facts_payload is not None
                else None
            )
            suppressed = int(entry.get("suppressed_count", 0))
        except (TypeError, KeyError, ValueError):
            return None
        return FileOutcome(
            path=path,
            content_hash=source_hash,
            findings=findings,
            suppressed_count=suppressed,
            facts=facts,
            from_cache=True,
        )

    def put(self, outcome: FileOutcome, signature: str) -> None:
        self._entries[outcome.path] = {
            "hash": outcome.content_hash,
            "signature": signature,
            "findings": [
                {
                    "path": f.path,
                    "line": f.line,
                    "col": f.col,
                    "rule": f.rule,
                    "message": f.message,
                }
                for f in outcome.findings
            ],
            "suppressed_count": outcome.suppressed_count,
            "facts": outcome.facts.to_dict() if outcome.facts is not None else None,
        }
        self._dirty = True

    def prune(self, live_paths: Sequence[str]) -> None:
        """Drop entries for files no longer part of the analyzed set."""
        live = set(live_paths)
        dead = [key for key in self._entries if key not in live]
        for key in dead:
            del self._entries[key]
            self._dirty = True

    def save(self) -> None:
        """Atomically persist the cache (temp file + ``os.replace``)."""
        if self.path is None or not self._dirty:
            return
        payload = {
            "schema": CACHE_SCHEMA,
            "version": CACHE_SCHEMA_VERSION,
            "entries": self._entries,
        }
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        os.replace(tmp, self.path)
        self._dirty = False


def _process_one(path: Path, rules: Sequence[Rule]) -> FileOutcome:
    """Parse one file, run per-file rules, and extract facts."""
    path_key = str(path)
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        return FileOutcome(
            path=path_key,
            content_hash="",
            findings=[
                Finding(
                    path=path_key,
                    line=1,
                    col=1,
                    rule="io-error",
                    message=f"could not read file: {exc}",
                )
            ],
        )
    digest = content_hash(source)
    per_file = lint_source(source, path=path_key, rules=rules)
    try:
        tree = ast.parse(source, filename=path_key)
    except SyntaxError:
        # lint_source already reported the parse-error finding.
        return FileOutcome(
            path=path_key,
            content_hash=digest,
            findings=per_file.findings,
            suppressed_count=per_file.suppressed_count,
        )
    facts = extract_facts(
        tree,
        module=module_name_for(path),
        path=path_key,
        suppressions=_parse_suppressions(source),
        is_package=path.name == "__init__.py",
    )
    return FileOutcome(
        path=path_key,
        content_hash=digest,
        findings=per_file.findings,
        suppressed_count=per_file.suppressed_count,
        facts=facts,
    )


def extract_outcomes(
    paths: Sequence[Path],
    rules: Sequence[Rule],
    cache: Optional[FactCache] = None,
    jobs: Optional[int] = None,
) -> Tuple[List[FileOutcome], int, int]:
    """Phase 1 over every file: (outcomes sorted by path, hits, misses).

    Cached files are reused when both the content hash and the
    rule-set signature match; everything else is (re)processed on a
    thread pool and written back to the cache.
    """
    files = list(iter_python_files(paths))
    signature = ruleset_signature(rules)
    outcomes: List[FileOutcome] = []
    misses: List[Path] = []
    hits = 0

    for path in files:
        path_key = str(path)
        cached: Optional[FileOutcome] = None
        if cache is not None:
            try:
                source = path.read_text(encoding="utf-8")
            except OSError:
                source = None
            if source is not None:
                cached = cache.get(path_key, content_hash(source), signature)
        if cached is not None:
            outcomes.append(cached)
            hits += 1
        else:
            misses.append(path)

    if misses:
        workers = jobs if jobs and jobs > 0 else min(8, (os.cpu_count() or 2))
        if workers > 1 and len(misses) > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                fresh = list(
                    pool.map(_process_one, misses, [rules] * len(misses))
                )
        else:
            fresh = [_process_one(p, rules) for p in misses]
        for outcome in fresh:
            if cache is not None and outcome.content_hash:
                cache.put(outcome, signature)
        outcomes.extend(fresh)

    if cache is not None:
        cache.prune([str(p) for p in files])
        cache.save()

    outcomes.sort(key=lambda o: o.path)
    return outcomes, hits, len(misses)
