"""Phase 1 of the whole-program analyzer: per-file fact extraction.

The cross-module rules in :mod:`repro.devtools.xrules` never touch an
AST: they run over :class:`ModuleFacts` — a compact, JSON-serializable
summary of everything a cross-module rule may need to know about one
module.  That split is what makes the analyzer incremental: facts are
pure functions of a file's content, so they can be cached by content
hash (:mod:`repro.devtools.cache`) and extracted in parallel, while
the (cheap) cross-module phase re-runs on every invocation.

Facts recorded per module:

* **imports** — every ``import``/``from ... import``, with relative
  levels resolved against the module's dotted name and a flag for
  whether the import executes at module scope (import time) or is
  deferred inside a function.
* **module-level globals** — every name bound at module scope,
  classified (mutable container literal/factory, lock, RNG instance,
  file/socket handle, other) so the concurrency rules can reason about
  import-time state.
* **per-function summaries** — ``global`` rebinds, mutations of
  module-level names (and whether they happen under a module-level
  lock), suspicious ``multiprocessing``/executor targets, the shape of
  every loop over ndarray-typed values, ``signal.signal``
  registrations (with inline-lambda handlers scanned on the spot), and
  curated blocking / non-reentrant calls so the signal-handler rule
  can audit whatever ends up registered.
* **suppressions** — the ``# emlint: disable=`` map, so cached files
  still honor their inline suppressions when cross findings land on
  them.
"""

from __future__ import annotations

import ast
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

#: Bump when the fact schema changes incompatibly (invalidates caches).
FACTS_SCHEMA_VERSION = 2

# ---------------------------------------------------------------------------
# fact records
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ImportFact:
    """One import statement, with relative levels already resolved."""

    target: str  # dotted module imported, e.g. "repro.obs.metrics"
    names: Tuple[str, ...]  # names bound by `from X import a, b`; () for bare
    lineno: int
    col: int
    module_level: bool  # executes at import time (not inside a function)


@dataclass(frozen=True)
class GlobalFact:
    """One name bound at module scope."""

    name: str
    lineno: int
    col: int
    #: "mutable" (list/dict/set literal or factory call), "lock"
    #: (threading.Lock/RLock/Condition/Semaphore), "rng" (RNG instance
    #: constructed at import time), "handle" (file/socket/tempfile
    #: opened at import time), or "other".
    kind: str
    detail: str = ""  # e.g. the constructor call that produced it


@dataclass(frozen=True)
class MutationFact:
    """One mutation of a module-level name inside a function body."""

    name: str  # the module-level name mutated
    lineno: int
    col: int
    #: "rebind" (global statement + assignment), "augassign",
    #: "subscript" (x[k] = / del x[k]), "attr" (x.y = ...), or
    #: "call:<method>" (x.append(...), x.update(...), ...).
    how: str
    locked: bool  # mutation happens inside `with <module-level lock>:`


@dataclass(frozen=True)
class LoopFact:
    """Shape of one loop, as far as array-vectorizability is concerned."""

    lineno: int
    col: int
    kind: str  # "for" | "while"
    #: "array" (for x in <ndarray>), "range_len_array"
    #: (for i in range(len(<ndarray>))), "enumerate_array",
    #: "range" (plain counted loop), "other".
    iterates: str
    array_name: str = ""  # the ndarray-typed name driving the loop, if any
    subscripts_array: bool = False  # body indexes an ndarray-typed name
    body_statements: int = 0


@dataclass(frozen=True)
class TargetFact:
    """A callable handed to a process/executor API inside a function."""

    lineno: int
    col: int
    api: str  # e.g. "Process(target=...)", "executor.submit"
    #: why the target is suspicious: "lambda" or "nested-function".
    problem: str
    target_desc: str = ""


@dataclass(frozen=True)
class SignalRegistrationFact:
    """One ``signal.signal(SIG, handler)`` call inside a function.

    Attributes:
        lineno / col: the registration site.
        signal_name: e.g. ``SIGTERM`` (best effort from the AST).
        handler: the name used to resolve the handler — a function
            name, the terminal attribute of a bound method
            (``self._on_signal`` -> ``_on_signal``), or ``lambda``.
        handler_kind: ``name`` / ``attribute`` / ``lambda`` / ``other``.
        inline_blocking / inline_nonreentrant: curated calls found
            inside an inline-lambda handler, as ``(callee, lineno)``;
            empty for named handlers (their own FunctionFact carries
            the calls).
    """

    lineno: int
    col: int
    signal_name: str
    handler: str
    handler_kind: str
    inline_blocking: Tuple[Tuple[str, int], ...] = ()
    inline_nonreentrant: Tuple[Tuple[str, int], ...] = ()


@dataclass(frozen=True)
class FunctionFact:
    """Cross-module-relevant summary of one function or method."""

    qualname: str  # e.g. "Campaign.execute" or "helper"
    lineno: int
    col: int
    global_rebinds: Tuple[Tuple[str, int], ...] = ()
    mutations: Tuple[MutationFact, ...] = ()
    loops: Tuple[LoopFact, ...] = ()
    process_targets: Tuple[TargetFact, ...] = ()
    signal_registrations: Tuple[SignalRegistrationFact, ...] = ()
    #: curated calls that can block (``sleep``, ``join``, ``acquire``,
    #: socket ops, ...) as ``(callee, lineno)``.
    blocking_calls: Tuple[Tuple[str, int], ...] = ()
    #: curated non-reentrant calls (``print``, ``open``, logging
    #: methods, stream writes) as ``(callee, lineno)``.
    nonreentrant_calls: Tuple[Tuple[str, int], ...] = ()


@dataclass(frozen=True)
class ModuleFacts:
    """Everything phase 2 knows about one module."""

    module: str  # dotted name, e.g. "repro.core.detect"
    path: str
    imports: Tuple[ImportFact, ...] = ()
    globals: Tuple[GlobalFact, ...] = ()
    functions: Tuple[FunctionFact, ...] = ()
    #: line -> rule names silenced there (from ``# emlint: disable=``).
    suppressions: Dict[int, List[str]] = field(default_factory=dict)

    # -- serialization (for the content-hash cache) -------------------------

    def to_dict(self) -> Dict[str, object]:
        payload = asdict(self)
        payload["suppressions"] = {
            str(line): sorted(names) for line, names in self.suppressions.items()
        }
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ModuleFacts":
        def _imp(d: dict) -> ImportFact:
            d = dict(d)
            d["names"] = tuple(d.get("names") or ())
            return ImportFact(**d)

        def _pairs(raw) -> Tuple[Tuple[str, int], ...]:
            return tuple((str(n), int(l)) for n, l in raw or ())

        def _sig(d: dict) -> SignalRegistrationFact:
            d = dict(d)
            d["inline_blocking"] = _pairs(d.get("inline_blocking"))
            d["inline_nonreentrant"] = _pairs(d.get("inline_nonreentrant"))
            return SignalRegistrationFact(**d)

        def _fn(d: dict) -> FunctionFact:
            return FunctionFact(
                qualname=d["qualname"],
                lineno=d["lineno"],
                col=d["col"],
                global_rebinds=_pairs(d.get("global_rebinds")),
                mutations=tuple(
                    MutationFact(**m) for m in d.get("mutations") or ()
                ),
                loops=tuple(LoopFact(**l) for l in d.get("loops") or ()),
                process_targets=tuple(
                    TargetFact(**t) for t in d.get("process_targets") or ()
                ),
                signal_registrations=tuple(
                    _sig(s) for s in d.get("signal_registrations") or ()
                ),
                blocking_calls=_pairs(d.get("blocking_calls")),
                nonreentrant_calls=_pairs(d.get("nonreentrant_calls")),
            )

        return cls(
            module=payload["module"],
            path=payload["path"],
            imports=tuple(_imp(d) for d in payload.get("imports") or ()),
            globals=tuple(
                GlobalFact(**d) for d in payload.get("globals") or ()
            ),
            functions=tuple(_fn(d) for d in payload.get("functions") or ()),
            suppressions={
                int(line): list(names)
                for line, names in (payload.get("suppressions") or {}).items()
            },
        )


# ---------------------------------------------------------------------------
# classification helpers
# ---------------------------------------------------------------------------

_MUTABLE_FACTORIES = {
    "list",
    "dict",
    "set",
    "bytearray",
    "defaultdict",
    "deque",
    "Counter",
    "OrderedDict",
}

_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}

_RNG_FACTORIES = {"default_rng", "RandomState", "Generator", "Random"}

_HANDLE_FACTORIES = {"open", "socket", "NamedTemporaryFile", "TemporaryFile"}

#: numpy callables whose result is (practically always) an ndarray;
#: used to infer ndarray-typed local names without type inference.
_NP_ARRAY_FACTORIES = {
    "array",
    "asarray",
    "ascontiguousarray",
    "asfarray",
    "zeros",
    "zeros_like",
    "ones",
    "ones_like",
    "empty",
    "empty_like",
    "full",
    "full_like",
    "arange",
    "linspace",
    "logspace",
    "concatenate",
    "stack",
    "hstack",
    "vstack",
    "where",
    "abs",
    "clip",
    "diff",
    "cumsum",
    "convolve",
    "interp",
    "sort",
    "copy",
    "frombuffer",
    "fromiter",
    "load",
}

#: ndarray methods whose result is again an ndarray.
_ARRAY_PRESERVING_METHODS = {"astype", "copy", "reshape", "ravel", "clip"}

#: executor/pool method names that ship a callable to another process.
_EXECUTOR_METHODS = {
    "submit",
    "map",
    "apply",
    "apply_async",
    "map_async",
    "starmap",
    "starmap_async",
    "imap",
    "imap_unordered",
}

#: Curated call names that can block indefinitely.  A signal handler
#: that blocks can deadlock the very code it interrupted (the
#: interrupted frame may hold the lock/queue the handler waits on).
_BLOCKING_CALLS = {
    "sleep",
    "join",
    "acquire",
    "wait",
    "wait_for",
    "accept",
    "select",
    "recv",
    "recvfrom",
    "sendall",
    "connect",
}

#: Curated call names that are not async-signal-safe: stdio and file
#: I/O take internal locks the interrupted frame may already hold.
_NONREENTRANT_CALLS = {"print", "open", "flush", "write"}

#: Logger method names; flagged when invoked on a logging-ish receiver
#: (the logging module serializes handlers with a module-level lock).
_LOGGING_METHODS = {
    "debug",
    "info",
    "warning",
    "error",
    "critical",
    "exception",
    "log",
}

_MUTATING_METHODS = {
    "append",
    "extend",
    "insert",
    "remove",
    "pop",
    "popitem",
    "clear",
    "update",
    "setdefault",
    "add",
    "discard",
    "appendleft",
    "extendleft",
}


def _call_name(node: ast.AST) -> Optional[str]:
    """Terminal callable name of ``a.b.c(...)`` / ``c(...)``, else None."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _classify_global(value: ast.AST) -> Tuple[str, str]:
    """(kind, detail) for the value bound to a module-level name."""
    if isinstance(
        value,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
    ):
        return "mutable", type(value).__name__.lower()
    callee = _call_name(value)
    if callee is None:
        return "other", ""
    if callee in _MUTABLE_FACTORIES:
        return "mutable", f"{callee}()"
    if callee in _LOCK_FACTORIES:
        return "lock", f"{callee}()"
    if callee in _RNG_FACTORIES:
        return "rng", f"{callee}()"
    if callee in _HANDLE_FACTORIES:
        return "handle", f"{callee}()"
    return "other", f"{callee}()"


def _terminal_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` -> "a"; ``a`` -> "a"; anything else -> None."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _classify_special_call(node: ast.Call) -> Optional[Tuple[str, str]]:
    """("blocking"|"nonreentrant", callee) for curated calls, else None."""
    callee = _call_name(node)
    if callee is None:
        return None
    func = node.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Constant):
        return None  # ", ".join(...) and friends: not the join we mean
    if callee in _BLOCKING_CALLS:
        return ("blocking", callee)
    if callee in _NONREENTRANT_CALLS:
        return ("nonreentrant", callee)
    if callee in _LOGGING_METHODS and isinstance(func, ast.Attribute):
        receiver = (_terminal_name(func.value) or "").lower()
        if "log" in receiver:
            return ("nonreentrant", callee)
    return None


def _lambda_special_calls(
    handler: ast.Lambda,
) -> Tuple[Tuple[Tuple[str, int], ...], Tuple[Tuple[str, int], ...]]:
    """(blocking, nonreentrant) curated calls inside a lambda handler."""
    blocking: List[Tuple[str, int]] = []
    nonreentrant: List[Tuple[str, int]] = []
    for sub in ast.walk(handler):
        if isinstance(sub, ast.Call):
            classified = _classify_special_call(sub)
            if classified is None:
                continue
            kind, callee = classified
            entry = (callee, sub.lineno)
            (blocking if kind == "blocking" else nonreentrant).append(entry)
    return tuple(blocking), tuple(nonreentrant)


# ---------------------------------------------------------------------------
# module name resolution
# ---------------------------------------------------------------------------


def module_name_for(path: "object") -> str:
    """Dotted module name of ``path``, walking up through ``__init__.py``.

    ``src/repro/core/detect.py`` -> ``repro.core.detect``; a standalone
    file outside any package is just its stem.
    """
    from pathlib import Path

    p = Path(path).resolve()
    parts: List[str] = []
    if p.name == "__init__.py":
        parts.append(p.parent.name)
        p = p.parent
    else:
        parts.append(p.stem)
    parent = p.parent
    while (parent / "__init__.py").is_file():
        parts.append(parent.name)
        parent = parent.parent
    return ".".join(reversed(parts))


def _resolve_relative(
    module: str, level: int, target: Optional[str], is_package: bool = False
) -> str:
    """Resolve ``from ..x import y`` against the importing module's name.

    For a plain module, level 1 is its containing package (drop the
    module's own name); for a package ``__init__.py`` the dotted name
    *is* the package, so level 1 resolves against it directly.
    """
    if level <= 0:
        return target or ""
    parts = module.split(".")
    base = parts[: len(parts) - level + (1 if is_package else 0)]
    if target:
        base = base + target.split(".")
    return ".".join(base)


# ---------------------------------------------------------------------------
# extraction
# ---------------------------------------------------------------------------


class _FunctionSummarizer:
    """Walk one function body and summarize its cross-module facts."""

    def __init__(
        self,
        func: ast.AST,
        qualname: str,
        module_globals: Dict[str, GlobalFact],
        lock_names: Set[str],
        np_aliases: Set[str],
    ):
        self.func = func
        self.qualname = qualname
        self.module_globals = module_globals
        self.lock_names = lock_names
        self.np_aliases = np_aliases
        self.global_rebinds: List[Tuple[str, int]] = []
        self.mutations: List[MutationFact] = []
        self.loops: List[LoopFact] = []
        self.targets: List[TargetFact] = []
        self.signal_registrations: List[SignalRegistrationFact] = []
        self.blocking_calls: List[Tuple[str, int]] = []
        self.nonreentrant_calls: List[Tuple[str, int]] = []
        self._declared_global: Set[str] = set()
        self._array_names: Set[str] = set()
        self._nested_funcs: Set[str] = set()

    # -- array-typed name inference ----------------------------------------

    def _is_array_expr(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self._array_names
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and _terminal_name(func) in self.np_aliases
                and func.attr in _NP_ARRAY_FACTORIES
            ):
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _ARRAY_PRESERVING_METHODS
                and self._is_array_expr(func.value)
            ):
                return True
            return False
        if isinstance(node, ast.Subscript):
            # A slice of an array is an array (scalar indexing also
            # matches; for loop-shape purposes that is harmless).
            return self._is_array_expr(node.value)
        if isinstance(node, ast.BinOp):
            return self._is_array_expr(node.left) or self._is_array_expr(
                node.right
            )
        return False

    def _annotation_is_array(self, ann: Optional[ast.AST]) -> bool:
        if ann is None:
            return False
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            return "ndarray" in ann.value
        if isinstance(ann, ast.Name):
            return ann.id == "ndarray"
        if isinstance(ann, ast.Attribute):
            return ann.attr == "ndarray"
        if isinstance(ann, ast.Subscript):  # e.g. Optional[np.ndarray]
            return any(
                self._annotation_is_array(child)
                for child in ast.walk(ann)
                if child is not ann and isinstance(child, (ast.Name, ast.Attribute))
            )
        return False

    def _seed_array_names(self) -> None:
        args = getattr(self.func, "args", None)
        if args is not None:
            for arg in args.posonlyargs + args.args + args.kwonlyargs:
                if self._annotation_is_array(arg.annotation):
                    self._array_names.add(arg.arg)

    # -- the walk -----------------------------------------------------------

    def run(self) -> FunctionFact:
        self._seed_array_names()
        self._walk(list(ast.iter_child_nodes(self.func)), lock_depth=0)
        return FunctionFact(
            qualname=self.qualname,
            lineno=getattr(self.func, "lineno", 1),
            col=getattr(self.func, "col_offset", 0) + 1,
            global_rebinds=tuple(self.global_rebinds),
            mutations=tuple(self.mutations),
            loops=tuple(self.loops),
            process_targets=tuple(self.targets),
            signal_registrations=tuple(self.signal_registrations),
            blocking_calls=tuple(self.blocking_calls),
            nonreentrant_calls=tuple(self.nonreentrant_calls),
        )

    def _walk(self, nodes: Sequence[ast.AST], lock_depth: int) -> None:
        for node in nodes:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._nested_funcs.add(node.name)
                continue  # nested scopes are summarized separately
            if isinstance(node, ast.Lambda):
                continue
            if isinstance(node, ast.Global):
                self._declared_global.update(node.names)
                self._walk(list(ast.iter_child_nodes(node)), lock_depth)
                continue
            if isinstance(node, ast.With):
                held = any(
                    self._is_module_lock(item.context_expr)
                    for item in node.items
                )
                for item in node.items:
                    self._walk([item.context_expr], lock_depth)
                self._walk(node.body, lock_depth + (1 if held else 0))
                continue
            self._visit(node, lock_depth)
            self._walk(list(ast.iter_child_nodes(node)), lock_depth)

    def _is_module_lock(self, expr: ast.AST) -> bool:
        if isinstance(expr, ast.Call):  # `with lock.acquire_timeout():` etc.
            expr = expr.func
        name = _terminal_name(expr)
        return name is not None and name in self.lock_names

    def _visit(self, node: ast.AST, lock_depth: int) -> None:
        locked = lock_depth > 0
        if isinstance(node, ast.Assign):
            for target in node.targets:
                self._note_bind(target, node.value, node, locked)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            self._note_bind(node.target, node.value, node, locked)
        elif isinstance(node, ast.AugAssign):
            self._note_mutation_target(node.target, node, "augassign", locked)
            if isinstance(node.target, ast.Name) and self._is_array_expr(
                node.value
            ):
                self._array_names.add(node.target.id)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                self._note_mutation_target(target, node, "subscript", locked)
        elif isinstance(node, ast.For):
            self.loops.append(self._loop_fact(node))
        elif isinstance(node, ast.While):
            self.loops.append(self._while_fact(node))
        elif isinstance(node, ast.Call):
            self._note_mutating_call(node, locked)
            self._note_process_target(node)
            self._note_signal_registration(node)
            self._note_special_call(node)

    def _note_bind(
        self, target: ast.AST, value: ast.AST, stmt: ast.AST, locked: bool
    ) -> None:
        if isinstance(target, ast.Name):
            if self._is_array_expr(value):
                self._array_names.add(target.id)
            if (
                target.id in self._declared_global
                and target.id in self.module_globals
            ):
                self.global_rebinds.append((target.id, stmt.lineno))
                self.mutations.append(
                    MutationFact(
                        name=target.id,
                        lineno=stmt.lineno,
                        col=getattr(stmt, "col_offset", 0) + 1,
                        how="rebind",
                        locked=locked,
                    )
                )
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            how = "subscript" if isinstance(target, ast.Subscript) else "attr"
            self._note_mutation_target(target, stmt, how, locked)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._note_bind(element, value, stmt, locked)

    def _note_mutation_target(
        self, target: ast.AST, stmt: ast.AST, how: str, locked: bool
    ) -> None:
        if not isinstance(target, (ast.Subscript, ast.Attribute)):
            return
        base = _terminal_name(target.value)
        if base is None or base not in self.module_globals:
            return
        # Subscript/attribute stores hit the module object whether or
        # not `global` was declared (no rebinding involved).
        self.mutations.append(
            MutationFact(
                name=base,
                lineno=stmt.lineno,
                col=getattr(stmt, "col_offset", 0) + 1,
                how=how,
                locked=locked,
            )
        )

    def _note_mutating_call(self, node: ast.Call, locked: bool) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in _MUTATING_METHODS:
            return
        base = _terminal_name(func.value)
        if base is None or base not in self.module_globals:
            return
        self.mutations.append(
            MutationFact(
                name=base,
                lineno=node.lineno,
                col=node.col_offset + 1,
                how=f"call:{func.attr}",
                locked=locked,
            )
        )

    # -- signal handlers and special calls ----------------------------------

    def _note_signal_registration(self, node: ast.Call) -> None:
        # `signal.signal(SIG, handler)` or bare `signal(SIG, handler)`
        # (from `from signal import signal`); 2+ args, second is the
        # handler.  SIG_IGN/SIG_DFL dispositions are not handlers.
        func = node.func
        is_signal_call = (
            isinstance(func, ast.Attribute)
            and func.attr == "signal"
            and _terminal_name(func.value) == "signal"
        ) or (isinstance(func, ast.Name) and func.id == "signal")
        if not is_signal_call or len(node.args) < 2:
            return
        handler = node.args[1]
        if (
            isinstance(handler, ast.Attribute)
            and handler.attr in ("SIG_IGN", "SIG_DFL")
        ):
            return
        sig = node.args[0]
        if isinstance(sig, ast.Attribute):
            signal_name = sig.attr
        elif isinstance(sig, ast.Name):
            signal_name = sig.id
        else:
            signal_name = "?"
        inline_blocking: Tuple[Tuple[str, int], ...] = ()
        inline_nonreentrant: Tuple[Tuple[str, int], ...] = ()
        if isinstance(handler, ast.Lambda):
            kind, name = "lambda", "lambda"
            inline_blocking, inline_nonreentrant = _lambda_special_calls(
                handler
            )
        elif isinstance(handler, ast.Name):
            kind, name = "name", handler.id
        elif isinstance(handler, ast.Attribute):
            kind, name = "attribute", handler.attr
        else:
            kind, name = "other", "?"
        self.signal_registrations.append(
            SignalRegistrationFact(
                lineno=node.lineno,
                col=node.col_offset + 1,
                signal_name=signal_name,
                handler=name,
                handler_kind=kind,
                inline_blocking=inline_blocking,
                inline_nonreentrant=inline_nonreentrant,
            )
        )

    def _note_special_call(self, node: ast.Call) -> None:
        classified = _classify_special_call(node)
        if classified is None:
            return
        kind, callee = classified
        entry = (callee, node.lineno)
        if kind == "blocking":
            self.blocking_calls.append(entry)
        else:
            self.nonreentrant_calls.append(entry)

    # -- multiprocessing targets -------------------------------------------

    def _suspicious_callable(self, node: ast.AST) -> Optional[Tuple[str, str]]:
        if isinstance(node, ast.Lambda):
            return ("lambda", "lambda")
        if isinstance(node, ast.Name) and node.id in self._nested_funcs:
            return ("nested-function", node.id)
        return None

    def _note_process_target(self, node: ast.Call) -> None:
        func = node.func
        api: Optional[str] = None
        candidate: Optional[ast.AST] = None
        callee = _call_name(node)
        if callee == "Process":
            for kw in node.keywords:
                if kw.arg == "target":
                    api = "Process(target=...)"
                    candidate = kw.value
        elif (
            isinstance(func, ast.Attribute)
            and func.attr in _EXECUTOR_METHODS
        ):
            receiver = _terminal_name(func.value) or ""
            if any(token in receiver.lower() for token in ("pool", "executor")):
                api = f"{receiver}.{func.attr}"
                candidate = node.args[0] if node.args else None
        if api is None or candidate is None:
            return
        problem = self._suspicious_callable(candidate)
        if problem is not None:
            self.targets.append(
                TargetFact(
                    lineno=node.lineno,
                    col=node.col_offset + 1,
                    api=api,
                    problem=problem[0],
                    target_desc=problem[1],
                )
            )

    # -- loop shapes ---------------------------------------------------------

    def _body_subscripts_array(self, body: Sequence[ast.stmt]) -> bool:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Subscript) and self._is_array_expr(
                    node.value
                ):
                    return True
        return False

    def _loop_fact(self, node: ast.For) -> LoopFact:
        iterates = "other"
        array_name = ""
        it = node.iter
        if self._is_array_expr(it):
            iterates = "array"
            array_name = _terminal_name(it) or ""
        elif isinstance(it, ast.Call):
            callee = _call_name(it)
            if callee == "range":
                iterates = "range"
                if it.args:
                    inner = it.args[0]
                    if (
                        isinstance(inner, ast.Call)
                        and _call_name(inner) == "len"
                        and inner.args
                        and self._is_array_expr(inner.args[0])
                    ):
                        iterates = "range_len_array"
                        array_name = _terminal_name(inner.args[0]) or ""
            elif callee == "enumerate" and it.args and self._is_array_expr(
                it.args[0]
            ):
                iterates = "enumerate_array"
                array_name = _terminal_name(it.args[0]) or ""
        return LoopFact(
            lineno=node.lineno,
            col=node.col_offset + 1,
            kind="for",
            iterates=iterates,
            array_name=array_name,
            subscripts_array=self._body_subscripts_array(node.body),
            body_statements=len(node.body),
        )

    def _while_fact(self, node: ast.While) -> LoopFact:
        return LoopFact(
            lineno=node.lineno,
            col=node.col_offset + 1,
            kind="while",
            iterates="other",
            subscripts_array=self._body_subscripts_array(node.body),
            body_statements=len(node.body),
        )


def _numpy_aliases(tree: ast.Module) -> Set[str]:
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy" or alias.name.startswith("numpy."):
                    aliases.add(alias.asname or alias.name.split(".")[0])
    return aliases


def _iter_functions(
    tree: ast.Module,
) -> Iterator[Tuple[str, ast.AST]]:
    """(qualname, node) for every function/method, including nested."""

    def walk(nodes: Sequence[ast.AST], prefix: str) -> Iterator[Tuple[str, ast.AST]]:
        for node in nodes:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{node.name}"
                yield qual, node
                yield from walk(node.body, f"{qual}.")
            elif isinstance(node, ast.ClassDef):
                yield from walk(node.body, f"{prefix}{node.name}.")

    yield from walk(tree.body, "")


def extract_facts(
    tree: ast.Module,
    module: str,
    path: str,
    suppressions: Optional[Dict[int, Set[str]]] = None,
    is_package: bool = False,
) -> ModuleFacts:
    """Summarize one parsed module into :class:`ModuleFacts`.

    ``is_package`` marks a package ``__init__.py`` so relative imports
    resolve against the package itself rather than its parent.
    """
    imports: List[ImportFact] = []

    # Which import statements execute at module scope: walk the module
    # body without descending into function bodies (class bodies *do*
    # execute at import time).
    module_scope_imports: Set[int] = set()
    stack: List[ast.AST] = list(tree.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            module_scope_imports.add(id(node))
        stack.extend(ast.iter_child_nodes(node))

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports.append(
                    ImportFact(
                        target=alias.name,
                        names=(),
                        lineno=node.lineno,
                        col=node.col_offset + 1,
                        module_level=id(node) in module_scope_imports,
                    )
                )
        elif isinstance(node, ast.ImportFrom):
            target = _resolve_relative(module, node.level, node.module, is_package)
            imports.append(
                ImportFact(
                    target=target,
                    names=tuple(alias.name for alias in node.names),
                    lineno=node.lineno,
                    col=node.col_offset + 1,
                    module_level=id(node) in module_scope_imports,
                )
            )

    # Module-level bindings (module body only, not class/function bodies).
    globals_out: List[GlobalFact] = []
    for stmt in tree.body:
        targets: List[ast.AST] = []
        value: Optional[ast.AST] = None
        if isinstance(stmt, ast.Assign):
            targets, value = list(stmt.targets), stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        kind, detail = _classify_global(value)
        for target in targets:
            if isinstance(target, ast.Name):
                globals_out.append(
                    GlobalFact(
                        name=target.id,
                        lineno=stmt.lineno,
                        col=stmt.col_offset + 1,
                        kind=kind,
                        detail=detail,
                    )
                )

    global_map = {g.name: g for g in globals_out}
    lock_names = {g.name for g in globals_out if g.kind == "lock"}
    np_aliases = _numpy_aliases(tree)

    functions: List[FunctionFact] = []
    for qualname, node in _iter_functions(tree):
        summarizer = _FunctionSummarizer(
            node, qualname, global_map, lock_names, np_aliases
        )
        functions.append(summarizer.run())

    return ModuleFacts(
        module=module,
        path=path,
        imports=tuple(imports),
        globals=tuple(globals_out),
        functions=tuple(functions),
        suppressions={
            line: sorted(names)
            for line, names in (suppressions or {}).items()
        },
    )
