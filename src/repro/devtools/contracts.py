"""Runtime contracts for the EMPROF event pipeline.

The static pass (:mod:`repro.devtools.lint`) catches unit mix-ups and
nondeterminism at review time; this module catches *value* invariant
violations at run time, at the pipeline's trust boundaries:

* every stall satisfies ``begin <= end`` in both samples and cycles;
* a stall sequence is monotonically non-decreasing in ``begin_cycle``
  (time order is what attribution and the timeline plots rely on);
* normalized magnitude lies in [0, 1].

The checks are cheap (O(n) numpy reductions, O(k) per stall batch) and
enabled by default; set ``EMPROF_CONTRACTS=0`` in the environment or
call :func:`set_contracts_enabled` to turn them off for production
throughput runs.  Violations raise :class:`ContractViolation`, an
``AssertionError`` subclass, so they read as what they are: internal
invariant failures, not user input errors.

The module deliberately imports nothing from :mod:`repro.core` (it
duck-types stall objects) so that core modules can apply the
decorators without an import cycle.
"""

from __future__ import annotations

import functools
import math
import os
from typing import Any, Callable, Iterable, Optional, Sequence, TypeVar

import numpy as np

_ENV_FLAG = "EMPROF_CONTRACTS"

_enabled = os.environ.get(_ENV_FLAG, "1").strip().lower() not in (
    "0",
    "false",
    "off",
    "no",
)

F = TypeVar("F", bound=Callable[..., Any])


class ContractViolation(AssertionError):
    """An internal pipeline invariant does not hold."""


def contracts_enabled() -> bool:
    """Whether runtime contracts are currently active."""
    return _enabled


def set_contracts_enabled(enabled: bool) -> bool:
    """Enable/disable contracts; returns the previous setting."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


# ---------------------------------------------------------------------------
# check functions
# ---------------------------------------------------------------------------


def check_stall(stall: Any, where: str = "stall") -> Any:
    """Assert one stall event is well-formed; returns the stall."""
    begin_sample = stall.begin_sample
    end_sample = stall.end_sample
    begin_cycle = stall.begin_cycle
    end_cycle = stall.end_cycle
    for label, value in (
        ("begin_sample", begin_sample),
        ("end_sample", end_sample),
        ("begin_cycle", begin_cycle),
        ("end_cycle", end_cycle),
        ("min_level", stall.min_level),
    ):
        if not math.isfinite(value):
            raise ContractViolation(f"{where}: {label} is not finite ({value!r})")
    if begin_sample > end_sample:
        raise ContractViolation(
            f"{where}: begin_sample {begin_sample} > end_sample {end_sample}"
        )
    if begin_cycle > end_cycle:
        raise ContractViolation(
            f"{where}: begin_cycle {begin_cycle} > end_cycle {end_cycle}"
        )
    return stall


def check_stall_sequence(
    stalls: Sequence[Any],
    min_begin_cycle: float = -math.inf,
    where: str = "stall sequence",
) -> Sequence[Any]:
    """Assert each stall is well-formed and time order is non-decreasing."""
    previous = min_begin_cycle
    for index, stall in enumerate(stalls):
        check_stall(stall, where=f"{where}[{index}]")
        if stall.begin_cycle < previous:
            raise ContractViolation(
                f"{where}[{index}]: begin_cycle {stall.begin_cycle} precedes "
                f"{previous}; stalls must be monotonically non-decreasing"
            )
        previous = stall.begin_cycle
    return stalls


def check_unit_interval(
    values: np.ndarray, what: str = "normalized magnitude"
) -> np.ndarray:
    """Assert every value lies in [0, 1] (and is finite)."""
    arr = np.asarray(values)
    if arr.size == 0:
        return values
    if not np.all(np.isfinite(arr)):
        raise ContractViolation(f"{what} contains non-finite values")
    low = float(arr.min())
    high = float(arr.max())
    if low < 0.0 or high > 1.0:
        raise ContractViolation(
            f"{what} outside [0, 1]: observed range [{low}, {high}]"
        )
    return values


def check_report(report: Any, where: str = "profile report") -> Any:
    """Assert a :class:`ProfileReport`-shaped object is internally consistent."""
    if report.total_cycles < 0:
        raise ContractViolation(f"{where}: negative total_cycles")
    if report.clock_hz <= 0:
        raise ContractViolation(f"{where}: clock_hz must be positive")
    if report.sample_period_cycles <= 0:
        raise ContractViolation(f"{where}: sample_period_cycles must be positive")
    check_stall_sequence(report.stalls, where=f"{where}.stalls")
    return report


# ---------------------------------------------------------------------------
# decorators
# ---------------------------------------------------------------------------


def stall_sequence_result(func: F) -> F:
    """The decorated callable returns a time-ordered stall sequence."""

    @functools.wraps(func)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        result = func(*args, **kwargs)
        if _enabled:
            check_stall_sequence(result, where=func.__qualname__)
        return result

    return wrapper  # type: ignore[return-value]


def monotonic_stall_stream(method: F) -> F:
    """Method contract: stalls emitted across *all* calls stay in order.

    For streaming detectors, each call returns the stalls finalized by
    that call; the contract threads a per-instance high-water mark so
    ordering is enforced across the whole stream, not just per batch.
    """

    @functools.wraps(method)
    def wrapper(self: Any, *args: Any, **kwargs: Any) -> Any:
        result = method(self, *args, **kwargs)
        if _enabled:
            previous = getattr(self, "_contract_prev_begin_cycle", -math.inf)
            check_stall_sequence(
                result,
                min_begin_cycle=previous,
                where=method.__qualname__,
            )
            if result:
                self._contract_prev_begin_cycle = result[-1].begin_cycle
        return result

    return wrapper  # type: ignore[return-value]


def unit_interval_result(func: F) -> F:
    """The decorated callable returns values in [0, 1]."""

    @functools.wraps(func)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        result = func(*args, **kwargs)
        if _enabled:
            check_unit_interval(result, what=f"{func.__qualname__} output")
        return result

    return wrapper  # type: ignore[return-value]


def report_result(func: F) -> F:
    """The decorated callable returns a consistent profile report."""

    @functools.wraps(func)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        result = func(*args, **kwargs)
        if _enabled:
            check_report(result, where=f"{func.__qualname__} result")
        return result

    return wrapper  # type: ignore[return-value]
