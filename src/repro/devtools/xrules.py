"""Phase 2 of the whole-program analyzer: cross-module rules.

Where :mod:`repro.devtools.rules` checks one file's AST, the rules
here run over the project-wide fact base (:class:`ProgramFacts`):
the import graph, the layer map, and every module's extracted facts.
Three families ship:

**Architecture layering** (``layering``, ``import-cycle``) — the
declarative layer map (``pyproject.toml`` ``[tool.emlint]``) says
which layers may import which; violations and module-level import
cycles are findings.  ``obs`` additionally stays stdlib-only at
import time.

**Concurrency safety** (``shared-mutable-state``, ``fork-unsafety``,
``unpicklable-target``, ``signal-handler``) — module-level mutable
state mutated from function bodies without a module-level lock held,
RNG instances and file/socket handles captured at import time
(fork-hostile: every worker inherits the same stream/descriptor),
callables handed to ``multiprocessing``/executor APIs that cannot
survive pickling (lambdas, nested functions), and signal handlers
that block or do non-reentrant work (a handler runs *inside* an
arbitrary interrupted frame; the only safe body sets a flag).  These
clear the runway for the multi-worker campaign service and its
SIGTERM-drained daemon.

**Hot-loop vectorization** (``hot-loop``) — per-sample Python loops
over ndarray-typed values inside modules tagged *hot* in the layer
config; the findings list is the vectorization worklist for the
single chunked engine refactor.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Set, Tuple, Type

from .engine import Finding
from .facts import ModuleFacts
from .graph import (
    LayerConfig,
    build_import_graph,
    find_cycles,
    resolve_import_edges,
)

_STDLIB = set(getattr(sys, "stdlib_module_names", ()))
_STDLIB.add("__future__")


@dataclass
class ProgramFacts:
    """The whole-program fact base handed to every cross rule."""

    modules: Dict[str, ModuleFacts] = field(default_factory=dict)
    layers: LayerConfig = field(default_factory=LayerConfig)
    graph: Dict[str, Set[str]] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        modules: Mapping[str, ModuleFacts],
        layers: Optional[LayerConfig] = None,
    ) -> "ProgramFacts":
        layer_config = layers if layers is not None else LayerConfig()
        return cls(
            modules=dict(modules),
            layers=layer_config,
            graph=build_import_graph(modules),
        )


class CrossRule:
    """Base class for whole-program rules.

    Same contract as :class:`repro.devtools.engine.Rule`, but
    :meth:`check` sees the full :class:`ProgramFacts` instead of one
    file.  Findings are anchored at real file/line locations so inline
    ``# emlint: disable=`` suppressions keep working.
    """

    name: str = ""
    description: str = ""

    def check(self, program: ProgramFacts) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, path: str, lineno: int, col: int, message: str
    ) -> Finding:
        return Finding(
            path=path, line=lineno, col=col, rule=self.name, message=message
        )


# ---------------------------------------------------------------------------
# architecture layering
# ---------------------------------------------------------------------------


class LayeringRule(CrossRule):
    name = "layering"
    description = (
        "cross-layer import forbidden by the layer map, or a non-stdlib "
        "import-time dependency in a stdlib-only layer"
    )

    def check(self, program: ProgramFacts) -> Iterator[Finding]:
        layers = program.layers
        known = set(program.modules)
        for module in sorted(program.modules):
            facts = program.modules[module]
            source_layer = layers.layer_of(module)
            if source_layer is None:
                continue
            banned = set(layers.forbidden.get(source_layer, ()))
            stdlib_only = source_layer in layers.stdlib_only
            for imp in facts.imports:
                if not imp.module_level:
                    continue  # deferred imports are the sanctioned escape
                edges = resolve_import_edges(imp, known)
                for edge in edges:
                    target_layer = layers.layer_of(edge)
                    if target_layer in banned:
                        yield self.finding(
                            facts.path,
                            imp.lineno,
                            imp.col,
                            f"layer '{source_layer}' ({module}) must not "
                            f"import layer '{target_layer}' ({edge})",
                        )
                if stdlib_only:
                    yield from self._check_stdlib_only(
                        facts, imp, edges, source_layer, layers
                    )

    def _check_stdlib_only(
        self,
        facts: ModuleFacts,
        imp,
        edges: Sequence[str],
        source_layer: str,
        layers: LayerConfig,
    ) -> Iterator[Finding]:
        if edges:
            # A project-internal import: fine as long as the target
            # layer is itself stdlib-only (obs importing obs).
            for edge in edges:
                target_layer = layers.layer_of(edge)
                if target_layer not in layers.stdlib_only:
                    yield self.finding(
                        facts.path,
                        imp.lineno,
                        imp.col,
                        f"stdlib-only layer '{source_layer}' imports "
                        f"'{edge}' (layer '{target_layer}') at module "
                        f"level; defer it into the function that needs it",
                    )
            return
        top = imp.target.split(".")[0] if imp.target else ""
        if top and top not in _STDLIB:
            yield self.finding(
                facts.path,
                imp.lineno,
                imp.col,
                f"stdlib-only layer '{source_layer}' imports third-party "
                f"module '{top}' at import time; defer or drop it",
            )


class ImportCycleRule(CrossRule):
    name = "import-cycle"
    description = "module-level import cycle between project modules"

    def check(self, program: ProgramFacts) -> Iterator[Finding]:
        for cycle in find_cycles(program.graph):
            anchor = program.modules[cycle[0]]
            lineno, col = 1, 1
            next_in_cycle = set(cycle)
            for imp in anchor.imports:
                if imp.module_level and any(
                    edge in next_in_cycle
                    for edge in resolve_import_edges(imp, set(program.modules))
                ):
                    lineno, col = imp.lineno, imp.col
                    break
            yield self.finding(
                anchor.path,
                lineno,
                col,
                "import cycle: " + " -> ".join(cycle + [cycle[0]]),
            )


# ---------------------------------------------------------------------------
# concurrency safety
# ---------------------------------------------------------------------------

_CACHE_TOKENS = ("cache", "memo", "registry")


def _looks_like_cache(name: str) -> bool:
    lowered = name.lower()
    return any(token in lowered for token in _CACHE_TOKENS)


class SharedMutableStateRule(CrossRule):
    name = "shared-mutable-state"
    description = (
        "module-level mutable state mutated from function bodies without "
        "a module-level lock held (unsafe under threads and fork workers)"
    )

    def check(self, program: ProgramFacts) -> Iterator[Finding]:
        for module in sorted(program.modules):
            facts = program.modules[module]
            global_kinds = {g.name: g.kind for g in facts.globals}
            flagged: Set[Tuple[str, int]] = set()
            for function in facts.functions:
                for mutation in function.mutations:
                    if mutation.locked:
                        continue
                    kind = global_kinds.get(mutation.name)
                    if kind == "lock":
                        continue
                    if mutation.how == "rebind":
                        what = (
                            f"'{function.qualname}' rebinds module-level "
                            f"name '{mutation.name}' via 'global'"
                        )
                    elif kind != "mutable":
                        continue
                    elif _looks_like_cache(mutation.name):
                        what = (
                            f"'{function.qualname}' mutates module-level "
                            f"cache '{mutation.name}' ({mutation.how}) "
                            f"without a lock; a non-reentrant cache races "
                            f"under threads"
                        )
                    else:
                        what = (
                            f"'{function.qualname}' mutates module-level "
                            f"state '{mutation.name}' ({mutation.how}) "
                            f"without a lock"
                        )
                    key = (mutation.name, mutation.lineno)
                    if key in flagged:
                        continue
                    flagged.add(key)
                    yield self.finding(
                        facts.path, mutation.lineno, mutation.col, what
                    )


class ForkUnsafetyRule(CrossRule):
    name = "fork-unsafety"
    description = (
        "RNG instance or file/socket handle captured at import time; "
        "forked workers inherit the same stream/descriptor"
    )

    def check(self, program: ProgramFacts) -> Iterator[Finding]:
        for module in sorted(program.modules):
            facts = program.modules[module]
            for g in facts.globals:
                if g.kind == "rng":
                    yield self.finding(
                        facts.path,
                        g.lineno,
                        g.col,
                        f"module-level RNG '{g.name}' = {g.detail} is "
                        f"captured at import time; every forked worker "
                        f"inherits the same stream — construct per "
                        f"worker/run instead",
                    )
                elif g.kind == "handle":
                    yield self.finding(
                        facts.path,
                        g.lineno,
                        g.col,
                        f"module-level handle '{g.name}' = {g.detail} is "
                        f"opened at import time; forked workers share the "
                        f"descriptor and its offset — open lazily instead",
                    )


class UnpicklableTargetRule(CrossRule):
    name = "unpicklable-target"
    description = (
        "lambda or nested function handed to a multiprocessing/executor "
        "API; such targets cannot be pickled to worker processes"
    )

    def check(self, program: ProgramFacts) -> Iterator[Finding]:
        for module in sorted(program.modules):
            facts = program.modules[module]
            for function in facts.functions:
                for target in function.process_targets:
                    yield self.finding(
                        facts.path,
                        target.lineno,
                        target.col,
                        f"'{function.qualname}' passes a {target.problem} "
                        f"('{target.target_desc}') to {target.api}; it "
                        f"cannot be pickled to a worker process — use a "
                        f"module-level function",
                    )


class SignalHandlerRule(CrossRule):
    name = "signal-handler"
    description = (
        "signal handler blocks or does non-reentrant work; a handler "
        "interrupts an arbitrary frame, so it must only set a flag"
    )

    def check(self, program: ProgramFacts) -> Iterator[Finding]:
        for module in sorted(program.modules):
            facts = program.modules[module]
            functions = list(facts.functions)
            for function in functions:
                for reg in function.signal_registrations:
                    yield from self._check_registration(
                        facts, functions, function, reg
                    )

    def _check_registration(self, facts, functions, registrar, reg):
        where = f"{reg.signal_name} handler"
        if reg.handler_kind == "lambda":
            for callee, lineno in reg.inline_blocking:
                yield self.finding(
                    facts.path,
                    lineno,
                    1,
                    f"inline lambda {where} (registered in "
                    f"'{registrar.qualname}') calls blocking '{callee}'; "
                    f"it can deadlock the interrupted frame — set a "
                    f"flag/Event and act on it from normal code",
                )
            for callee, lineno in reg.inline_nonreentrant:
                yield self.finding(
                    facts.path,
                    lineno,
                    1,
                    f"inline lambda {where} (registered in "
                    f"'{registrar.qualname}') calls non-reentrant "
                    f"'{callee}'; I/O and logging take locks the "
                    f"interrupted frame may hold — set a flag instead",
                )
            return
        if reg.handler_kind not in ("name", "attribute"):
            return
        # Resolve the handler within the same module: an exact
        # qualname match, or a method whose terminal name matches
        # (`self._on_signal` -> `CampaignService._on_signal`).
        handlers = [
            f
            for f in functions
            if f.qualname == reg.handler
            or f.qualname.endswith("." + reg.handler)
        ]
        for handler in handlers:
            for callee, lineno in handler.blocking_calls:
                yield self.finding(
                    facts.path,
                    lineno,
                    1,
                    f"'{handler.qualname}' is a {where} (registered at "
                    f"line {reg.lineno}) but calls blocking '{callee}'; "
                    f"it can deadlock the interrupted frame — set a "
                    f"flag/Event and act on it from normal code",
                )
            for callee, lineno in handler.nonreentrant_calls:
                yield self.finding(
                    facts.path,
                    lineno,
                    1,
                    f"'{handler.qualname}' is a {where} (registered at "
                    f"line {reg.lineno}) but calls non-reentrant "
                    f"'{callee}'; I/O and logging take locks the "
                    f"interrupted frame may hold — set a flag instead",
                )


# ---------------------------------------------------------------------------
# hot-loop vectorization
# ---------------------------------------------------------------------------


class HotLoopRule(CrossRule):
    name = "hot-loop"
    description = (
        "per-sample Python loop over an ndarray in a hot module; "
        "vectorize or move to the chunked engine"
    )

    def check(self, program: ProgramFacts) -> Iterator[Finding]:
        for module in sorted(program.modules):
            if not program.layers.is_hot(module):
                continue
            facts = program.modules[module]
            for function in facts.functions:
                for loop in function.loops:
                    message = self._diagnose(function.qualname, loop)
                    if message is not None:
                        yield self.finding(
                            facts.path, loop.lineno, loop.col, message
                        )

    @staticmethod
    def _diagnose(qualname: str, loop) -> Optional[str]:
        array = (
            f"ndarray '{loop.array_name}'" if loop.array_name else "an ndarray"
        )
        if loop.kind == "for" and loop.iterates == "array":
            return (
                f"'{qualname}' iterates {array} element-by-element; "
                f"vectorize the body or process in chunks"
            )
        if loop.kind == "for" and loop.iterates in (
            "range_len_array",
            "enumerate_array",
        ):
            return (
                f"'{qualname}' indexes {array} one "
                f"sample at a time ({loop.iterates.replace('_', ' ')}); "
                f"vectorize with numpy primitives"
            )
        if loop.kind == "for" and loop.iterates == "range" and loop.subscripts_array:
            return (
                f"'{qualname}' runs a counted loop whose body subscripts "
                f"an ndarray per iteration; vectorize with numpy "
                f"primitives"
            )
        if loop.kind == "while" and loop.subscripts_array:
            return (
                f"'{qualname}' scans an ndarray with a while-loop; "
                f"replace with vectorized run-length/boundary detection"
            )
        return None


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

ALL_CROSS_RULES: Tuple[Type[CrossRule], ...] = (
    LayeringRule,
    ImportCycleRule,
    SharedMutableStateRule,
    ForkUnsafetyRule,
    UnpicklableTargetRule,
    SignalHandlerRule,
    HotLoopRule,
)


def cross_rule_names() -> List[str]:
    return [cls.name for cls in ALL_CROSS_RULES]


def cross_rules_by_name(names: Sequence[str]) -> List[CrossRule]:
    """Instantiate the cross rules named; unknown names raise KeyError."""
    registry = {cls.name: cls for cls in ALL_CROSS_RULES}
    out: List[CrossRule] = []
    for name in names:
        if name not in registry:
            raise KeyError(name)
        out.append(registry[name]())
    return out
