"""emlint command line: ``python -m repro.devtools.lint [paths...]``.

Exit codes: 0 clean, 1 findings reported, 2 usage error.  Also
installed as the ``repro-lint`` console script.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .engine import LintResult, lint_paths
from .reporters import render_json, render_text
from .rules import ALL_RULES, rule_names, rules_by_name


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "emlint: domain-specific static analysis for the EMPROF "
            "reproduction (unit safety, determinism, config "
            "immutability, float equality, mutable defaults)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="NAME[,NAME...]",
        help="comma-separated subset of rules to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for cls in ALL_RULES:
            print(f"{cls.name}: {cls.description}")
        return 0

    rules = None
    if args.rules is not None:
        names: List[str] = [n.strip() for n in args.rules.split(",") if n.strip()]
        if not names:
            print("repro-lint: --rules must name at least one rule", file=sys.stderr)
            return 2
        try:
            rules = rules_by_name(names)
        except KeyError as exc:
            known = ", ".join(rule_names())
            print(
                f"repro-lint: unknown rule {exc.args[0]!r} (known: {known})",
                file=sys.stderr,
            )
            return 2

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        for path in missing:
            print(f"repro-lint: path does not exist: {path}", file=sys.stderr)
        return 2

    result: LintResult = lint_paths(args.paths, rules=rules)
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
    return 1 if result.findings else 0


if __name__ == "__main__":
    sys.exit(main())
