"""emlint command line: ``python -m repro.devtools.lint [paths...]``.

Runs the two-phase whole-program analyzer: per-file rules plus the
cross-module rule families (layering, concurrency safety, hot loops),
with incremental content-hash caching.  Exit codes: 0 clean, 1
findings reported, 2 usage error (unknown rule names, missing paths,
broken baseline/config — always a diagnostic on stderr, never a
traceback).  Also installed as the ``repro-lint`` console script.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .baseline import Baseline, write_baseline
from .engine import LintResult, Rule, analyze_paths
from .graph import load_layer_config
from .reporters import render_json, render_sarif, render_text
from .rules import ALL_RULES, rules_by_name
from .xrules import ALL_CROSS_RULES, CrossRule, cross_rules_by_name

#: default incremental cache location, relative to the invocation cwd.
DEFAULT_CACHE_PATH = ".emlint_cache.json"


def all_rule_names() -> List[str]:
    """Every registered rule id: per-file rules then cross rules."""
    return [cls.name for cls in ALL_RULES] + [
        cls.name for cls in ALL_CROSS_RULES
    ]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "emlint: whole-program static analysis for the EMPROF "
            "reproduction — per-file domain invariants (unit safety, "
            "determinism, config immutability, ...) plus cross-module "
            "rules (architecture layering, concurrency safety, hot-loop "
            "vectorization)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="NAME[,NAME...]",
        help="comma-separated subset of rules to run (default: all; "
        "see --list-rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit (honors --rules)",
    )
    parser.add_argument(
        "--no-cross",
        action="store_true",
        help="skip the cross-module phase (per-file rules only)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="adopt-now baseline file; matching findings are suppressed "
        "and stale entries reported",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="write the current findings to FILE as a baseline and exit 0 "
        "(carries justifications over from --baseline when given)",
    )
    parser.add_argument(
        "--cache",
        default=DEFAULT_CACHE_PATH,
        metavar="FILE",
        help=f"incremental fact cache (default: {DEFAULT_CACHE_PATH})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental cache (cold run)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="extraction worker threads (default: min(8, cpu count))",
    )
    parser.add_argument(
        "--config",
        default=None,
        metavar="PYPROJECT",
        help="pyproject.toml holding the [tool.emlint] layer map "
        "(default: ./pyproject.toml, falling back to the built-in map)",
    )
    return parser


def _split_rule_names(raw: str) -> List[str]:
    return [name.strip() for name in raw.split(",") if name.strip()]


def _select_rules(
    names: Optional[List[str]],
) -> "tuple[List[Rule], List[CrossRule]]":
    """Instantiate (per-file, cross) rules for ``names`` (None = all).

    Raises:
        KeyError: a name matches no registered rule.
    """
    if names is None:
        return [cls() for cls in ALL_RULES], [cls() for cls in ALL_CROSS_RULES]
    per_file_known = {cls.name for cls in ALL_RULES}
    cross_known = {cls.name for cls in ALL_CROSS_RULES}
    for name in names:
        if name not in per_file_known and name not in cross_known:
            raise KeyError(name)
    per_file = rules_by_name([n for n in names if n in per_file_known])
    cross = cross_rules_by_name([n for n in names if n in cross_known])
    return per_file, cross


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    # Validate --rules *before* honoring --list-rules: `--list-rules
    # --rules no-such-rule` is a usage error (exit 2), not a listing.
    names: Optional[List[str]] = None
    if args.rules is not None:
        names = _split_rule_names(args.rules)
        if not names:
            print(
                "repro-lint: --rules must name at least one rule",
                file=sys.stderr,
            )
            return 2
    try:
        rules, cross_rules = _select_rules(names)
    except KeyError as exc:
        known = ", ".join(all_rule_names())
        print(
            f"repro-lint: unknown rule {exc.args[0]!r} (known: {known})",
            file=sys.stderr,
        )
        return 2

    if args.list_rules:
        for rule in [*rules, *cross_rules]:
            scope = "cross-module" if isinstance(rule, CrossRule) else "per-file"
            print(f"{rule.name} [{scope}]: {rule.description}")
        return 0

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        for path in missing:
            print(f"repro-lint: path does not exist: {path}", file=sys.stderr)
        return 2

    if args.jobs is not None and args.jobs < 1:
        print("repro-lint: --jobs must be >= 1", file=sys.stderr)
        return 2

    try:
        layers = load_layer_config(
            Path(args.config) if args.config is not None else None
        )
    except ValueError as exc:
        print(f"repro-lint: bad layer config: {exc}", file=sys.stderr)
        return 2

    baseline = None
    if args.baseline is not None:
        try:
            baseline = Baseline.load(args.baseline)
        except ValueError as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return 2

    cache_path = None if args.no_cache else Path(args.cache)
    if args.no_cross:
        cross_rules = []

    result: LintResult = analyze_paths(
        [Path(p) for p in args.paths],
        rules=rules,
        cross_rules=cross_rules,
        layers=layers,
        cache_path=cache_path,
        jobs=args.jobs,
        baseline=None if args.write_baseline else baseline,
    )

    if args.write_baseline is not None:
        written = write_baseline(
            args.write_baseline, result.findings, previous=baseline
        )
        print(
            f"repro-lint: wrote {len(written.entries)} baseline "
            f"entr{'y' if len(written.entries) == 1 else 'ies'} to "
            f"{args.write_baseline}"
        )
        return 0

    if args.format == "json":
        print(render_json(result))
    elif args.format == "sarif":
        descriptions = {
            rule.name: rule.description for rule in [*rules, *cross_rules]
        }
        print(render_sarif(result, descriptions))
    else:
        print(render_text(result))
    for key in result.stale_baseline:
        print(
            f"repro-lint: stale baseline entry (fixed? remove it): {key}",
            file=sys.stderr,
        )
    return 1 if result.findings else 0


if __name__ == "__main__":
    sys.exit(main())
