"""emlint rules: the project's domain invariants as AST checks.

Seven rules ship with the tool (see ``docs/static-analysis.md`` for
the full catalogue with examples):

``unit-safety``
    EMPROF juggles processor cycles, receiver samples, seconds, and
    hertz.  Adding, subtracting, or comparing two quantities whose
    identifier suffixes name *different* unit domains (``x_cycles +
    y_samples``) is flagged; multiplying/dividing (which converts
    units) or routing through a conversion call is not.

``determinism``
    Figure/table runs must be bit-reproducible, so randomness must
    flow through injected ``numpy.random.Generator`` instances.  Any
    use of the global numpy RNG (``np.random.seed``, ``np.random.rand``,
    legacy ``RandomState``...) or of the stdlib ``random`` module is
    flagged; ``np.random.default_rng`` / ``Generator`` / seed and bit
    generator types are allowed.

``config-immutability``
    Every ``*Config`` dataclass must be ``frozen=True``, and no config
    object may be mutated after construction.

``float-equality``
    ``==`` / ``!=`` between float quantities in signal/detection code
    silently depends on exact binary representation.  The rule flags
    equality comparisons where an operand is a float literal, a
    ``float(...)`` call, or a name the enclosing scope binds to one.

``mutable-default-arg``
    The classic Python footgun: a list/dict/set default is shared
    across calls.

``silent-except``
    Robustness depends on failures being *typed and visible*
    (:mod:`repro.errors`): a bare ``except:`` is always flagged, and a
    broad ``except Exception:`` / ``except BaseException:`` whose body
    does nothing (``pass`` / ``...``) is flagged as swallowing errors.
    Handlers that log, transform, or re-raise are fine.

``obs-event-schema``
    Flight-recorder events (:class:`repro.obs.flight.FlightEvent`)
    are schema-versioned records that outlive the process that wrote
    them.  Every constructor site must pass an explicit
    ``schema_version=`` keyword (``FLIGHT_SCHEMA_VERSION``) so a
    recorded log can never silently change meaning across versions;
    positional or omitted versions are flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Type

from .engine import FileContext, Finding, Rule

# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------


def _scope_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk ``scope`` without descending into nested function scopes."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _scopes(tree: ast.Module) -> Iterator[ast.AST]:
    """The module plus every (possibly nested) function definition."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _attribute_chain(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` -> ["a", "b", "c"]; None for non-trivial bases."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


# ---------------------------------------------------------------------------
# unit-safety
# ---------------------------------------------------------------------------

#: identifier suffix token -> unit domain
_UNIT_TOKENS: Dict[str, str] = {
    "cycle": "cycles",
    "cycles": "cycles",
    "sample": "samples",
    "samples": "samples",
    "s": "seconds",
    "sec": "seconds",
    "secs": "seconds",
    "seconds": "seconds",
    "ms": "milliseconds",
    "us": "microseconds",
    "ns": "nanoseconds",
    "hz": "hertz",
    "khz": "kilohertz",
    "mhz": "megahertz",
    "ghz": "gigahertz",
}

#: tokens unambiguous enough to count even without an ``_`` separator
#: (a bare ``s`` or ``ms`` is far more likely a loop variable).
_BARE_UNIT_TOKENS = {"cycle", "cycles", "sample", "samples", "seconds"}

_FLAGGED_COMPARE_OPS = (ast.Eq, ast.NotEq, ast.Lt, ast.LtE, ast.Gt, ast.GtE)


def _identifier_unit(name: str) -> Optional[str]:
    if "_" not in name:
        token = name.lower()
        return _UNIT_TOKENS[token] if token in _BARE_UNIT_TOKENS else None
    return _UNIT_TOKENS.get(name.rsplit("_", 1)[1].lower())


def _unit_of(node: ast.AST) -> Optional[str]:
    """Unit domain of an expression, or None when unknown.

    Calls, multiplications, and divisions deliberately return None:
    they are how units are legitimately converted (``samples *
    period_cycles``), so they reset the analysis.
    """
    if isinstance(node, ast.Name):
        return _identifier_unit(node.id)
    if isinstance(node, ast.Attribute):
        return _identifier_unit(node.attr)
    if isinstance(node, ast.UnaryOp):
        return _unit_of(node.operand)
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
        left = _unit_of(node.left)
        if left is not None and left == _unit_of(node.right):
            return left
    return None


class UnitSafetyRule(Rule):
    name = "unit-safety"
    description = (
        "additive/comparison mixing of cycle, sample, second, and hertz "
        "quantities without an explicit conversion"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                left = _unit_of(node.left)
                right = _unit_of(node.right)
                if left is not None and right is not None and left != right:
                    op = "+" if isinstance(node.op, ast.Add) else "-"
                    yield self.finding(
                        context,
                        node,
                        f"'{op}' mixes {left} and {right} quantities without "
                        f"an explicit conversion",
                    )
            elif isinstance(node, ast.Compare):
                operands = [node.left] + list(node.comparators)
                for op, lhs, rhs in zip(node.ops, operands, operands[1:]):
                    if not isinstance(op, _FLAGGED_COMPARE_OPS):
                        continue
                    left = _unit_of(lhs)
                    right = _unit_of(rhs)
                    if left is not None and right is not None and left != right:
                        yield self.finding(
                            context,
                            node,
                            f"comparison mixes {left} and {right} quantities "
                            f"without an explicit conversion",
                        )


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------

#: numpy.random members that construct injectable, seedable objects.
_ALLOWED_NP_RANDOM = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}


class DeterminismRule(Rule):
    name = "determinism"
    description = (
        "global RNG use (stdlib random, numpy.random.<fn>); randomness "
        "must flow through injected numpy.random.Generator instances"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        # local name -> module it refers to ("numpy" or "numpy.random")
        numpy_aliases: Dict[str, str] = {}
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    if alias.name == "numpy" or alias.name.startswith("numpy."):
                        numpy_aliases[local] = (
                            alias.name if alias.asname else "numpy"
                        )
                    elif alias.name == "random" or alias.name.startswith(
                        "random."
                    ):
                        yield self.finding(
                            context,
                            node,
                            "stdlib 'random' is a global RNG; inject a "
                            "numpy.random.Generator instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.finding(
                        context,
                        node,
                        "stdlib 'random' is a global RNG; inject a "
                        "numpy.random.Generator instead",
                    )
                elif node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            numpy_aliases[alias.asname or "random"] = (
                                "numpy.random"
                            )
                elif node.module == "numpy.random":
                    for alias in node.names:
                        if alias.name not in _ALLOWED_NP_RANDOM:
                            yield self.finding(
                                context,
                                node,
                                f"'numpy.random.{alias.name}' uses the global "
                                f"numpy RNG; use an injected Generator",
                            )

        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Attribute):
                continue
            chain = _attribute_chain(node)
            if chain is None:
                continue
            origin = numpy_aliases.get(chain[0])
            member: Optional[str] = None
            if origin == "numpy" and len(chain) >= 3 and chain[1] == "random":
                member = chain[2]
            elif origin == "numpy.random" and len(chain) >= 2:
                member = chain[1]
            if member is not None and member not in _ALLOWED_NP_RANDOM:
                yield self.finding(
                    context,
                    node,
                    f"'numpy.random.{member}' uses the global numpy RNG; "
                    f"use an injected Generator",
                )


# ---------------------------------------------------------------------------
# config-immutability
# ---------------------------------------------------------------------------


def _dataclass_decorator(node: ast.ClassDef) -> Optional[ast.AST]:
    """The ``@dataclass`` / ``@dataclass(...)`` decorator, if present."""
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return dec
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return dec
    return None


def _config_like(name: str) -> bool:
    lowered = name.lower()
    return lowered in ("cfg", "config") or lowered.endswith(
        ("_cfg", "_config")
    )


class ConfigImmutabilityRule(Rule):
    name = "config-immutability"
    description = (
        "*Config dataclasses must be frozen=True and never mutated "
        "after construction"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ClassDef) and node.name.endswith("Config"):
                dec = _dataclass_decorator(node)
                if dec is None:
                    continue
                frozen = False
                if isinstance(dec, ast.Call):
                    for kw in dec.keywords:
                        if kw.arg == "frozen" and isinstance(
                            kw.value, ast.Constant
                        ):
                            frozen = bool(kw.value.value)
                if not frozen:
                    yield self.finding(
                        context,
                        node,
                        f"dataclass '{node.name}' must be declared "
                        f"@dataclass(frozen=True)",
                    )
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets: List[ast.AST]
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                else:
                    targets = [node.target]
                for target in targets:
                    yield from self._check_mutation(context, node, target)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    yield from self._check_mutation(context, node, target)

    def _check_mutation(
        self, context: FileContext, stmt: ast.AST, target: ast.AST
    ) -> Iterator[Finding]:
        if not isinstance(target, ast.Attribute):
            return
        base = target.value
        base_name: Optional[str] = None
        if isinstance(base, ast.Name):
            base_name = base.id
        elif isinstance(base, ast.Attribute):
            base_name = base.attr
        if base_name is not None and _config_like(base_name):
            yield self.finding(
                context,
                stmt,
                f"config object '{base_name}' is mutated after construction "
                f"(attribute '{target.attr}')",
            )


# ---------------------------------------------------------------------------
# float-equality
# ---------------------------------------------------------------------------


def _is_float_constant(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, float)
    )


def _is_float_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
    )


def _float_names_in_scope(scope: ast.AST) -> Set[str]:
    """Names the scope binds to float values (annotation or literal)."""
    names: Set[str] = set()
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = scope.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            ann = arg.annotation
            if isinstance(ann, ast.Name) and ann.id == "float":
                names.add(arg.arg)
    for node in _scope_nodes(scope):
        if isinstance(node, ast.Assign):
            if _is_float_constant(node.value) or _is_float_call(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        elif isinstance(node, ast.AnnAssign):
            ann = node.annotation
            if (
                isinstance(node.target, ast.Name)
                and isinstance(ann, ast.Name)
                and ann.id == "float"
            ):
                names.add(node.target.id)
    return names


class FloatEqualityRule(Rule):
    name = "float-equality"
    description = (
        "== / != between float quantities; compare with a tolerance or "
        "restructure around an inequality"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for scope in _scopes(context.tree):
            float_names = _float_names_in_scope(scope)

            def floatish(node: ast.AST) -> bool:
                return (
                    _is_float_constant(node)
                    or _is_float_call(node)
                    or (isinstance(node, ast.Name) and node.id in float_names)
                )

            for node in _scope_nodes(scope):
                if not isinstance(node, ast.Compare):
                    continue
                operands = [node.left] + list(node.comparators)
                for op, lhs, rhs in zip(node.ops, operands, operands[1:]):
                    if not isinstance(op, (ast.Eq, ast.NotEq)):
                        continue
                    if floatish(lhs) or floatish(rhs):
                        token = "==" if isinstance(op, ast.Eq) else "!="
                        yield self.finding(
                            context,
                            node,
                            f"exact float '{token}' comparison; use a "
                            f"tolerance or an inequality",
                        )
                        break


# ---------------------------------------------------------------------------
# mutable-default-arg
# ---------------------------------------------------------------------------

_MUTABLE_FACTORIES = {
    "list",
    "dict",
    "set",
    "bytearray",
    "defaultdict",
    "deque",
    "Counter",
    "OrderedDict",
}


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(
        node,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
    ):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in _MUTABLE_FACTORIES:
            return True
        if isinstance(func, ast.Attribute) and func.attr in _MUTABLE_FACTORIES:
            return True
    return False


class MutableDefaultArgRule(Rule):
    name = "mutable-default-arg"
    description = "list/dict/set default argument shared across calls"

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    yield self.finding(
                        context,
                        default,
                        f"mutable default argument in '{node.name}'; use "
                        f"None and construct inside the function",
                    )


# ---------------------------------------------------------------------------
# silent-except
# ---------------------------------------------------------------------------


def _is_noop_body(body: Sequence[ast.stmt]) -> bool:
    """True when ``body`` does nothing: pass / ... / a bare docstring."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # `...` or a string literal
        return False
    return True


def _broad_handler_type(handler: ast.ExceptHandler) -> Optional[str]:
    """The broad exception name a handler catches, or None."""
    node = handler.type
    if isinstance(node, ast.Name) and node.id in ("Exception", "BaseException"):
        return node.id
    if isinstance(node, ast.Attribute) and node.attr in (
        "Exception",
        "BaseException",
    ):
        return node.attr
    return None


class SilentExceptRule(Rule):
    name = "silent-except"
    description = (
        "bare 'except:' or a broad handler that swallows the error; "
        "catch specific exceptions or re-raise/record the failure"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    context,
                    node,
                    "bare 'except:' catches everything (including "
                    "KeyboardInterrupt/SystemExit); name the exceptions",
                )
                continue
            broad = _broad_handler_type(node)
            if broad is not None and _is_noop_body(node.body):
                yield self.finding(
                    context,
                    node,
                    f"'except {broad}: pass' silently swallows every error; "
                    f"catch the specific failure or record it",
                )


# ---------------------------------------------------------------------------
# obs-event-schema
# ---------------------------------------------------------------------------

#: Class names of schema-versioned observability event records.  The
#: match is by name, not import resolution: a ``FlightEvent`` call is
#: a flight-recorder event wherever it appears.
SCHEMA_VERSIONED_EVENTS: Tuple[str, ...] = ("FlightEvent",)


class ObsEventSchemaRule(Rule):
    name = "obs-event-schema"
    description = (
        "schema-versioned obs event constructed without an explicit "
        "schema_version= keyword; recorded logs must stay versioned"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            # Direct calls only: FlightEvent(...).  Attribute access
            # (flight.FlightEvent(...)) resolves by the final segment;
            # classmethod alternates (FlightEvent.from_dict) end in
            # the method name and are never matched.
            if isinstance(callee, ast.Name):
                name = callee.id
            elif isinstance(callee, ast.Attribute):
                name = callee.attr
            else:
                continue
            if name not in SCHEMA_VERSIONED_EVENTS:
                continue
            explicit = any(
                keyword.arg == "schema_version" for keyword in node.keywords
            )
            # A **kwargs expansion cannot be checked statically; give
            # it the benefit of the doubt rather than false-positive.
            splatted = any(keyword.arg is None for keyword in node.keywords)
            if explicit or splatted:
                continue
            yield self.finding(
                context,
                node,
                f"{name}(...) without an explicit schema_version= keyword; "
                f"pass schema_version=FLIGHT_SCHEMA_VERSION so recorded "
                f"flight logs never silently change meaning",
            )


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

ALL_RULES: Tuple[Type[Rule], ...] = (
    UnitSafetyRule,
    DeterminismRule,
    ConfigImmutabilityRule,
    FloatEqualityRule,
    MutableDefaultArgRule,
    SilentExceptRule,
    ObsEventSchemaRule,
)


def rule_names() -> List[str]:
    """Names of every registered rule, in registry order."""
    return [cls.name for cls in ALL_RULES]


def rules_by_name(names: Sequence[str]) -> List[Rule]:
    """Instantiate the rules named in ``names``.

    Raises:
        KeyError: if a name is not registered.
    """
    registry = {cls.name: cls for cls in ALL_RULES}
    out: List[Rule] = []
    for name in names:
        if name not in registry:
            raise KeyError(name)
        out.append(registry[name]())
    return out
