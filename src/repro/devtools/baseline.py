"""Adopt-now baseline: a reviewed suppression file for known findings.

Turning on a new rule family over an existing tree surfaces debt that
cannot all be fixed in one PR.  The baseline file records each known
finding with a one-line justification; baselined findings are
suppressed (and counted), so the gate stays green while the file
doubles as the explicit worklist.  Entries match on ``(rule, path,
message)`` — deliberately **not** on line numbers, so unrelated edits
to a file do not invalidate its baseline.

When a baselined finding disappears (the debt was paid), its entry
goes *stale*; stale entries are surfaced by the reporters and by
``repro-lint`` on stderr so the file shrinks monotonically instead of
rotting.  ``repro-lint --write-baseline`` regenerates the file from
the current findings (preserving justifications for entries that
still match).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .engine import Finding

BASELINE_SCHEMA = "emlint-baseline"
BASELINE_SCHEMA_VERSION = 1

#: Default baseline filename, conventionally at the repository root.
DEFAULT_BASELINE_NAME = ".emlint_baseline.json"

PathLike = Union[str, Path]


def _normalize_path(path: str) -> str:
    """Repo-relative posix form when possible, so baselines are portable."""
    p = Path(path)
    try:
        p = p.resolve().relative_to(Path.cwd().resolve())
    except ValueError:
        pass
    return p.as_posix()


def fingerprint(finding: Finding) -> str:
    """Line-number-independent identity of a finding."""
    return f"{finding.rule}::{_normalize_path(finding.path)}::{finding.message}"


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str  # normalized posix path
    message: str
    justification: str = ""

    @property
    def key(self) -> str:
        return f"{self.rule}::{self.path}::{self.message}"


@dataclass
class Baseline:
    """The in-memory baseline: entries plus match bookkeeping."""

    entries: List[BaselineEntry] = field(default_factory=list)
    path: Optional[Path] = None
    _matched: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def load(cls, path: PathLike) -> "Baseline":
        """Parse a baseline file.

        Raises:
            ValueError: the file exists but is not a baseline document
                (a baseline you *asked* for must never be silently
                ignored).
        """
        p = Path(path)
        try:
            payload = json.loads(p.read_text(encoding="utf-8"))
        except OSError as exc:
            raise ValueError(f"cannot read baseline {p}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise ValueError(f"baseline {p} is not valid JSON: {exc}") from exc
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != BASELINE_SCHEMA
        ):
            raise ValueError(f"{p} is not an {BASELINE_SCHEMA} document")
        entries = []
        for raw in payload.get("entries", []):
            entries.append(
                BaselineEntry(
                    rule=str(raw["rule"]),
                    path=str(raw["path"]),
                    message=str(raw["message"]),
                    justification=str(raw.get("justification", "")),
                )
            )
        return cls(entries=entries, path=p)

    def match(self, finding: Finding) -> bool:
        """True (and recorded) when ``finding`` is baselined."""
        key = fingerprint(finding)
        for entry in self.entries:
            if entry.key == key:
                self._matched[key] = self._matched.get(key, 0) + 1
                return True
        return False

    def stale_entries(self) -> List[BaselineEntry]:
        """Entries that matched nothing in the run just filtered."""
        return [e for e in self.entries if e.key not in self._matched]

    def apply(self, findings: Sequence[Finding]) -> Tuple[List[Finding], int]:
        """(kept findings, suppressed count); resets match bookkeeping."""
        self._matched.clear()
        kept = [f for f in findings if not self.match(f)]
        return kept, len(findings) - len(kept)


def write_baseline(
    path: PathLike,
    findings: Sequence[Finding],
    previous: Optional[Baseline] = None,
    default_justification: str = "TODO: justify or fix",
) -> Baseline:
    """Write a baseline covering ``findings``; atomic replace.

    Justifications from ``previous`` are carried over for entries that
    still match, so regenerating never loses review notes.
    """
    carried: Dict[str, str] = {}
    if previous is not None:
        carried = {
            e.key: e.justification for e in previous.entries if e.justification
        }
    seen: Dict[str, BaselineEntry] = {}
    for finding in findings:
        entry = BaselineEntry(
            rule=finding.rule,
            path=_normalize_path(finding.path),
            message=finding.message,
        )
        key = entry.key
        if key not in seen:
            seen[key] = BaselineEntry(
                rule=entry.rule,
                path=entry.path,
                message=entry.message,
                justification=carried.get(key, default_justification),
            )
    entries = sorted(seen.values(), key=lambda e: (e.path, e.rule, e.message))
    payload = {
        "schema": BASELINE_SCHEMA,
        "version": BASELINE_SCHEMA_VERSION,
        "entries": [
            {
                "rule": e.rule,
                "path": e.path,
                "message": e.message,
                "justification": e.justification,
            }
            for e in entries
        ],
    }
    destination = Path(path)
    tmp = destination.with_name(destination.name + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    os.replace(tmp, destination)
    return Baseline(entries=entries, path=destination)
