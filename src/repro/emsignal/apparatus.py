"""The full measurement apparatus: emission -> probe channel -> receiver.

One call takes a simulation result to the :class:`Capture` a physical
EMPROF deployment would record - this is the software equivalent of
the probe + spectrum-analyzer/digitizer bench of Fig. 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..sim.machine import SimulationResult
from .channel import Channel, ChannelConfig
from .receiver import Capture, MHZ, Receiver
from .synth import EmissionModel, emitted_envelope


@dataclass(frozen=True)
class Apparatus:
    """A configured measurement setup.

    Attributes:
        emission: activity -> emitted envelope model.
        channel: probe/drift/noise configuration.
        bandwidth_hz: receiver measurement bandwidth.
    """

    emission: EmissionModel = field(default_factory=EmissionModel)
    channel: ChannelConfig = field(default_factory=ChannelConfig)
    bandwidth_hz: float = 40 * MHZ

    def measure(self, result: SimulationResult) -> Capture:
        """Record the EM capture for one simulated execution."""
        envelope = emitted_envelope(result.power_trace, self.emission)
        distorted = Channel(self.channel).apply(envelope, result.sample_rate_hz)
        receiver = Receiver(self.bandwidth_hz)
        return receiver.capture(
            distorted,
            rate_hz=result.sample_rate_hz,
            clock_hz=result.config.clock_hz,
            region_names=result.ground_truth.region_names,
        )


def measure(
    result: SimulationResult,
    bandwidth_hz: float = 40 * MHZ,
    channel: Optional[ChannelConfig] = None,
    emission: Optional[EmissionModel] = None,
) -> Capture:
    """One-shot convenience around :class:`Apparatus`."""
    return Apparatus(
        emission=emission if emission is not None else EmissionModel(),
        channel=channel if channel is not None else ChannelConfig(),
        bandwidth_hz=bandwidth_hz,
    ).measure(result)
