"""Bandwidth-limited receiver (spectrum analyzer / SDR model).

The paper's apparatus captures a band of ``bandwidth`` Hz centered on
the processor clock (Keysight N9020A MXA for short runs, ThinkRF
WSA5000 + Signatec PX14400 digitizers for long ones) and studies how
the measurement bandwidth - 20/40/60/80/160 MHz - affects profiling
quality (Fig. 12).

At complex baseband, a capture bandwidth of B yields a complex sample
rate of B, so the magnitude signal EMPROF sees has one sample every
``clock_hz / B`` processor cycles.  The receiver model therefore:

1. anti-alias low-pass filters the incoming envelope at B/2, which is
   what physically smears out stalls shorter than a couple of samples
   (the reason 20 MHz captures miss most stalls on the Alcatel phone),
2. resamples it to B samples/s,
3. returns a :class:`Capture` carrying the magnitude plus the metadata
   the profiler needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..obs import metrics as _metrics, trace as _trace
from ..obs.runtime import obs_enabled
from .dsp import lowpass, resample_to_rate

_CAPTURES_TOTAL = _metrics.counter(
    "receiver_captures_total", "captures recorded through Receiver.capture()"
)
_CAPTURE_SAMPLES = _metrics.counter(
    "receiver_samples_total", "magnitude samples produced by the receiver"
)

MHZ = 1e6

# The measurement bandwidths swept in Section VI-B.
PAPER_BANDWIDTHS_HZ = (20 * MHZ, 40 * MHZ, 60 * MHZ, 80 * MHZ, 160 * MHZ)


@dataclass(frozen=True)
class Capture:
    """One recorded magnitude trace.

    Attributes:
        magnitude: received envelope magnitude samples.
        sample_rate_hz: sampling rate (equals the capture bandwidth).
        clock_hz: profiled processor's clock (the carrier frequency).
        bandwidth_hz: configured measurement bandwidth.
        region_names: optional region map forwarded from the workload.
    """

    magnitude: np.ndarray
    sample_rate_hz: float
    clock_hz: float
    bandwidth_hz: float
    region_names: Dict[int, str] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        """Capture length in seconds."""
        return len(self.magnitude) / self.sample_rate_hz

    @property
    def sample_period_cycles(self) -> float:
        """Processor cycles per magnitude sample."""
        return self.clock_hz / self.sample_rate_hz


class Receiver:
    """Captures an envelope through a finite measurement bandwidth."""

    def __init__(self, bandwidth_hz: float = 40 * MHZ):
        if bandwidth_hz <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth_hz = float(bandwidth_hz)

    def capture(
        self,
        envelope: np.ndarray,
        rate_hz: float,
        clock_hz: float,
        region_names: Optional[Dict[int, str]] = None,
    ) -> Capture:
        """Record ``envelope`` (sampled at ``rate_hz``) through this receiver.

        When the requested bandwidth exceeds the source rate the signal
        is upsampled; that adds no information (the simulator trace is
        the physical truth) but keeps sweep code uniform.
        """
        if rate_hz <= 0 or clock_hz <= 0:
            raise ValueError("rates must be positive")
        with _trace.span(
            "receiver.capture", bandwidth_hz=self.bandwidth_hz
        ):
            x = np.asarray(envelope, dtype=np.float64)
            target_rate = self.bandwidth_hz
            if target_rate < rate_hz:
                # Anti-aliasing at the capture bandwidth's Nyquist edge.
                x = lowpass(x, cutoff_hz=target_rate / 2.0, rate_hz=rate_hz)
            y = resample_to_rate(x, rate_hz, target_rate)
            y = np.maximum(y, 0.0)
        if obs_enabled():
            _CAPTURES_TOTAL.inc()
            _CAPTURE_SAMPLES.inc(len(y))
        return Capture(
            magnitude=y,
            sample_rate_hz=target_rate,
            clock_hz=clock_hz,
            bandwidth_hz=self.bandwidth_hz,
            region_names=dict(region_names or {}),
        )
