"""Probe and propagation channel: gain, drift, noise.

Section IV enumerates exactly the distortions EMPROF's normalization
exists to survive:

* "even small changes in probe/antenna position can dramatically change
  the overall magnitude of the received signal ... largely ... a
  constant multiplicative factor" -> ``probe_gain``;
* "the voltage provided by the profiled system's power supply vary over
  time.  The impact ... is largely that signal strength changes in
  magnitude over time" -> a slow multiplicative ``drift``;
* plus measurement noise from the probe/LNA/digitizer chain -> AWGN at
  a configurable SNR.

The channel is where experiments turn the knobs: moving the probe away
is a gain/SNR change, a sagging supply is a drift change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..obs import metrics as _metrics, trace as _trace
from ..obs.runtime import obs_enabled
from .dsp import rms

_CHANNEL_SAMPLES = _metrics.counter(
    "channel_samples_total", "envelope samples distorted by Channel.apply()"
)


@dataclass(frozen=True)
class ChannelConfig:
    """Probe + environment distortion parameters.

    Attributes:
        probe_gain: constant multiplicative factor from probe position.
        snr_db: signal-to-noise ratio of the received magnitude; noise
            power is set relative to the *dynamic* (AC) signal power so
            the difficulty of detection does not depend on the
            arbitrary absolute gain.
        drift_amplitude: peak relative magnitude change from supply
            variation (e.g. 0.1 = +-10%).
        drift_period_s: period of the dominant supply-drift component.
        interference_level: amplitude of additive emissions from
            *other* switching circuitry near the probe - sibling cores
            on a multi-core SoC, the GPU, radios.  Expressed relative
            to the profiled core's busy-level emission; 0 disables.
        interference_duty: fraction of time the interfering circuitry
            is active (bursts of activity, not a constant tone).
        interference_burst_s: mean duration of one interference burst.
        seed: noise generator seed.
    """

    probe_gain: float = 1.0
    snr_db: float = 25.0
    drift_amplitude: float = 0.05
    drift_period_s: float = 1e-3
    interference_level: float = 0.0
    interference_duty: float = 0.2
    interference_burst_s: float = 20e-6
    seed: int = 0

    def __post_init__(self) -> None:
        if self.probe_gain <= 0:
            raise ValueError("probe gain must be positive")
        if not 0.0 <= self.drift_amplitude < 1.0:
            raise ValueError("drift amplitude must be in [0, 1)")
        if self.drift_period_s <= 0:
            raise ValueError("drift period must be positive")
        if self.interference_level < 0:
            raise ValueError("interference level cannot be negative")
        if not 0.0 <= self.interference_duty <= 1.0:
            raise ValueError("interference duty must be in [0, 1]")
        if self.interference_burst_s <= 0:
            raise ValueError("interference burst length must be positive")


class Channel:
    """Applies probe gain, supply drift, interference and noise."""

    def __init__(self, config: Optional[ChannelConfig] = None):
        self.config = config if config is not None else ChannelConfig()

    def _interference(
        self, n: int, rate_hz: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Bursty additive activity from neighbouring circuitry."""
        cfg = self.config
        burst_samples = max(1, int(cfg.interference_burst_s * rate_hz))
        out = np.zeros(n)
        if cfg.interference_duty <= 0.0:
            return out
        # Mean gap sized so active samples ~= duty fraction.
        mean_gap = burst_samples * (1.0 - cfg.interference_duty) / max(
            cfg.interference_duty, 1e-9
        )
        # Draw all burst placements first (the number of draws is
        # data-dependent, so the loop is over scalars only), then paint
        # the bursts in one pass.  The draw order matches the historical
        # per-burst loop exactly, keeping seeded captures bit-stable.
        bursts = []
        pos = int(rng.exponential(mean_gap)) if mean_gap > 0 else 0
        while pos < n:
            length = max(1, int(rng.exponential(burst_samples)))
            end = min(n, pos + length)
            bursts.append((pos, end, cfg.interference_level * rng.uniform(0.6, 1.0)))
            pos = end + (int(rng.exponential(mean_gap)) if mean_gap > 0 else 1)
        for begin, end, level in bursts:
            out[begin:end] = level
        return out

    def apply(self, envelope: np.ndarray, rate_hz: float) -> np.ndarray:
        """Distort an emitted envelope sampled at ``rate_hz``.

        The output is clipped at zero: a magnitude cannot be negative,
        and deep noise excursions rectify in a real envelope detector.
        """
        if not obs_enabled():
            return self._apply_impl(envelope, rate_hz)
        with _trace.span("channel.apply", samples=len(np.atleast_1d(envelope))):
            out = self._apply_impl(envelope, rate_hz)
        _CHANNEL_SAMPLES.inc(len(out))
        return out

    def _apply_impl(self, envelope: np.ndarray, rate_hz: float) -> np.ndarray:
        """The uninstrumented channel model (see :meth:`apply`)."""
        if rate_hz <= 0:
            raise ValueError("sample rate must be positive")
        cfg = self.config
        x = np.asarray(envelope, dtype=np.float64)
        if len(x) == 0:
            return x.copy()
        rng = np.random.default_rng(cfg.seed)

        t = np.arange(len(x)) / rate_hz
        phase = rng.uniform(0, 2 * np.pi)
        drift = 1.0 + cfg.drift_amplitude * np.sin(
            2 * np.pi * t / cfg.drift_period_s + phase
        )
        y = cfg.probe_gain * drift * x

        # Additive emissions from neighbouring circuitry (sibling
        # cores, GPU): bursts of extra magnitude that are uncorrelated
        # with the profiled core's stalls - these partially "fill in"
        # the dips and are the main robustness hazard on multi-core
        # parts.
        if cfg.interference_level > 0.0:
            y = y + cfg.probe_gain * self._interference(len(x), rate_hz, rng)

        # Noise scaled to the AC content of the distorted signal: the
        # busy/stall contrast is what carries information, so SNR is
        # defined against it.
        ac = y - y.mean()
        ac_rms = rms(ac)
        if ac_rms <= 0.0:
            ac_rms = rms(y)
        noise_rms = ac_rms / np.sqrt(10.0 ** (cfg.snr_db / 10.0))
        y = y + rng.normal(0.0, noise_rms, size=len(y))
        return np.maximum(y, 0.0)
