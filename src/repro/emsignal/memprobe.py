"""Memory-side EM probe model (the dual-probe validation, Fig. 9/10).

Section V-D validates EMPROF by receiving the *memory chip's* EM
emanations simultaneously with the processor's and checking that each
processor-signal dip coincides with a burst of memory activity.  This
module synthesizes that memory-side signal from the ground truth:

* each LLC miss produces a burst over the interval during which DRAM is
  actually servicing it,
* periodic refresh produces its own bursts (unrelated to misses),
* background DMA produces occasional bursts at random times - this is
  why the paper notes the memory signal alone would be a *worse* miss
  detector than the processor signal (Section V-D): it is active for
  many reasons besides LLC misses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim.config import MemoryConfig
from ..sim.trace import GroundTruth


@dataclass(frozen=True)
class MemProbeConfig:
    """Memory-probe synthesis parameters.

    Attributes:
        idle_level: quiescent memory-signal magnitude.
        burst_level: magnitude during an access or refresh burst.
        service_cycles: how long one line fetch keeps the DRAM busy.
        dma_rate_per_s: mean rate of background DMA bursts.
        dma_burst_cycles: duration of one DMA burst.
        seed: randomness for DMA burst placement.
    """

    idle_level: float = 0.08
    burst_level: float = 0.85
    service_cycles: int = 60
    dma_rate_per_s: float = 2000.0
    dma_burst_cycles: int = 400
    seed: int = 0

    def __post_init__(self) -> None:
        if self.idle_level < 0 or self.burst_level <= self.idle_level:
            raise ValueError("burst level must exceed a non-negative idle level")
        if self.service_cycles <= 0 or self.dma_burst_cycles <= 0:
            raise ValueError("burst durations must be positive")
        if self.dma_rate_per_s < 0:
            raise ValueError("DMA rate cannot be negative")


def memory_probe_signal(
    truth: GroundTruth,
    memory_config: MemoryConfig,
    clock_hz: float,
    bin_cycles: int = 20,
    config: MemProbeConfig = None,
) -> np.ndarray:
    """Synthesize the memory-side magnitude trace for one run.

    The output is sampled like the processor-side power trace (one
    sample per ``bin_cycles`` cycles) so the two can be overlaid
    sample-for-sample, as in Fig. 10.
    """
    cfg = config if config is not None else MemProbeConfig()
    if clock_hz <= 0 or bin_cycles <= 0:
        raise ValueError("clock and bin width must be positive")
    total_cycles = max(truth.total_cycles, 1)
    nbins = -(-total_cycles // bin_cycles)
    activity = np.zeros(nbins, dtype=np.float64)

    def mark(begin_cycle: float, end_cycle: float) -> None:
        lo = max(0, int(begin_cycle // bin_cycles))
        hi = min(nbins, int(np.ceil(end_cycle / bin_cycles)))
        if hi > lo:
            activity[lo:hi] = 1.0

    # Miss service bursts: DRAM is busy at the tail of each miss's
    # latency window (the front is controller/interconnect transit).
    for miss in truth.misses:
        mark(miss.ready_cycle - cfg.service_cycles, miss.ready_cycle)

    # Periodic refresh bursts.
    mem = memory_config
    if mem.refresh_enabled:
        start = mem.refresh_interval
        while start < total_cycles:
            mark(start, start + mem.refresh_duration)
            start += mem.refresh_interval

    # Background DMA, independent of program behaviour.
    rng = np.random.default_rng(cfg.seed)
    duration_s = total_cycles / clock_hz
    n_dma = rng.poisson(cfg.dma_rate_per_s * duration_s)
    for begin in rng.uniform(0, total_cycles, size=n_dma):
        mark(begin, begin + cfg.dma_burst_cycles)

    return cfg.idle_level + (cfg.burst_level - cfg.idle_level) * activity
