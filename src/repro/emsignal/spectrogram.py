"""Spectrogram computation (Fig. 14) built on the STFT helper.

A spectrogram of the received magnitude reveals the per-region signal
texture: each loop's instruction mix modulates activity with its own
periodicity, producing distinct spectral lines.  Spectral-Profiling-
style attribution (:mod:`repro.attribution`) classifies frames of this
spectrogram against trained per-region spectra.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dsp import stft_magnitude


@dataclass(frozen=True)
class Spectrogram:
    """STFT magnitude with its axes.

    Attributes:
        freqs_hz: frequency axis (n_freqs).
        times_s: frame-center times (n_frames).
        magnitude: (n_freqs, n_frames) non-negative array.
        rate_hz: sampling rate of the analyzed signal.
    """

    freqs_hz: np.ndarray
    times_s: np.ndarray
    magnitude: np.ndarray
    rate_hz: float

    @property
    def n_frames(self) -> int:
        """Number of time frames."""
        return self.magnitude.shape[1]

    def frame_spectrum(self, index: int) -> np.ndarray:
        """Magnitude spectrum of one frame."""
        return self.magnitude[:, index]

    def mean_spectrum(self) -> np.ndarray:
        """Average spectrum across all frames."""
        if self.n_frames == 0:
            return np.zeros(self.magnitude.shape[0])
        return self.magnitude.mean(axis=1)

    def frame_time_bounds(self, index: int):
        """(begin_s, end_s) wall-time span of frame ``index``."""
        if self.n_frames == 0:
            raise ValueError("empty spectrogram")
        if self.n_frames == 1:
            half = 0.5 * (self.times_s[0] if self.times_s[0] > 0 else 1.0)
        else:
            half = 0.5 * (self.times_s[1] - self.times_s[0])
        t = self.times_s[index]
        return t - half, t + half


def compute_spectrogram(
    signal: np.ndarray,
    rate_hz: float,
    window_samples: int = 256,
    overlap: float = 0.5,
) -> Spectrogram:
    """Spectrogram of a magnitude signal.

    The DC bin is zeroed: region discrimination must come from the
    activity *texture*, not the mean level (the mean is what EMPROF's
    dip detector already uses, and it is heavily distorted by stalls).
    """
    freqs, times, mag = stft_magnitude(signal, rate_hz, window_samples, overlap)
    mag = mag.copy()
    if mag.shape[0] > 0:
        mag[0, :] = 0.0
    return Spectrogram(
        freqs_hz=np.asarray(freqs),
        times_s=np.asarray(times),
        magnitude=mag,
        rate_hz=float(rate_hz),
    )
