"""DSP helpers shared by the signal chain and attribution code."""

from __future__ import annotations

from fractions import Fraction
from typing import Tuple

import numpy as np
from scipy import signal as sps


def resample_to_rate(
    x: np.ndarray, rate_in: float, rate_out: float, max_denominator: int = 256
) -> np.ndarray:
    """Rational-ratio resampling of ``x`` from ``rate_in`` to ``rate_out``.

    Uses polyphase filtering (``scipy.signal.resample_poly``), which
    applies the appropriate anti-aliasing low-pass - the same job the
    receiver's decimation filter does in a real SDR front end.
    """
    if rate_in <= 0 or rate_out <= 0:
        raise ValueError("rates must be positive")
    x = np.asarray(x, dtype=np.float64)
    if len(x) == 0:
        return x.copy()
    ratio = Fraction(rate_out / rate_in).limit_denominator(max_denominator)
    up, down = ratio.numerator, ratio.denominator
    if up == down:
        return x.copy()
    return sps.resample_poly(x, up, down)


def lowpass(x: np.ndarray, cutoff_hz: float, rate_hz: float, order: int = 5) -> np.ndarray:
    """Zero-phase Butterworth low-pass of ``x``.

    ``cutoff_hz`` at or above Nyquist returns the input unchanged.
    """
    if cutoff_hz <= 0 or rate_hz <= 0:
        raise ValueError("frequencies must be positive")
    x = np.asarray(x, dtype=np.float64)
    nyq = rate_hz / 2.0
    if cutoff_hz >= nyq or len(x) < 3 * (order + 1):
        return x.copy()
    sos = sps.butter(order, cutoff_hz / nyq, output="sos")
    return sps.sosfiltfilt(sos, x)


def stft_magnitude(
    x: np.ndarray,
    rate_hz: float,
    window_samples: int = 256,
    overlap: float = 0.5,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Short-time Fourier magnitude of a real signal.

    Returns:
        (frequencies_hz, frame_times_s, magnitude) where ``magnitude``
        has shape (n_freqs, n_frames).  This is the spectrogram used
        for Fig. 14 and for Spectral-Profiling-style attribution.
    """
    if not 0.0 <= overlap < 1.0:
        raise ValueError("overlap must be in [0, 1)")
    if window_samples < 8:
        raise ValueError("window must be at least 8 samples")
    x = np.asarray(x, dtype=np.float64)
    noverlap = int(window_samples * overlap)
    freqs, times, z = sps.stft(
        x,
        fs=rate_hz,
        nperseg=window_samples,
        noverlap=noverlap,
        detrend="constant",
        padded=False,
        boundary=None,
    )
    return freqs, times, np.abs(z)


def rms(x: np.ndarray) -> float:
    """Root-mean-square of a signal (0.0 for empty input)."""
    x = np.asarray(x, dtype=np.float64)
    if x.size == 0:
        return 0.0
    return float(np.sqrt(np.mean(x * x)))


def db_to_linear_power(db: float) -> float:
    """Convert a decibel power ratio to linear."""
    return 10.0 ** (db / 10.0)
