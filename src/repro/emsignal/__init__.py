"""EM side-channel signal chain.

Simulated power trace -> emitted envelope (:mod:`synth`) -> probe and
environment distortions (:mod:`channel`) -> bandwidth-limited capture
(:mod:`receiver`).  :mod:`apparatus` chains all three;
:mod:`memprobe` synthesizes the memory-side probe of Fig. 10 and
:mod:`spectrogram` the Fig. 14 spectrogram.
"""

from .apparatus import Apparatus, measure
from .channel import Channel, ChannelConfig
from .dsp import lowpass, resample_to_rate, rms, stft_magnitude
from .memprobe import MemProbeConfig, memory_probe_signal
from .receiver import Capture, MHZ, PAPER_BANDWIDTHS_HZ, Receiver
from .spectrogram import Spectrogram, compute_spectrogram
from .synth import EmissionModel, emitted_envelope

__all__ = [
    "Apparatus",
    "measure",
    "Channel",
    "ChannelConfig",
    "Receiver",
    "Capture",
    "MHZ",
    "PAPER_BANDWIDTHS_HZ",
    "EmissionModel",
    "emitted_envelope",
    "MemProbeConfig",
    "memory_probe_signal",
    "Spectrogram",
    "compute_spectrogram",
    "lowpass",
    "resample_to_rate",
    "rms",
    "stft_magnitude",
]
