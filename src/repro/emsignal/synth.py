"""Synthesis of the emitted EM envelope from processor activity.

The processor's switching currents amplitude-modulate an unintended
carrier at (and around) the clock frequency; a near-field probe tuned
to that band receives a signal whose *envelope magnitude* tracks
switching activity (Section II-A).  Since EMPROF only ever analyzes
that magnitude, the synthesis works directly at complex baseband: the
emitted envelope is the activity trace mapped through a mildly
compressive radiation efficiency curve, and the carrier phase is
irrelevant to magnitude processing downstream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class EmissionModel:
    """Activity -> emitted envelope mapping.

    Attributes:
        gain: overall radiated amplitude per unit activity.
        compression: exponent applied to activity (1.0 = linear;
            slightly below 1 models the sub-linear growth of radiated
            amplitude with the number of simultaneously switching
            units, whose fields partially cancel).
        floor: emission present even at full stall (clock tree keeps
            toggling; this is why a stalled processor dips but never
            goes silent - compare Fig. 1).
    """

    gain: float = 1.0
    compression: float = 0.9
    floor: float = 0.0

    def __post_init__(self) -> None:
        if self.gain <= 0:
            raise ValueError("gain must be positive")
        if not 0.1 <= self.compression <= 1.5:
            raise ValueError("compression exponent out of plausible range")
        if self.floor < 0:
            raise ValueError("floor cannot be negative")


def emitted_envelope(power_trace: np.ndarray, model: EmissionModel = None) -> np.ndarray:
    """Map a simulator power trace to an emitted EM envelope.

    The output keeps the input's sampling rate; channel and receiver
    stages are applied afterwards by :mod:`repro.emsignal.channel` and
    :mod:`repro.emsignal.receiver`.
    """
    m = model if model is not None else EmissionModel()
    x = np.asarray(power_trace, dtype=np.float64)
    if np.any(x < 0):
        raise ValueError("power trace must be non-negative")
    return m.floor + m.gain * np.power(x, m.compression)
