"""Series generators for every figure in the paper's evaluation.

Each ``figN_*`` function runs the experiment and returns the numeric
series the figure plots, plus the scalar facts the paper states about
it; bench code asserts those facts.  Nothing here draws - the series
are plain numpy arrays a notebook can plot directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..attribution.spectral import RegionTimeline, SpectralProfiler
from ..core.normalize import moving_average
from ..core.refresh import refresh_stats
from ..core.stats import latency_histogram
from ..devices.models import alcatel, by_name, olimex, sesc
from ..emsignal.memprobe import memory_probe_signal
from ..emsignal.receiver import MHZ, PAPER_BANDWIDTHS_HZ
from ..emsignal.spectrogram import Spectrogram, compute_spectrogram
from ..sim.config import MachineConfig
from ..sim.isa import NO_CONSUMER, alu, branch, load
from ..workloads.base import StreamWorkload
from ..workloads.boot import BootWorkload
from ..workloads.microbenchmark import Microbenchmark
from ..workloads.spec import spec_workload
from .runner import ExperimentRun, run_device, run_simulator


@dataclass
class SignalFigure:
    """A signal excerpt with its axes and annotations.

    Attributes:
        signal: magnitude samples.
        sample_rate_hz: sampling rate of ``signal``.
        moving_avg: smoothed overlay (the red curve of Fig. 1).
        annotations: named scalar facts about the excerpt.
    """

    signal: np.ndarray
    sample_rate_hz: float
    moving_avg: Optional[np.ndarray] = None
    annotations: Dict[str, float] = field(default_factory=dict)


def _first_long_stall(
    run: ExperimentRun, min_cycles: float = 150.0, max_cycles: float = 800.0
):
    """A detected stall in an ordinary miss-latency band.

    The band excludes brief LLC-hit residue below and refresh
    collisions above; the search starts from the middle of the signal
    so the excerpt comes from steady-state execution (the prologue is
    a wall of page-touch stalls), showing a plain single-miss stall as
    Fig. 1 does.
    """
    half = len(run.signal) / 2
    for stall in run.report.stalls:
        if stall.begin_sample < half:
            continue
        if min_cycles <= stall.duration_cycles <= max_cycles:
            return stall
    for stall in run.report.stalls:
        if min_cycles <= stall.duration_cycles <= max_cycles:
            return stall
    raise RuntimeError("no stall in the requested duration band")


# -- Fig. 1: a stall dips the EM magnitude -----------------------------------


def fig1_stall_dip(
    tm: int = 64, seed: int = 0, context_samples: int = 120
) -> SignalFigure:
    """One LLC-miss stall in the Olimex EM signal, with moving average.

    The paper's Fig. 1: 40 MHz bandwidth around the 1.008 GHz clock;
    the dip between the dotted lines is the stall, whose duration
    times the clock frequency gives the stall cycle count.
    """
    workload = Microbenchmark(total_misses=tm, consecutive_misses=1,
                              blank_iterations=6000, gap_instructions=240)
    run = run_device(workload, olimex(), bandwidth_hz=40 * MHZ, seed=seed)
    stall = _first_long_stall(run)
    lo = max(0, int(stall.begin_sample) - context_samples)
    hi = min(len(run.signal), int(stall.end_sample) + context_samples)
    excerpt = run.signal[lo:hi]
    return SignalFigure(
        signal=excerpt,
        sample_rate_hz=run.emprof.sample_rate_hz,
        moving_avg=moving_average(excerpt, 9),
        annotations={
            "stall_begin_sample": stall.begin_sample - lo,
            "stall_end_sample": stall.end_sample - lo,
            "stall_cycles": stall.duration_cycles,
            "stall_seconds": stall.duration_cycles / run.emprof.clock_hz,
        },
    )


# -- Fig. 2: LLC-hit vs LLC-miss stalls in the simulator ----------------------


def _pointer_loop(n: int, resident: bool, line: int = 64) -> StreamWorkload:
    """The Section III-B probe loop: loads from array cache lines.

    ``resident=True`` is the small-array variant (Fig. 2a): the array
    is warmed once and stays LLC-resident, so each load is at worst an
    L1 miss serviced by the LLC.  ``resident=False`` is the big-array
    variant (Fig. 2b): every measured load targets a never-seen line
    and must go to main memory.
    """

    def factory(config):
        rng = np.random.default_rng(3)
        base = 0x4000_0000
        pc = 0x1000
        if resident:
            n_lines = max(2, (config.l1d.size_bytes * 4) // line)
            order = rng.permutation(n_lines)
            # Warm pass: bring the small array into the hierarchy.
            for k in range(n_lines):
                yield load(pc, base + int(order[k]) * line, dep=2, region=1)
                yield alu(pc + 4, region=1)
                yield branch(pc + 8, region=1)
            targets = [base + int(order[k % n_lines]) * line for k in range(n)]
        else:
            # Distinct pages: every measured load is a cold LLC miss.
            targets = [base + k * 8192 + line for k in range(n)]
        for addr in targets:
            # Enough address-generation work between loads that their
            # stall dips stay separable at 40 MHz on a 2-wide core.
            for j in range(240):
                yield alu(pc + 16 + 4 * (j % 8), region=2)
            yield load(pc + 48, addr, dep=2, region=2)
            yield branch(pc + 52, region=2)

    name = "llc_hit_loop" if resident else "llc_miss_loop"
    return StreamWorkload(name, factory, {1: "warm", 2: "measure"})


def fig2_hit_vs_miss(
    seed: int = 0, config: Optional[MachineConfig] = None
) -> Tuple[SignalFigure, SignalFigure]:
    """(LLC-hit signal, LLC-miss signal) from the simulator (Fig. 2).

    Same code, two array sizes: one fits the LLC (brief L1-miss
    stalls), one exceeds it (order-of-magnitude longer stalls).
    """
    cfg = config if config is not None else sesc()
    figures = []
    for resident in (True, False):
        run = run_simulator(_pointer_loop(60, resident), config=cfg, seed=seed)
        truth = run.result.ground_truth
        measure_id = 2
        stalls = [
            s for s in truth.memory_stalls() if s.region == measure_id
        ]
        brief = [
            s.duration
            for s in truth.stalls
            if not s.is_memory and s.region == measure_id
        ]
        # Excerpt: the tail of the signal (the measure loop runs last).
        tail = run.signal[-min(len(run.signal), 600):]
        figures.append(
            SignalFigure(
                signal=tail,
                sample_rate_hz=run.result.sample_rate_hz,
                annotations={
                    "memory_stalls": float(len(stalls)),
                    "mean_memory_stall_cycles": (
                        float(np.mean([s.duration for s in stalls]))
                        if stalls
                        else 0.0
                    ),
                    "mean_brief_stall_cycles": (
                        float(np.mean(brief)) if brief else 0.0
                    ),
                },
            )
        )
    return figures[0], figures[1]


# -- Fig. 3: hidden and overlapped misses --------------------------------------


@dataclass(frozen=True)
class Fig3Result:
    """Ground-truth accounting of hidden/overlapped misses.

    Attributes:
        total_misses: LLC misses issued.
        hidden_misses: misses that caused no stall (Fig. 3a).
        stalls: stall records produced.
        max_misses_per_stall: overlap degree (Fig. 3b).
        detected: stalls EMPROF found in the signal.
    """

    total_misses: int
    hidden_misses: int
    stalls: int
    max_misses_per_stall: int
    detected: int


def fig3a_hidden_misses(seed: int = 0) -> Fig3Result:
    """Dead loads under a large runahead window: misses with no stalls."""

    def factory(config):
        pc = 0x1000
        base = 0x5000_0000
        # Enough independent work after each dead load that the line
        # returns before MSHRs fill or any consumer appears.
        spacing = int(config.memory.access_latency * config.core.width * 0.4)
        for k in range(40):
            # Independent dead loads: nothing ever consumes them.
            yield load(pc, base + k * 4096 + 64, dep=NO_CONSUMER, region=1)
            for j in range(spacing):
                yield alu(pc + 8 + 4 * (j % 16), region=1)
            yield branch(pc + 4, region=1)

    workload = StreamWorkload("hidden", factory, {1: "hidden"})
    run = run_simulator(workload, seed=seed)
    truth = run.result.ground_truth
    mem_stalls = truth.memory_stalls()
    return Fig3Result(
        total_misses=truth.miss_count(),
        hidden_misses=truth.hidden_miss_count(),
        stalls=len(mem_stalls),
        max_misses_per_stall=max((len(s.miss_ids) for s in mem_stalls), default=0),
        detected=run.report.miss_count,
    )


def fig3b_overlapped_misses(seed: int = 0) -> Fig3Result:
    """Simultaneous I-fetch and data LLC misses: one stall, two misses."""

    def factory(config):
        base = 0x6000_0000
        code = 0x0100_0000
        for k in range(30):
            # A data load targeting a cold line ...
            yield load(0x1000, base + k * 8192 + 128, dep=6, region=1)
            # ... immediately followed by a jump to cold code, so the
            # I-fetch miss overlaps the data miss in flight.
            for j in range(24):
                yield alu(code + k * 4096 + j * 4, region=1)
            # Fill time between overlap events from warm code.
            for j in range(300):
                yield alu(0x2000 + 4 * (j % 16), region=1)

    workload = StreamWorkload("overlap", factory, {1: "overlap"})
    run = run_simulator(workload, seed=seed)
    truth = run.result.ground_truth
    mem_stalls = truth.memory_stalls()
    return Fig3Result(
        total_misses=truth.miss_count(),
        hidden_misses=truth.hidden_miss_count(),
        stalls=len(mem_stalls),
        max_misses_per_stall=max((len(s.miss_ids) for s in mem_stalls), default=0),
        detected=run.report.miss_count,
    )


# -- Fig. 4: hit vs miss on the physical path ----------------------------------


def fig4_physical_hit_vs_miss(seed: int = 0) -> Tuple[SignalFigure, SignalFigure]:
    """Fig. 2's experiment through the full EM chain on the Olimex model."""
    cfg = olimex()
    figures = []
    for resident in (True, False):
        run = run_device(
            _pointer_loop(60, resident), cfg, bandwidth_hz=40 * MHZ, seed=seed
        )
        half = len(run.signal) // 2
        durations = run.report.latencies_cycles()
        figures.append(
            SignalFigure(
                signal=run.signal[half:],
                sample_rate_hz=run.emprof.sample_rate_hz,
                annotations={
                    "detected_stalls": float(run.report.miss_count),
                    "mean_stall_ns": (
                        1e9 * float(durations.mean()) / cfg.clock_hz
                        if len(durations)
                        else 0.0
                    ),
                },
            )
        )
    return figures[0], figures[1]


# -- Fig. 5: refresh-coincident stalls ------------------------------------------


@dataclass(frozen=True)
class Fig5Result:
    """Refresh stall facts (Fig. 5 + Section III-C numbers)."""

    refresh_stalls: int
    mean_duration_us: float
    estimated_interval_us: Optional[float]
    excerpt: SignalFigure


def fig5_refresh(tm: int = 2000, seed: int = 0) -> Fig5Result:
    """Find refresh-coincident stalls on the Olimex model.

    The paper: such a stall lasts ~2-3 us and recurs at least every
    ~70 us while misses are flowing.
    """
    workload = Microbenchmark(
        total_misses=tm, consecutive_misses=tm, blank_iterations=8000,
        gap_instructions=2400,
    )
    run = run_device(workload, olimex(), bandwidth_hz=40 * MHZ, seed=seed)
    # Restrict to the marker-bracketed access window: the page-touch
    # prologue produces long MSHR blobs that are not refresh stalls.
    from .runner import microbenchmark_window

    report, _ = microbenchmark_window(run)
    stats = refresh_stats(report.stalls)
    clock = run.emprof.clock_hz
    refresh = [s for s in report.stalls if s.is_refresh]
    if refresh:
        s = refresh[0]
        lo = max(0, int(s.begin_sample) - 80)
        hi = min(len(run.signal), int(s.end_sample) + 80)
        excerpt = SignalFigure(
            signal=run.signal[lo:hi],
            sample_rate_hz=run.emprof.sample_rate_hz,
            annotations={"duration_us": 1e6 * s.duration_cycles / clock},
        )
    else:
        excerpt = SignalFigure(
            signal=run.signal[:0], sample_rate_hz=run.emprof.sample_rate_hz
        )
    return Fig5Result(
        refresh_stalls=stats.count,
        mean_duration_us=1e6 * stats.mean_duration_cycles / clock,
        estimated_interval_us=(
            1e6 * stats.estimated_interval_cycles / clock
            if stats.estimated_interval_cycles
            else None
        ),
        excerpt=excerpt,
    )


# -- Fig. 7 / Fig. 8: microbenchmark signal, simulator vs device ---------------


@dataclass(frozen=True)
class Fig7Result:
    """Whole-run microbenchmark signal plus a CM-group zoom."""

    overview: SignalFigure
    zoom: SignalFigure
    detected_in_window: int
    expected: int


def _micro_run_figure(run: ExperimentRun, workload: Microbenchmark) -> Fig7Result:
    from .runner import microbenchmark_window

    report, window = microbenchmark_window(run)
    stalls = report.stalls
    cm = workload.consecutive_misses
    if len(stalls) >= cm:
        lo = max(0, int(stalls[0].begin_sample) - 40)
        hi = min(len(run.signal), int(stalls[cm - 1].end_sample) + 40)
    else:
        lo, hi = window.begin_sample, min(window.begin_sample + 400, window.end_sample)
    return Fig7Result(
        overview=SignalFigure(
            signal=run.signal,
            sample_rate_hz=run.emprof.sample_rate_hz,
            annotations={
                "window_begin": float(window.begin_sample),
                "window_end": float(window.end_sample),
            },
        ),
        zoom=SignalFigure(
            signal=run.signal[lo:hi], sample_rate_hz=run.emprof.sample_rate_hz
        ),
        detected_in_window=report.miss_count,
        expected=workload.total_misses,
    )


def fig7_microbenchmark_signal(
    tm: int = 100, cm: int = 10, seed: int = 0
) -> Fig7Result:
    """The Fig. 7 capture: one microbenchmark run on the Olimex model."""
    workload = Microbenchmark(
        total_misses=tm, consecutive_misses=cm, blank_iterations=12_000,
        gap_instructions=120,
    )
    run = run_device(workload, olimex(), bandwidth_hz=40 * MHZ, seed=seed)
    return _micro_run_figure(run, workload)


def fig8_sim_vs_device(
    tm: int = 100, cm: int = 10, seed: int = 0
) -> Tuple[Fig7Result, Fig7Result]:
    """(simulator, device) signals of the same microbenchmark (Fig. 8)."""
    workload = Microbenchmark(
        total_misses=tm, consecutive_misses=cm, blank_iterations=12_000,
        gap_instructions=120,
    )
    sim_run = run_simulator(workload, seed=seed)
    dev_run = run_device(workload, olimex(), bandwidth_hz=40 * MHZ, seed=seed)
    return _micro_run_figure(sim_run, workload), _micro_run_figure(dev_run, workload)


# -- Fig. 10: dual probe --------------------------------------------------------


@dataclass(frozen=True)
class Fig10Result:
    """Simultaneous processor and memory signals (Fig. 10).

    ``coincidence`` is the fraction of detected processor-stall dips
    during which the memory probe shows activity - the check that
    dips really are memory accesses (Section V-D).
    """

    processor: SignalFigure
    memory: SignalFigure
    coincidence: float


def fig10_dual_probe(tm: int = 60, cm: int = 10, seed: int = 0) -> Fig10Result:
    """Processor + memory probes on the Olimex model, CM=10 groups."""
    workload = Microbenchmark(
        total_misses=tm, consecutive_misses=cm, blank_iterations=8_000,
        gap_instructions=160,
    )
    run = run_simulator(workload, config=olimex(), seed=seed)
    truth = run.result.ground_truth
    mem_signal = memory_probe_signal(
        truth,
        olimex().memory,
        clock_hz=run.result.config.clock_hz,
        bin_cycles=run.result.sample_period_cycles,
    )
    # Coincidence: every detected dip should overlap memory activity.
    threshold = 0.5 * (mem_signal.max() + mem_signal.min())
    hits = 0
    stalls = run.report.stalls
    for s in stalls:
        lo = max(0, int(s.begin_sample))
        hi = min(len(mem_signal), max(lo + 1, int(np.ceil(s.end_sample))))
        if np.any(mem_signal[lo:hi] > threshold):
            hits += 1
    coincidence = hits / len(stalls) if stalls else 0.0
    return Fig10Result(
        processor=SignalFigure(
            signal=run.signal, sample_rate_hz=run.result.sample_rate_hz
        ),
        memory=SignalFigure(
            signal=mem_signal, sample_rate_hz=run.result.sample_rate_hz
        ),
        coincidence=coincidence,
    )


# -- Fig. 11: stall-latency histograms ------------------------------------------


@dataclass(frozen=True)
class Fig11Result:
    """Latency histogram for one device."""

    device: str
    edges_cycles: np.ndarray
    counts: np.ndarray
    mean_cycles: float
    p99_cycles: float
    tail_fraction_600: float


def fig11_latency_histograms(
    benchmark: str = "mcf",
    devices: Sequence[str] = ("olimex", "alcatel", "samsung"),
    scale: float = 1.0,
    bin_cycles: float = 40.0,
    seed: int = 0,
) -> List[Fig11Result]:
    """Stall-latency histograms of mcf on the three devices (Fig. 11)."""
    out = []
    for name in devices:
        run = run_device(
            spec_workload(benchmark, scale=scale), by_name(name),
            bandwidth_hz=40 * MHZ, seed=seed,
        )
        lat = run.report.latencies_cycles()
        edges, counts = latency_histogram(lat, bin_cycles=bin_cycles)
        out.append(
            Fig11Result(
                device=name,
                edges_cycles=edges,
                counts=counts,
                mean_cycles=float(lat.mean()) if len(lat) else 0.0,
                p99_cycles=float(np.percentile(lat, 99)) if len(lat) else 0.0,
                tail_fraction_600=(
                    float(np.count_nonzero(lat >= 600)) / len(lat) if len(lat) else 0.0
                ),
            )
        )
    return out


# -- Fig. 12: measurement-bandwidth sweep ----------------------------------------


@dataclass(frozen=True)
class Fig12Point:
    """One bandwidth point for one device."""

    device: str
    bandwidth_hz: float
    detected_stalls: int
    mean_stall_cycles: float
    total_stall_cycles: float


def fig12_bandwidth_sweep(
    benchmark: str = "mcf",
    devices: Sequence[str] = ("alcatel", "olimex"),
    bandwidths_hz: Sequence[float] = PAPER_BANDWIDTHS_HZ,
    scale: float = 1.0,
    seed: int = 0,
) -> List[Fig12Point]:
    """Effect of 20-160 MHz measurement bandwidth (Fig. 12).

    Uses fine-grained power bins (5 cycles) so every bandwidth up to
    160 MHz is a true decimation of the source trace.
    """
    points = []
    for name in devices:
        device = by_name(name, bin_cycles=5)
        workload = spec_workload(benchmark, scale=scale)
        for bw in bandwidths_hz:
            run = run_device(workload, device, bandwidth_hz=bw, seed=seed)
            lat = run.report.latencies_cycles()
            points.append(
                Fig12Point(
                    device=name,
                    bandwidth_hz=float(bw),
                    detected_stalls=run.report.miss_count,
                    mean_stall_cycles=float(lat.mean()) if len(lat) else 0.0,
                    total_stall_cycles=float(lat.sum()) if len(lat) else 0.0,
                )
            )
    return points


# -- Fig. 13: boot profile --------------------------------------------------------


@dataclass(frozen=True)
class Fig13Run:
    """Miss-rate timeline of one boot."""

    run_id: int
    time_ms: np.ndarray
    miss_rate: np.ndarray
    total_misses: int


def fig13_boot_profile(
    seeds: Sequence[int] = (0, 1),
    scale: float = 1.0,
    bin_ms: float = 0.05,
    seed: int = 0,
) -> List[Fig13Run]:
    """LLC miss rate over time for two boots of the IoT device."""
    runs = []
    cfg = olimex()
    for run_seed in seeds:
        run = run_device(
            BootWorkload(seed=run_seed, scale=scale), cfg,
            bandwidth_hz=40 * MHZ, seed=seed,
        )
        bin_cycles = bin_ms * 1e-3 * cfg.clock_hz
        starts, counts = run.report.miss_rate_timeline(bin_cycles)
        runs.append(
            Fig13Run(
                run_id=run_seed,
                time_ms=1e3 * starts / cfg.clock_hz,
                miss_rate=counts / bin_ms,  # misses per ms
                total_misses=run.report.miss_count,
            )
        )
    return runs


# -- Fig. 14: parser spectrogram ---------------------------------------------------


@dataclass(frozen=True)
class Fig14Result:
    """Spectrogram + attributed region timeline for parser."""

    spectrogram: Spectrogram
    timeline: RegionTimeline
    regions_found: Tuple[str, ...]


def fig14_parser_spectrogram(
    scale: float = 1.0, seed: int = 0, window_samples: int = 128
) -> Fig14Result:
    """The Fig. 14 spectrogram with its three visible regions."""
    cfg = olimex()
    parser = spec_workload("parser", scale=scale)
    profiler = SpectralProfiler(window_samples=window_samples, smoothing_frames=7)
    from ..workloads.spec import SpecWorkload

    for phase in parser.phases:
        solo = SpecWorkload(f"train_{phase.region}", [phase], seed=parser.seed)
        train = run_device(solo, cfg, bandwidth_hz=40 * MHZ, seed=seed)
        profiler.train(phase.region, train.signal, train.capture.sample_rate_hz)
    run = run_device(parser, cfg, bandwidth_hz=40 * MHZ, seed=seed)
    spectrogram = compute_spectrogram(
        run.signal, run.capture.sample_rate_hz, window_samples
    )
    timeline = profiler.attribute(run.signal, run.capture.sample_rate_hz)
    found = tuple(dict.fromkeys(seg.region for seg in timeline.segments))
    return Fig14Result(
        spectrogram=spectrogram, timeline=timeline, regions_found=found
    )
