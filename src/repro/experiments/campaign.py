"""Resilient measurement campaigns: checkpointed multi-run execution.

A campaign is a named list of runs (acquire a capture, profile it,
persist the report).  Physical campaigns are long - hours of bench
time - and die for reasons unrelated to the science: a wedged SDR
driver, a full disk, someone tripping over the probe.  This module
makes a killed campaign cheap to restart:

* every run is **isolated** - one run failing (typed
  :class:`repro.errors.AcquisitionError` /
  :class:`repro.errors.CorruptCaptureError`) is recorded and the
  campaign moves on instead of unwinding;
* transient failures are retried per
  :class:`repro.experiments.runner.RetryPolicy` before the run is
  declared failed;
* progress is **checkpointed** - each completed run's profile report
  is written to the campaign directory and the manifest is updated
  with an atomic replace, so ``kill -9`` between any two syscalls
  leaves a manifest that is either the old or the new state, never a
  torn one.  :meth:`Campaign.execute` on the same directory skips
  runs already marked ``done`` and re-attempts the rest;
* execution is **observable** - every manifest update carries a
  ``progress`` heartbeat (counts, total planned, last run, wall-clock
  timestamp), each run's entry records its wall time and finish time,
  and a campaign constructed with ``ledger=...`` appends one
  :class:`repro.obs.ledger.RunRecord` per item (kind
  ``campaign-run``) plus a summary record (kind ``campaign``) per
  :meth:`Campaign.execute` pass - so a long bench session can be
  watched from the outside (``repro obs ledger``/``dashboard``)
  without touching the process.

The manifest (``manifest.json``) is deliberately human-readable: a
campaign's state can be audited, or a run forced to re-execute by
deleting its entry, with a text editor.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from .. import io as repro_io
from ..core.events import ProfileReport
from ..core.profiler import Emprof, EmprofConfig
from ..errors import AcquisitionError, CampaignError
from ..obs import metrics as _metrics, trace as _trace
from ..obs import ledger as obs_ledger
from .runner import RetryPolicy, acquire_with_retry

_MANIFEST_NAME = "manifest.json"
_MANIFEST_FORMAT = "emprof-campaign-v1"

_RUNS_COMPLETED = _metrics.counter(
    "campaign_runs_completed_total", "campaign runs that produced a report"
)
_RUNS_FAILED = _metrics.counter(
    "campaign_runs_failed_total", "campaign runs abandoned after retries"
)
_RUNS_SKIPPED = _metrics.counter(
    "campaign_runs_skipped_total", "campaign runs skipped on resume (already done)"
)


@dataclass(frozen=True)
class RunSpec:
    """One planned measurement: a name plus a capture source factory.

    Attributes:
        name: unique within the campaign; doubles as the report's
            filename stem, so keep it filesystem-safe.
        source_factory: zero-argument callable returning a fresh
            ``SignalSource``; called once per *attempt* so a flaky
            source is rebuilt rather than reused mid-failure.
        config: profiler configuration for this run.
    """

    name: str
    source_factory: Callable[[], object]
    config: Optional[EmprofConfig] = None


@dataclass
class RunOutcome:
    """What happened to one run during :meth:`Campaign.execute`."""

    name: str
    status: str  # "done" | "failed" | "skipped"
    report: Optional[ProfileReport] = None
    error: Optional[str] = None
    wall_time_s: float = 0.0


@dataclass
class CampaignResult:
    """Aggregate outcome of one :meth:`Campaign.execute` pass."""

    outcomes: List[RunOutcome] = field(default_factory=list)

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {"done": 0, "failed": 0, "skipped": 0}
        for outcome in self.outcomes:
            out[outcome.status] = out.get(outcome.status, 0) + 1
        return out

    @property
    def completed(self) -> bool:
        """True when every run has a persisted report (done or skipped)."""
        return all(o.status in ("done", "skipped") for o in self.outcomes)


class Campaign:
    """Checkpointed executor for a list of :class:`RunSpec`.

    Args:
        directory: campaign state directory; created if missing.  The
            manifest and one ``<run>.report.json`` per completed run
            live here.
        retry: retry policy for transient acquisition failures.
        sleep: injectable backoff sleep (see
            :func:`repro.experiments.runner.acquire_with_retry`).
        ledger: optional run ledger (path or
            :class:`repro.obs.ledger.RunLedger`); when given, every
            executed run appends a ``campaign-run`` record and each
            :meth:`execute` pass appends a ``campaign`` summary.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        retry: Optional[RetryPolicy] = None,
        sleep=None,
        ledger: Optional[Union[str, Path, obs_ledger.RunLedger]] = None,
    ):
        self.directory = Path(directory)
        self.retry = retry if retry is not None else RetryPolicy()
        self._sleep = sleep
        if ledger is None or isinstance(ledger, obs_ledger.RunLedger):
            self.ledger = ledger
        else:
            self.ledger = obs_ledger.RunLedger(ledger)
        self.directory.mkdir(parents=True, exist_ok=True)

    # -- manifest ------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.directory / _MANIFEST_NAME

    def load_manifest(self) -> Dict[str, dict]:
        """Per-run state map; empty when the campaign is fresh."""
        if not self.manifest_path.exists():
            return {}
        try:
            payload = json.loads(self.manifest_path.read_text())
        except json.JSONDecodeError as exc:
            raise CampaignError(
                f"unreadable campaign manifest {self.manifest_path}: {exc}"
            ) from exc
        if payload.get("format") != _MANIFEST_FORMAT:
            raise CampaignError(
                f"not an EMPROF campaign manifest: {self.manifest_path}"
            )
        return payload.get("runs", {})

    def load_progress(self) -> Dict[str, object]:
        """The manifest's heartbeat record; empty for fresh campaigns.

        Keys (when present): ``updated_unix_s``, ``counts`` (done /
        failed / skipped so far this pass), ``total_planned``, and
        ``last_run``.  An external watcher can poll this to tell a
        live campaign from a wedged one without signalling the
        process.
        """
        if not self.manifest_path.exists():
            return {}
        try:
            payload = json.loads(self.manifest_path.read_text())
        except json.JSONDecodeError as exc:
            raise CampaignError(
                f"unreadable campaign manifest {self.manifest_path}: {exc}"
            ) from exc
        progress = payload.get("progress", {})
        return progress if isinstance(progress, dict) else {}

    def _save_manifest(
        self, runs: Dict[str, dict], progress: Optional[Dict[str, object]] = None
    ) -> None:
        """Atomically replace the manifest (tmp + ``os.replace``)."""
        payload: Dict[str, object] = {"format": _MANIFEST_FORMAT, "runs": runs}
        if progress is not None:
            payload["progress"] = progress
        tmp = self.manifest_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
        os.replace(tmp, self.manifest_path)

    def report_path(self, name: str) -> Path:
        return self.directory / f"{name}.report.json"

    def load_report(self, name: str) -> ProfileReport:
        """Load the persisted report of a completed run."""
        return repro_io.load_report(self.report_path(name))

    # -- execution -----------------------------------------------------------

    def execute(self, specs: List[RunSpec]) -> CampaignResult:
        """Run every spec, resuming from the manifest.

        Runs already marked ``done`` with their report file present
        are skipped; everything else (fresh, previously failed, or
        interrupted mid-run) is attempted.  A failing run never stops
        the campaign - its error is recorded in the manifest and the
        outcome list.
        """
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise CampaignError("run names must be unique within a campaign")
        runs = self.load_manifest()
        result = CampaignResult()
        pass_begin = time.perf_counter()
        # One reusable ledger handle for the whole pass: a 100-run
        # campaign would otherwise pay an open+fsync per record.  The
        # manifest (atomic replace per run) stays the crash-recovery
        # source of truth, so the fsync is deferred to pass end.
        ledger_ctx = (
            self.ledger.appender(fsync_each=False)
            if self.ledger is not None
            else contextlib.nullcontext(None)
        )
        with ledger_ctx as ledger_sink:
            self._execute_pass(specs, runs, result, ledger_sink, pass_begin)
        return result

    def _execute_pass(
        self,
        specs: List[RunSpec],
        runs: Dict[str, dict],
        result: CampaignResult,
        ledger_sink: Optional[obs_ledger.LedgerAppender],
        pass_begin: float,
    ) -> None:
        for spec in specs:
            state = runs.get(spec.name, {})
            if state.get("status") == "done" and self.report_path(spec.name).exists():
                _RUNS_SKIPPED.inc()
                result.outcomes.append(
                    RunOutcome(name=spec.name, status="skipped")
                )
                continue
            outcome = self._execute_one(spec)
            runs[spec.name] = {
                "status": outcome.status,
                "wall_time_s": outcome.wall_time_s,
                "finished_unix_s": time.time(),
            }
            if outcome.error is not None:
                runs[spec.name]["error"] = outcome.error
            result.outcomes.append(outcome)
            self._save_manifest(
                runs, progress=self._progress(result, len(specs), spec.name)
            )
            self._ledger_run(spec, outcome, ledger_sink)
        self._ledger_summary(
            result, time.perf_counter() - pass_begin, ledger_sink
        )

    def _progress(
        self, result: CampaignResult, total_planned: int, last_run: str
    ) -> Dict[str, object]:
        """The heartbeat written alongside every manifest update."""
        return {
            "updated_unix_s": time.time(),
            "counts": result.counts(),
            "total_planned": total_planned,
            "last_run": last_run,
        }

    def _ledger_run(
        self,
        spec: RunSpec,
        outcome: RunOutcome,
        sink: Optional[obs_ledger.LedgerAppender] = None,
    ) -> None:
        """Append one ``campaign-run`` record, when a ledger is wired."""
        if self.ledger is None:
            return
        writer = sink if sink is not None else self.ledger
        report = outcome.report
        quality = (
            dataclasses.asdict(report.quality)
            if report is not None and report.quality is not None
            else None
        )
        extra: Dict[str, object] = {"status": outcome.status}
        if outcome.error is not None:
            extra["error"] = outcome.error
        if report is not None:
            extra["miss_count"] = report.miss_count
            extra["low_confidence_count"] = report.low_confidence_count
            extra["stall_fraction"] = report.stall_fraction
        writer.append(
            obs_ledger.record(
                kind="campaign-run",
                label=f"{self.directory.name}/{spec.name}",
                wall_time_s=outcome.wall_time_s,
                config=spec.config,
                quality=quality,
                extra=extra,
            )
        )

    def _ledger_summary(
        self,
        result: CampaignResult,
        wall_time_s: float,
        sink: Optional[obs_ledger.LedgerAppender] = None,
    ) -> None:
        """Append one ``campaign`` summary record per execute() pass."""
        if self.ledger is None:
            return
        writer = sink if sink is not None else self.ledger
        writer.append(
            obs_ledger.record(
                kind="campaign",
                label=self.directory.name,
                wall_time_s=wall_time_s,
                extra={
                    "counts": result.counts(),
                    "completed": result.completed,
                },
            )
        )

    def _execute_one(self, spec: RunSpec) -> RunOutcome:
        """Acquire, profile, and persist one run, absorbing failures."""
        begin = time.perf_counter()
        with _trace.span("campaign_run", run=spec.name):
            try:
                capture = self._acquire(spec)
                report = Emprof.from_capture(
                    capture, config=spec.config
                ).profile()
            except AcquisitionError as exc:
                _RUNS_FAILED.inc()
                return RunOutcome(
                    name=spec.name,
                    status="failed",
                    error=f"{type(exc).__name__}: {exc}",
                    wall_time_s=time.perf_counter() - begin,
                )
            # Persist the report before the manifest marks the run
            # done: a crash between the two writes re-runs the run,
            # never trusts a missing report.
            repro_io.save_report(self.report_path(spec.name), report)
        _RUNS_COMPLETED.inc()
        return RunOutcome(
            name=spec.name,
            status="done",
            report=report,
            wall_time_s=time.perf_counter() - begin,
        )

    def _acquire(self, spec: RunSpec):
        kwargs = {} if self._sleep is None else {"sleep": self._sleep}
        return acquire_with_retry(
            spec.source_factory(), policy=self.retry, **kwargs
        )
