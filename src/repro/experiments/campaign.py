"""Resilient measurement campaigns: checkpointed multi-run execution.

A campaign is a named list of runs (acquire a capture, profile it,
persist the report).  Physical campaigns are long - hours of bench
time - and die for reasons unrelated to the science: a wedged SDR
driver, a full disk, someone tripping over the probe.  This module
makes a killed campaign cheap to restart:

* every run is **isolated** - one run failing (typed
  :class:`repro.errors.AcquisitionError` /
  :class:`repro.errors.CorruptCaptureError`) is recorded and the
  campaign moves on instead of unwinding;
* transient failures are retried per
  :class:`repro.experiments.runner.RetryPolicy` before the run is
  declared failed;
* progress is **checkpointed** - each completed run's profile report
  is written to the campaign directory and the manifest is updated
  with an atomic replace, so ``kill -9`` between any two syscalls
  leaves a manifest that is either the old or the new state, never a
  torn one.  :meth:`Campaign.execute` on the same directory skips
  runs already marked ``done`` and re-attempts the rest;
* execution is **observable** - every manifest update carries a
  ``progress`` heartbeat (counts, total planned, last run, wall-clock
  timestamp), each run's entry records its wall time and finish time,
  and a campaign constructed with ``ledger=...`` appends one
  :class:`repro.obs.ledger.RunRecord` per item (kind
  ``campaign-run``) plus a summary record (kind ``campaign``) per
  :meth:`Campaign.execute` pass - so a long bench session can be
  watched from the outside (``repro obs ledger``/``dashboard``)
  without touching the process;
* multi-worker execution is **supervised** - with ``workers > 1`` the
  parent runs a dynamic job queue (see :class:`CampaignExecution`):
  each forked worker leases one run at a time, the supervisor watches
  per-worker heartbeats and per-job timeouts, and a dead, hung, or
  overdue worker is killed, respawned, and its leased run *requeued*
  with an ``attempts`` counter persisted in the manifest (exponential
  backoff via :class:`~repro.experiments.runner.RetryPolicy`).  A run
  whose worker dies ``max_attempts`` times is quarantined to a
  ``poisoned`` manifest state so one bad spec can never wedge the
  campaign.  See ``docs/service.md`` for the state machine and the
  lease/requeue invariants.

Manifest run states: ``done`` / ``failed`` (the run itself failed;
not requeued) / ``running`` (leased at the time of the last
checkpoint) / ``interrupted`` (its worker died or hung; will be
re-leased) / ``poisoned`` (quarantined).  The manifest
(``manifest.json``) is deliberately human-readable: a campaign's
state can be audited, or a poisoned run forced to re-execute by
deleting its entry, with a text editor.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import multiprocessing
import os
import queue as _queue
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from .. import io as repro_io
from ..core.events import ProfileReport
from ..core.profiler import Emprof, EmprofConfig
from ..errors import AcquisitionError, CampaignError
from ..obs import metrics as _metrics, trace as _trace
from ..obs import ledger as obs_ledger
from ..obs import tracectx
from ..obs.events import NDJSONFileSink, SocketSink, bus as _event_bus
from ..obs.runtime import obs_enabled
from .runner import RetryPolicy, acquire_with_retry

_MANIFEST_NAME = "manifest.json"
_MANIFEST_FORMAT = "emprof-campaign-v1"
_EVENTS_NAME = "events.ndjsonl"

#: Cadence of campaign worker ``heartbeat`` events.
DEFAULT_HEARTBEAT_INTERVAL_S = 0.25

_RUNS_COMPLETED = _metrics.counter(
    "campaign_runs_completed_total", "campaign runs that produced a report"
)
_RUNS_FAILED = _metrics.counter(
    "campaign_runs_failed_total", "campaign runs abandoned after retries"
)
_RUNS_SKIPPED = _metrics.counter(
    "campaign_runs_skipped_total", "campaign runs skipped on resume (already done)"
)
_RUNS_REQUEUED = _metrics.counter(
    "campaign_runs_requeued_total",
    "supervised runs re-leased after their worker died, hung, or timed out",
)
_RUNS_POISONED = _metrics.counter(
    "campaign_runs_poisoned_total",
    "supervised runs quarantined after max_attempts interrupted attempts",
)


@dataclass(frozen=True)
class RunSpec:
    """One planned measurement: a name plus a capture source factory.

    Attributes:
        name: unique within the campaign; doubles as the report's
            filename stem, so keep it filesystem-safe.
        source_factory: zero-argument callable returning a fresh
            ``SignalSource``; called once per *attempt* so a flaky
            source is rebuilt rather than reused mid-failure.
        config: profiler configuration for this run.
        timeout_s: supervised-execution budget for one attempt of this
            run; overrides ``Campaign.job_timeout_s``.  A leased run
            past its deadline gets its worker killed and is requeued.
            None defers to the campaign-wide default (which may also
            be None: no deadline).
    """

    name: str
    source_factory: Callable[[], object]
    config: Optional[EmprofConfig] = None
    timeout_s: Optional[float] = None


@dataclass
class RunOutcome:
    """What happened to one run during :meth:`Campaign.execute`.

    Attributes:
        status: ``done`` / ``failed`` / ``skipped``, plus the
            supervised states ``poisoned`` (quarantined after
            ``max_attempts``) and ``interrupted`` (cancelled while
            leased; will be re-attempted by the next pass).
        attempts: how many times execution of this run has *started*,
            including interrupted starts from earlier passes.
        interrupted: True when an earlier attempt of this run was cut
            short by a dead/hung worker - i.e. this outcome resumes
            (or quarantines) an interrupted run rather than a fresh
            one.
    """

    name: str
    status: str
    report: Optional[ProfileReport] = None
    error: Optional[str] = None
    wall_time_s: float = 0.0
    attempts: int = 1
    interrupted: bool = False


@dataclass
class CampaignResult:
    """Aggregate outcome of one :meth:`Campaign.execute` pass."""

    outcomes: List[RunOutcome] = field(default_factory=list)

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {"done": 0, "failed": 0, "skipped": 0}
        for outcome in self.outcomes:
            out[outcome.status] = out.get(outcome.status, 0) + 1
        return out

    def interrupted(self) -> Dict[str, int]:
        """Runs that resumed (or quarantined) an interrupted attempt.

        Maps run name to its persisted ``attempts`` counter - the
        supervised-execution audit trail a fleet operator reads to spot
        specs that keep killing workers.
        """
        return {
            o.name: o.attempts for o in self.outcomes if o.interrupted
        }

    @property
    def completed(self) -> bool:
        """True when every run has a persisted report (done or skipped)."""
        return all(o.status in ("done", "skipped") for o in self.outcomes)


class Campaign:
    """Checkpointed executor for a list of :class:`RunSpec`.

    Args:
        directory: campaign state directory; created if missing.  The
            manifest and one ``<run>.report.json`` per completed run
            live here.
        retry: retry policy for transient acquisition failures.
        sleep: injectable backoff sleep (see
            :func:`repro.experiments.runner.acquire_with_retry`).
        ledger: optional run ledger (path or
            :class:`repro.obs.ledger.RunLedger`); when given, every
            executed run appends a ``campaign-run`` record and each
            :meth:`execute` pass appends a ``campaign`` summary.
        workers: processes to execute runs in.  1 (default) keeps the
            in-process serial path; more runs the supervised dynamic
            job queue (:class:`CampaignExecution`): forked workers
            lease one run at a time, write per-run
            ``<name>.outcome.json`` checkpoints, and are killed,
            respawned, and their leased run requeued when they die,
            stop heartbeating, or blow the per-job timeout.  Workers
            never touch the manifest, so crash semantics are
            unchanged: a run without both its report and outcome file
            is simply re-attempted.
        status_port: when given, :meth:`execute`/:meth:`start` serve
            the line-JSON status protocol (:mod:`repro.obs.statusd`)
            on this port for the duration of the pass; 0 picks an
            ephemeral port, published as :attr:`status_address`.
        heartbeat_interval_s: cadence of worker ``heartbeat`` events
            and of the supervisor's control-channel liveness beats.
        heartbeat_timeout_s: how long a *leased* worker may go without
            a beat before the supervisor declares it hung, kills it,
            and requeues its run.  None derives a default from the
            interval (``max(10 * heartbeat_interval_s, 2.0)``).
        job_timeout_s: campaign-wide per-attempt budget for a leased
            run (overridable per spec via ``RunSpec.timeout_s``); None
            means no deadline.
        max_attempts: total execution starts a run is allowed before
            an interrupted run is quarantined as ``poisoned``.
        flight: when True, every run is profiled with an engine flight
            recorder attached: the persisted report carries per-stall
            evidence (``repro explain <run>.report.json`` works on it)
            and the raw decision events are spilled next to it as
            ``<run>.flight``.
        flight_retain: cap on how many ``.flight`` sidecars the
            campaign directory keeps (oldest deleted first); None
            keeps all.  Reports always keep their evidence — only the
            raw event sidecars are pruned.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        retry: Optional[RetryPolicy] = None,
        sleep=None,
        ledger: Optional[Union[str, Path, obs_ledger.RunLedger]] = None,
        workers: int = 1,
        status_port: Optional[int] = None,
        heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
        heartbeat_timeout_s: Optional[float] = None,
        job_timeout_s: Optional[float] = None,
        max_attempts: int = 3,
        flight: bool = False,
        flight_retain: Optional[int] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if flight_retain is not None and flight_retain < 1:
            raise ValueError("flight_retain must be at least 1")
        if heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be positive")
        if heartbeat_timeout_s is not None and heartbeat_timeout_s <= 0:
            raise ValueError("heartbeat_timeout_s must be positive")
        if job_timeout_s is not None and job_timeout_s <= 0:
            raise ValueError("job_timeout_s must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.directory = Path(directory)
        self.retry = retry if retry is not None else RetryPolicy()
        self._sleep = sleep
        if ledger is None or isinstance(ledger, obs_ledger.RunLedger):
            self.ledger = ledger
        else:
            self.ledger = obs_ledger.RunLedger(ledger)
        self.workers = int(workers)
        self.status_port = status_port
        self.heartbeat_interval_s = float(heartbeat_interval_s)
        self.heartbeat_timeout_s = (
            None if heartbeat_timeout_s is None else float(heartbeat_timeout_s)
        )
        self.job_timeout_s = (
            None if job_timeout_s is None else float(job_timeout_s)
        )
        self.max_attempts = int(max_attempts)
        self.flight = bool(flight)
        self.flight_retain = (
            None if flight_retain is None else int(flight_retain)
        )
        #: ``(host, port)`` of the live status server, set while a
        #: pass with ``status_port`` is executing.
        self.status_address: Optional[Tuple[str, int]] = None
        self.directory.mkdir(parents=True, exist_ok=True)

    @property
    def effective_heartbeat_timeout_s(self) -> float:
        """The hang deadline the supervisor actually enforces."""
        if self.heartbeat_timeout_s is not None:
            return self.heartbeat_timeout_s
        return max(10.0 * self.heartbeat_interval_s, 2.0)

    # -- manifest ------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.directory / _MANIFEST_NAME

    @property
    def events_path(self) -> Path:
        """The campaign's shared NDJSON event stream (all processes)."""
        return self.directory / _EVENTS_NAME

    def outcome_path(self, name: str) -> Path:
        """A worker's per-run checkpoint file."""
        return self.directory / f"{name}.outcome.json"

    def load_manifest(self) -> Dict[str, dict]:
        """Per-run state map; empty when the campaign is fresh."""
        if not self.manifest_path.exists():
            return {}
        try:
            payload = json.loads(self.manifest_path.read_text())
        except json.JSONDecodeError as exc:
            raise CampaignError(
                f"unreadable campaign manifest {self.manifest_path}: {exc}"
            ) from exc
        if payload.get("format") != _MANIFEST_FORMAT:
            raise CampaignError(
                f"not an EMPROF campaign manifest: {self.manifest_path}"
            )
        return payload.get("runs", {})

    def load_progress(self) -> Dict[str, object]:
        """The manifest's heartbeat record; empty for fresh campaigns.

        Keys (when present): ``updated_unix_s``, ``counts`` (done /
        failed / skipped so far this pass), ``total_planned``, and
        ``last_run``.  An external watcher can poll this to tell a
        live campaign from a wedged one without signalling the
        process.
        """
        if not self.manifest_path.exists():
            return {}
        try:
            payload = json.loads(self.manifest_path.read_text())
        except json.JSONDecodeError as exc:
            raise CampaignError(
                f"unreadable campaign manifest {self.manifest_path}: {exc}"
            ) from exc
        progress = payload.get("progress", {})
        return progress if isinstance(progress, dict) else {}

    def _save_manifest(
        self, runs: Dict[str, dict], progress: Optional[Dict[str, object]] = None
    ) -> None:
        """Atomically replace the manifest (tmp + ``os.replace``)."""
        payload: Dict[str, object] = {"format": _MANIFEST_FORMAT, "runs": runs}
        if progress is not None:
            payload["progress"] = progress
        tmp = self.manifest_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
        os.replace(tmp, self.manifest_path)

    def report_path(self, name: str) -> Path:
        return self.directory / f"{name}.report.json"

    def flight_path(self, name: str) -> Path:
        """A run's spilled flight-recording sidecar (``flight=True``)."""
        return self.directory / f"{name}.flight"

    def _prune_flights(self) -> None:
        """Enforce ``flight_retain``: drop the oldest ``.flight`` files.

        Best-effort: concurrent workers may race to delete the same
        file, so a vanished path is not an error.
        """
        if self.flight_retain is None:
            return
        sidecars = sorted(
            self.directory.glob("*.flight"),
            key=lambda p: p.stat().st_mtime,
            reverse=True,
        )
        for stale in sidecars[self.flight_retain:]:
            try:
                stale.unlink()
            except FileNotFoundError:
                pass

    def load_report(self, name: str) -> ProfileReport:
        """Load the persisted report of a completed run."""
        return repro_io.load_report(self.report_path(name))

    # -- execution -----------------------------------------------------------

    def execute(self, specs: List[RunSpec]) -> CampaignResult:
        """Run every spec, resuming from the manifest.

        Runs already marked ``done`` with their report file present
        are skipped; everything else (fresh, previously failed, or
        interrupted mid-run) is attempted.  A failing run never stops
        the campaign - its error is recorded in the manifest and the
        outcome list.

        With ``workers > 1`` this is ``self.start(specs).join()``:
        the specs flow through the supervised job queue
        (:class:`CampaignExecution`) across forked, watchdogged
        worker processes.
        """
        self._check_names(specs)
        if self.workers > 1:
            return self.start(specs).join()
        runs = self.load_manifest()
        result = CampaignResult()
        pass_begin = time.perf_counter()
        # One reusable ledger handle for the whole pass: a 100-run
        # campaign would otherwise pay an open+fsync per record.  The
        # manifest (atomic replace per run) stays the crash-recovery
        # source of truth, so the fsync is deferred to pass end.
        ledger_ctx = (
            self.ledger.appender(fsync_each=False)
            if self.ledger is not None
            else contextlib.nullcontext(None)
        )
        with self._observation(len(specs)):
            with ledger_ctx as ledger_sink:
                self._execute_pass(specs, runs, result, ledger_sink, pass_begin)
        return result

    def start(self, specs: List[RunSpec]) -> "CampaignExecution":
        """Launch the pass across ``self.workers`` forked processes.

        Returns a :class:`CampaignExecution` handle immediately; call
        :meth:`CampaignExecution.join` for the merged result.  While
        the pass runs, each worker streams events (heartbeats, run
        lifecycle, per-chunk telemetry) into the campaign's shared
        NDJSON event file and - when ``status_port`` is set - into the
        parent's status server, so the pass can be watched live.
        """
        self._check_names(specs)
        return CampaignExecution(self, list(specs)).start()

    @staticmethod
    def _check_names(specs: List[RunSpec]) -> None:
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise CampaignError("run names must be unique within a campaign")

    @contextlib.contextmanager
    def _observation(self, total_planned: int):
        """Event/status scaffolding around one execute pass.

        Attaches an NDJSON sink for the campaign's event file (when
        observability is on), serves the status protocol on
        ``status_port`` (when set), and brackets the pass in
        ``run_started``/``run_finished`` events.  All of it tears back
        down when the pass ends; with observability off and no status
        port this is a no-op.
        """
        sink = None
        server = None
        if obs_enabled():
            sink = _event_bus.add_sink(NDJSONFileSink(self.events_path))
        if self.status_port is not None:
            from ..obs import statusd

            server = statusd.StatusServer(
                _event_bus,
                metrics=_metrics,
                port=self.status_port,
                extra_status=lambda: self._live_status(total_planned),
            ).start()
            self.status_address = server.address
        _event_bus.emit(
            "run_started",
            op="campaign",
            campaign=self.directory.name,
            total_planned=total_planned,
            workers=self.workers,
        )
        try:
            yield server
        finally:
            _event_bus.emit(
                "run_finished", op="campaign", campaign=self.directory.name
            )
            _event_bus.flush(timeout_s=2.0)
            if server is not None:
                server.close()
                self.status_address = None
            if sink is not None:
                _event_bus.remove_sink(sink)
                sink.close()

    def _live_status(self, total_planned: int) -> Dict[str, object]:
        """The ``status`` response's campaign block (cheap to compute)."""
        try:
            progress = self.load_progress()
        except CampaignError:
            progress = {}
        return {
            "campaign": self.directory.name,
            "total_planned": total_planned,
            "progress": progress,
            "worker_outcomes": len(
                list(self.directory.glob("*.outcome.json"))
            ),
        }

    def _execute_pass(
        self,
        specs: List[RunSpec],
        runs: Dict[str, dict],
        result: CampaignResult,
        ledger_sink: Optional[obs_ledger.LedgerAppender],
        pass_begin: float,
    ) -> None:
        for spec in specs:
            state = runs.get(spec.name, {})
            prior_status = state.get("status")
            prior_attempts = int(state.get("attempts", 0) or 0)
            if prior_status == "done" and self.report_path(spec.name).exists():
                _RUNS_SKIPPED.inc()
                result.outcomes.append(
                    RunOutcome(name=spec.name, status="skipped")
                )
                continue
            if prior_status == "poisoned":
                # Quarantine is sticky across passes; delete the
                # manifest entry to force a re-run.
                result.outcomes.append(
                    RunOutcome(
                        name=spec.name,
                        status="poisoned",
                        error=state.get("error"),
                        attempts=prior_attempts,
                        interrupted=True,
                    )
                )
                continue
            # A run left "running" by a killed pass is an interrupted
            # run, not a fresh one: its attempts counter carries over.
            was_interrupted = prior_status in ("running", "interrupted")
            if was_interrupted and prior_attempts >= self.max_attempts:
                outcome = self._quarantine_entry(
                    runs,
                    spec.name,
                    prior_attempts,
                    reason=(
                        f"quarantined after {prior_attempts} interrupted "
                        "attempts"
                    ),
                )
                result.outcomes.append(outcome)
                self._save_manifest(
                    runs,
                    progress=self._progress(result, len(specs), spec.name),
                )
                self._ledger_incident(
                    "campaign-quarantine",
                    spec.name,
                    prior_attempts,
                    str(outcome.error),
                    sink=ledger_sink,
                )
                continue
            attempts = prior_attempts + 1
            # Pre-mark the lease: a kill -9 between here and the final
            # manifest write leaves "running" + attempts behind, which
            # the next pass surfaces as an interrupted run.
            runs[spec.name] = {
                "status": "running",
                "attempts": attempts,
                "started_unix_s": time.time(),
            }
            self._save_manifest(
                runs, progress=self._progress(result, len(specs), spec.name)
            )
            outcome = self._execute_one(
                spec, attempts=attempts, interrupted=was_interrupted
            )
            runs[spec.name] = {
                "status": outcome.status,
                "attempts": attempts,
                "wall_time_s": outcome.wall_time_s,
                "finished_unix_s": time.time(),
            }
            if outcome.error is not None:
                runs[spec.name]["error"] = outcome.error
            result.outcomes.append(outcome)
            self._save_manifest(
                runs, progress=self._progress(result, len(specs), spec.name)
            )
            _event_bus.emit(
                "checkpoint_written",
                target="manifest",
                run=spec.name,
                status=outcome.status,
            )
            _event_bus.emit("heartbeat", run=spec.name)
            self._ledger_run(spec, outcome, ledger_sink)
        self._ledger_summary(
            result, time.perf_counter() - pass_begin, ledger_sink
        )

    def _quarantine_entry(
        self, runs: Dict[str, dict], name: str, attempts: int, reason: str
    ) -> RunOutcome:
        """Poison one manifest entry; returns the matching outcome."""
        runs[name] = {
            "status": "poisoned",
            "attempts": attempts,
            "error": reason,
            "finished_unix_s": time.time(),
        }
        _RUNS_POISONED.inc()
        _event_bus.emit(
            "job_quarantined",
            run=name,
            attempts=attempts,
            reason=reason,
            campaign=self.directory.name,
        )
        return RunOutcome(
            name=name,
            status="poisoned",
            error=reason,
            attempts=attempts,
            interrupted=True,
        )

    def _progress(
        self, result: CampaignResult, total_planned: int, last_run: str
    ) -> Dict[str, object]:
        """The heartbeat written alongside every manifest update."""
        return {
            "updated_unix_s": time.time(),
            "counts": result.counts(),
            "total_planned": total_planned,
            "last_run": last_run,
        }

    def _ledger_run(
        self,
        spec: RunSpec,
        outcome: RunOutcome,
        sink: Optional[obs_ledger.LedgerAppender] = None,
    ) -> None:
        """Append one ``campaign-run`` record, when a ledger is wired."""
        if self.ledger is None:
            return
        writer = sink if sink is not None else self.ledger
        report = outcome.report
        quality = (
            dataclasses.asdict(report.quality)
            if report is not None and report.quality is not None
            else None
        )
        extra: Dict[str, object] = {"status": outcome.status}
        if outcome.error is not None:
            extra["error"] = outcome.error
        if report is not None:
            extra["miss_count"] = report.miss_count
            extra["low_confidence_count"] = report.low_confidence_count
            extra["stall_fraction"] = report.stall_fraction
        writer.append(
            obs_ledger.record(
                kind="campaign-run",
                label=f"{self.directory.name}/{spec.name}",
                wall_time_s=outcome.wall_time_s,
                config=spec.config,
                quality=quality,
                extra=extra,
            )
        )

    def _ledger_incident(
        self,
        kind: str,
        name: str,
        attempts: int,
        reason: str,
        wall_time_s: float = 0.0,
        worker: Optional[str] = None,
        sink: Optional[obs_ledger.LedgerAppender] = None,
    ) -> None:
        """Append one ``campaign-requeue``/``campaign-quarantine`` record.

        Written at the moment the supervisor acts (not batched to pass
        end) so a kill -9 of the *parent* still leaves the incident on
        record.
        """
        if self.ledger is None:
            return
        writer = sink if sink is not None else self.ledger
        extra: Dict[str, object] = {"attempts": attempts, "reason": reason}
        if worker is not None:
            extra["worker"] = worker
        writer.append(
            obs_ledger.record(
                kind=kind,
                label=f"{self.directory.name}/{name}",
                wall_time_s=wall_time_s,
                extra=extra,
            )
        )

    def _ledger_summary(
        self,
        result: CampaignResult,
        wall_time_s: float,
        sink: Optional[obs_ledger.LedgerAppender] = None,
    ) -> None:
        """Append one ``campaign`` summary record per execute() pass."""
        if self.ledger is None:
            return
        writer = sink if sink is not None else self.ledger
        extra: Dict[str, object] = {
            "counts": result.counts(),
            "completed": result.completed,
        }
        if obs_enabled():
            # Bridge the live-telemetry rollup into the post-hoc
            # record: the dashboard's "final" numbers can be checked
            # against what the bus saw while the pass was in flight.
            stats = _event_bus.stats()
            extra["events"] = {
                key: stats[key]
                for key in (
                    "total",
                    "samples_total",
                    "stalls_total",
                    "quality_flags_total",
                    "dropped_events",
                )
            }
        writer.append(
            obs_ledger.record(
                kind="campaign",
                label=self.directory.name,
                wall_time_s=wall_time_s,
                extra=extra,
            )
        )

    def _execute_one(
        self, spec: RunSpec, attempts: int = 1, interrupted: bool = False
    ) -> RunOutcome:
        """Acquire, profile, and persist one run, absorbing failures."""
        begin = time.perf_counter()
        with _trace.span("campaign_run", run=spec.name, attempt=attempts):
            try:
                capture = self._acquire(spec)
                recorder = None
                if self.flight:
                    from ..obs.flight import FlightRecorder

                    recorder = FlightRecorder()
                report = Emprof.from_capture(
                    capture, config=spec.config
                ).profile(flight=recorder)
            except AcquisitionError as exc:
                _RUNS_FAILED.inc()
                return RunOutcome(
                    name=spec.name,
                    status="failed",
                    error=f"{type(exc).__name__}: {exc}",
                    wall_time_s=time.perf_counter() - begin,
                    attempts=attempts,
                    interrupted=interrupted,
                )
            # Persist the report before the manifest marks the run
            # done: a crash between the two writes re-runs the run,
            # never trusts a missing report.
            repro_io.save_report(self.report_path(spec.name), report)
            if recorder is not None:
                repro_io.save_flight(
                    self.flight_path(spec.name), recorder, run=spec.name
                )
                self._prune_flights()
        _RUNS_COMPLETED.inc()
        return RunOutcome(
            name=spec.name,
            status="done",
            report=report,
            wall_time_s=time.perf_counter() - begin,
            attempts=attempts,
            interrupted=interrupted,
        )

    def _acquire(self, spec: RunSpec):
        kwargs = {} if self._sleep is None else {"sleep": self._sleep}
        return acquire_with_retry(
            spec.source_factory(), policy=self.retry, **kwargs
        )


# ---------------------------------------------------------------------------
# supervised multi-process execution
# ---------------------------------------------------------------------------


@dataclass
class _Lease:
    """One run checked out to one worker: the supervisor's accounting unit.

    Exactly one of these exists per in-flight run, keyed by worker
    label, so when a worker dies the supervisor knows precisely which
    run it was holding - the invariant that makes requeue exact
    (docs/service.md).
    """

    index: int  # into CampaignExecution.specs
    name: str
    attempt: int
    interrupted: bool  # this attempt resumes an interrupted run
    leased_monotonic: float
    deadline: Optional[float]  # monotonic; None = no per-job timeout


@dataclass
class _PendingJob:
    """A run waiting for a worker (fresh, or requeued with backoff)."""

    index: int
    attempt: int
    interrupted: bool
    not_before: float  # monotonic; requeue backoff gate


class CampaignExecution:
    """A launched supervised pass; :meth:`join` runs the supervisor.

    Created by :meth:`Campaign.start`.  The parent owns the open
    ``campaign`` span, the status server, the shared event sink, and -
    new with the dynamic job queue - all scheduling state: a pending
    queue of jobs, one single-slot job queue per forked worker, and a
    shared control queue the workers beat on.  Each worker leases one
    run at a time; the supervisor dispatches, watches liveness, and on
    a dead worker (``is_alive()`` false), a hung worker (no beat
    within ``Campaign.effective_heartbeat_timeout_s``), or an overdue
    job (``RunSpec.timeout_s`` / ``Campaign.job_timeout_s``) kills the
    worker, requeues the leased run with backoff
    (``Campaign.retry.delay``), and respawns a replacement.  A run
    interrupted ``Campaign.max_attempts`` times is quarantined as
    ``poisoned``.

    The exactly-once discipline: a run's *only* commit point is its
    ``<name>.outcome.json`` checkpoint (written atomically by the
    worker after the report).  Before requeueing a revoked lease the
    supervisor re-reads that checkpoint, so a worker killed after
    committing but before reporting back still counts as finished and
    the run is never executed twice.

    Attributes:
        processes: worker label -> :class:`multiprocessing.Process`,
            including dead/replaced workers (exposed so callers - and
            the chaos tests - can signal individual workers).
        assignments: worker label -> specs it was handed over its
            lifetime (dispatch history, not a static partition).
    """

    #: Supervisor wake-up cadence (control-queue poll timeout).
    _TICK_S = 0.05

    def __init__(self, campaign: Campaign, specs: List[RunSpec]):
        self.campaign = campaign
        self.specs = specs
        self.processes: Dict[str, multiprocessing.process.BaseProcess] = {}
        self.assignments: Dict[str, List[RunSpec]] = {}
        self.result: Optional[CampaignResult] = None
        self._mp = multiprocessing.get_context("fork")
        self._pending: List[_PendingJob] = []
        self._leases: Dict[str, _Lease] = {}
        self._job_queues: Dict[str, multiprocessing.queues.Queue] = {}
        self._control: Optional[multiprocessing.queues.Queue] = None
        self._last_beat: Dict[str, float] = {}
        self._outcomes: Dict[str, RunOutcome] = {}
        self._runs: Dict[str, dict] = {}
        self._next_worker = 0
        self._stop_mode: Optional[str] = None  # None | "drain" | "cancel"
        self._pass_begin = 0.0
        self._observation = None
        self._span = None
        self._server = None
        self._context: Optional[tracectx.TraceContext] = None
        self._status_address: Optional[Tuple[str, int]] = None

    # -- launch --------------------------------------------------------------

    def start(self) -> "CampaignExecution":
        """Plan the queue and fork the workers; returns immediately."""
        campaign = self.campaign
        self._pass_begin = time.perf_counter()
        self._observation = campaign._observation(len(self.specs))
        self._server = self._observation.__enter__()
        self._span = _trace.span(
            "campaign",
            campaign=campaign.directory.name,
            workers=campaign.workers,
        )
        self._span.__enter__()

        self._runs = campaign.load_manifest()
        now = time.monotonic()
        for index, spec in enumerate(self.specs):
            state = self._runs.get(spec.name, {})
            status = state.get("status")
            attempts = int(state.get("attempts", 0) or 0)
            if (
                status == "done"
                and campaign.report_path(spec.name).exists()
            ):
                _RUNS_SKIPPED.inc()
                self._outcomes[spec.name] = RunOutcome(
                    name=spec.name, status="skipped"
                )
                continue
            if status == "poisoned":
                self._outcomes[spec.name] = RunOutcome(
                    name=spec.name,
                    status="poisoned",
                    error=state.get("error"),
                    attempts=attempts,
                    interrupted=True,
                )
                continue
            # A stale outcome file from an earlier pass must not
            # masquerade as this pass's result.
            with contextlib.suppress(FileNotFoundError):
                campaign.outcome_path(spec.name).unlink()
            interrupted = status in ("running", "interrupted")
            if interrupted and attempts >= campaign.max_attempts:
                outcome = campaign._quarantine_entry(
                    self._runs,
                    spec.name,
                    attempts,
                    reason=(
                        f"quarantined after {attempts} interrupted attempts"
                    ),
                )
                self._outcomes[spec.name] = outcome
                campaign._ledger_incident(
                    "campaign-quarantine",
                    spec.name,
                    attempts,
                    str(outcome.error),
                    worker=state.get("worker"),
                )
                continue
            self._pending.append(
                _PendingJob(index, attempts + 1, interrupted, now)
            )
        self._checkpoint(last_run="")

        self._context = tracectx.current().child(_trace.current_span_token())
        self._status_address = (
            self._server.address if self._server is not None else None
        )
        self._control = self._mp.Queue()
        for _ in range(min(campaign.workers, len(self._pending))):
            self._spawn_worker()
        self._dispatch_ready()
        return self

    def _spawn_worker(self) -> str:
        """Fork one worker with an empty job queue."""
        campaign = self.campaign
        label = f"worker{self._next_worker}"
        self._next_worker += 1
        jobs = self._mp.Queue()
        # Fork, not spawn: RunSpec factories are arbitrary callables
        # (closures, lambdas) that only survive by inheritance.
        process = self._mp.Process(
            target=_worker_main,
            name=label,
            args=(
                campaign,
                self.specs,
                label,
                jobs,
                self._control,
                self._context,
                self._status_address,
            ),
            daemon=True,
        )
        process.start()
        self.processes[label] = process
        self.assignments[label] = []
        self._job_queues[label] = jobs
        self._last_beat[label] = time.monotonic()
        _event_bus.emit(
            "worker_spawned",
            worker=label,
            pid=process.pid,
            campaign=campaign.directory.name,
        )
        return label

    # -- scheduling ----------------------------------------------------------

    def _idle_workers(self) -> List[str]:
        return [
            label
            for label, process in self.processes.items()
            if process.is_alive() and label not in self._leases
        ]

    def _take_ready_job(self, now: float) -> Optional[_PendingJob]:
        for i, job in enumerate(self._pending):
            if job.not_before <= now:
                return self._pending.pop(i)
        return None

    def _dispatch_ready(self) -> None:
        now = time.monotonic()
        for label in self._idle_workers():
            job = self._take_ready_job(now)
            if job is None:
                return
            self._lease(label, job)

    def _lease(self, label: str, job: _PendingJob) -> None:
        campaign = self.campaign
        spec = self.specs[job.index]
        timeout = (
            spec.timeout_s
            if spec.timeout_s is not None
            else campaign.job_timeout_s
        )
        now = time.monotonic()
        self._leases[label] = _Lease(
            index=job.index,
            name=spec.name,
            attempt=job.attempt,
            interrupted=job.interrupted,
            leased_monotonic=now,
            deadline=None if timeout is None else now + float(timeout),
        )
        # Pre-mark the lease so a parent kill -9 leaves "running" +
        # attempts behind for the next pass to surface as interrupted.
        self._runs[spec.name] = {
            "status": "running",
            "attempts": job.attempt,
            "worker": label,
            "started_unix_s": time.time(),
        }
        self._checkpoint(spec.name)
        self.assignments[label].append(spec)
        self._job_queues[label].put(
            ("run", job.index, job.attempt, job.interrupted)
        )

    def _respawn_if_needed(self) -> None:
        want = min(
            self.campaign.workers, len(self._pending) + len(self._leases)
        )
        alive = sum(
            1 for process in self.processes.values() if process.is_alive()
        )
        for _ in range(max(0, want - alive)):
            self._spawn_worker()

    def _checkpoint(self, last_run: str) -> None:
        campaign = self.campaign
        result = CampaignResult(outcomes=list(self._outcomes.values()))
        campaign._save_manifest(
            self._runs,
            progress=campaign._progress(result, len(self.specs), last_run),
        )

    # -- supervision ---------------------------------------------------------

    def alive(self) -> List[str]:
        """Labels of workers still running."""
        return [
            label
            for label, process in self.processes.items()
            if process.is_alive()
        ]

    def request_stop(self, mode: str = "drain") -> None:
        """Ask the supervisor to wind down (thread-safe, returns fast).

        ``drain`` lets leased runs finish but dispatches nothing new;
        ``cancel`` kills leased workers and marks their runs
        ``interrupted`` (attempts persisted) for the next pass.  In
        both cases undispatched pending runs keep their prior manifest
        state.  Takes effect inside :meth:`join`'s supervision loop.
        """
        if mode not in ("drain", "cancel"):
            raise ValueError("stop mode must be 'drain' or 'cancel'")
        self._stop_mode = mode

    def snapshot(self) -> Dict[str, object]:
        """A cheap live view of the queue for status endpoints."""
        now = time.monotonic()
        return {
            "pending": len(self._pending),
            "leases": {
                label: {
                    "run": lease.name,
                    "attempt": lease.attempt,
                    "age_s": round(now - lease.leased_monotonic, 3),
                }
                for label, lease in self._leases.items()
            },
            "workers_alive": self.alive(),
            "finalized": len(self._outcomes),
            "total": len(self.specs),
            "stop_mode": self._stop_mode,
        }

    def join(self, timeout_s: Optional[float] = None) -> CampaignResult:
        """Run the supervision loop to completion and merge the result.

        ``timeout_s`` (None = no limit) bounds the whole pass: on
        expiry every worker is killed, leased runs are recorded as
        failed (and left ``interrupted`` in the manifest for the next
        pass), and undispatched runs are recorded as failed without a
        manifest change.
        """
        campaign = self.campaign
        deadline = (
            None if timeout_s is None else time.monotonic() + timeout_s
        )
        try:
            self._supervise(deadline)
        finally:
            self._shutdown_workers()

        result = CampaignResult()
        last_run = ""
        for spec in self.specs:
            outcome = self._outcomes.get(spec.name)
            if outcome is not None:
                result.outcomes.append(outcome)
                last_run = spec.name
        campaign._save_manifest(
            self._runs,
            progress=campaign._progress(result, len(self.specs), last_run),
        )
        _event_bus.emit(
            "checkpoint_written",
            target="manifest",
            campaign=campaign.directory.name,
        )
        self._ledger(result)
        if self._span is not None:
            self._span.__exit__(None, None, None)
            self._span = None
        if obs_enabled():
            # After the span closes, so the campaign span itself is in
            # the payload the stitcher reads.
            _trace_write_safe(
                _trace, campaign.directory / "main.trace.json"
            )
        if self._observation is not None:
            self._observation.__exit__(None, None, None)
            self._observation = None
        self.result = result
        return result

    def _supervise(self, deadline: Optional[float]) -> None:
        while self._pending or self._leases:
            if deadline is not None and time.monotonic() > deadline:
                self._abort_on_timeout()
                return
            if self._stop_mode == "cancel":
                self._cancel_leases()
                return
            if self._stop_mode == "drain" and self._pending:
                # Undispatched runs keep their prior manifest state and
                # get no outcome; the next pass re-attempts them.
                self._pending.clear()
            self._respawn_if_needed()
            self._dispatch_ready()
            self._pump_control()
            self._check_liveness()

    def _pump_control(self) -> None:
        """Handle queued worker messages; block one tick for the first."""
        try:
            message = self._control.get(timeout=self._TICK_S)
        except _queue.Empty:
            return
        while True:
            self._handle_message(message)
            try:
                message = self._control.get_nowait()
            except _queue.Empty:
                return

    def _handle_message(self, message: Tuple[str, str, Optional[str]]) -> None:
        label, verb, name = message
        self._last_beat[label] = time.monotonic()
        if verb != "done":
            return  # "beat" / "started": liveness only
        lease = self._leases.get(label)
        if lease is None or lease.name != name:
            return  # stale message from a revoked lease
        del self._leases[label]
        if not self._finalize_from_checkpoint(lease, label):
            # The worker claimed "done" but its checkpoint is missing
            # or torn - treat exactly like a death while leased.
            self._requeue_or_quarantine(
                lease,
                label,
                f"worker {label} reported run {lease.name!r} finished "
                "but left no readable outcome checkpoint",
            )

    def _check_liveness(self) -> None:
        campaign = self.campaign
        now = time.monotonic()
        hang_after = campaign.effective_heartbeat_timeout_s
        for label in list(self._leases):
            lease = self._leases[label]
            process = self.processes[label]
            if not process.is_alive():
                self._revoke(
                    label,
                    f"worker {label} died (exit code {process.exitcode}) "
                    f"during run {lease.name!r}",
                )
                continue
            beat_age = now - self._last_beat.get(label, now)
            if beat_age > hang_after:
                self._revoke(
                    label,
                    f"worker {label} hung: no heartbeat for "
                    f"{beat_age:.2f}s during run {lease.name!r}",
                )
                continue
            if lease.deadline is not None and now > lease.deadline:
                budget = lease.deadline - lease.leased_monotonic
                self._revoke(
                    label,
                    f"run {lease.name!r} exceeded its {budget:.2f}s "
                    f"timeout on worker {label}",
                )

    def _revoke(self, label: str, reason: str) -> None:
        """Kill a worker and requeue (or quarantine) its leased run."""
        campaign = self.campaign
        lease = self._leases.pop(label)
        process = self.processes[label]
        if process.is_alive():
            process.kill()
        process.join(2.0)
        _event_bus.emit(
            "worker_killed",
            worker=label,
            run=lease.name,
            reason=reason,
            campaign=campaign.directory.name,
        )
        # The worker may have committed the run's checkpoint before it
        # died; a committed run is finished, never re-executed.
        if self._finalize_from_checkpoint(lease, label):
            return
        self._requeue_or_quarantine(lease, label, reason)

    def _requeue_or_quarantine(
        self, lease: _Lease, label: str, reason: str
    ) -> None:
        campaign = self.campaign
        spec = self.specs[lease.index]
        wall = time.monotonic() - lease.leased_monotonic
        if lease.attempt >= campaign.max_attempts:
            outcome = campaign._quarantine_entry(
                self._runs,
                spec.name,
                lease.attempt,
                reason=(
                    f"quarantined after {lease.attempt} attempts; last: "
                    f"{reason}"
                ),
            )
            self._outcomes[spec.name] = outcome
            self._checkpoint(spec.name)
            campaign._ledger_incident(
                "campaign-quarantine",
                spec.name,
                lease.attempt,
                reason,
                wall_time_s=wall,
                worker=label,
            )
            return
        delay = campaign.retry.delay(lease.attempt)
        self._pending.append(
            _PendingJob(
                lease.index,
                lease.attempt + 1,
                True,
                time.monotonic() + delay,
            )
        )
        self._runs[spec.name] = {
            "status": "interrupted",
            "attempts": lease.attempt,
            "error": reason,
            "worker": label,
            "interrupted_unix_s": time.time(),
        }
        self._checkpoint(spec.name)
        _RUNS_REQUEUED.inc()
        _event_bus.emit(
            "job_requeued",
            run=spec.name,
            attempts=lease.attempt,
            backoff_s=delay,
            reason=reason,
            campaign=campaign.directory.name,
        )
        campaign._ledger_incident(
            "campaign-requeue",
            spec.name,
            lease.attempt,
            reason,
            wall_time_s=wall,
            worker=label,
        )

    def _finalize_from_checkpoint(self, lease: _Lease, label: str) -> bool:
        """Commit a lease from its run's outcome file, if one exists.

        Returns False when the checkpoint is absent or unreadable (the
        run did not finish); the caller decides requeue vs quarantine.
        """
        campaign = self.campaign
        spec = self.specs[lease.index]
        path = campaign.outcome_path(spec.name)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return False
        if payload.get("name") != spec.name or payload.get("status") not in (
            "done",
            "failed",
        ):
            return False
        status = payload["status"]
        report = None
        if status == "done":
            _RUNS_COMPLETED.inc()
            try:
                report = campaign.load_report(spec.name)
            except (OSError, ValueError):
                report = None
        else:
            _RUNS_FAILED.inc()
        outcome = RunOutcome(
            name=spec.name,
            status=status,
            report=report,
            error=payload.get("error"),
            wall_time_s=float(payload.get("wall_time_s", 0.0)),
            attempts=lease.attempt,
            interrupted=lease.interrupted,
        )
        self._outcomes[spec.name] = outcome
        entry = {
            "status": status,
            "attempts": lease.attempt,
            "wall_time_s": outcome.wall_time_s,
            "finished_unix_s": time.time(),
            "worker": label,
        }
        if outcome.error is not None:
            entry["error"] = outcome.error
        self._runs[spec.name] = entry
        self._checkpoint(spec.name)
        return True

    # -- shutdown paths ------------------------------------------------------

    def _cancel_leases(self) -> None:
        """Hard stop: kill leased workers, persist interrupted state."""
        campaign = self.campaign
        for label in list(self._leases):
            lease = self._leases.pop(label)
            process = self.processes[label]
            if process.is_alive():
                process.kill()
            process.join(2.0)
            _event_bus.emit(
                "worker_killed",
                worker=label,
                run=lease.name,
                reason="cancelled",
                campaign=campaign.directory.name,
            )
            if self._finalize_from_checkpoint(lease, label):
                continue
            spec = self.specs[lease.index]
            error = "cancelled while leased"
            self._runs[spec.name] = {
                "status": "interrupted",
                "attempts": lease.attempt,
                "error": error,
                "worker": label,
                "interrupted_unix_s": time.time(),
            }
            self._outcomes[spec.name] = RunOutcome(
                name=spec.name,
                status="interrupted",
                error=error,
                attempts=lease.attempt,
                interrupted=True,
            )
            self._checkpoint(spec.name)
        self._pending.clear()

    def _abort_on_timeout(self) -> None:
        """join(timeout_s) expired: kill everything, record failures."""
        for label in list(self._leases):
            lease = self._leases.pop(label)
            process = self.processes[label]
            if process.is_alive():
                process.kill()
            process.join(1.0)
            if self._finalize_from_checkpoint(lease, label):
                continue
            spec = self.specs[lease.index]
            error = (
                f"worker {label} (exit code {process.exitcode}) did not "
                "finish this run before the campaign timeout"
            )
            _RUNS_FAILED.inc()
            self._outcomes[spec.name] = RunOutcome(
                name=spec.name,
                status="failed",
                error=error,
                attempts=lease.attempt,
                interrupted=lease.interrupted,
            )
            self._runs[spec.name] = {
                "status": "interrupted",
                "attempts": lease.attempt,
                "error": error,
                "worker": label,
                "interrupted_unix_s": time.time(),
            }
        for job in self._pending:
            spec = self.specs[job.index]
            _RUNS_FAILED.inc()
            self._outcomes[spec.name] = RunOutcome(
                name=spec.name,
                status="failed",
                error="campaign timed out before this run started",
                attempts=max(1, job.attempt - (0 if job.interrupted else 1)),
                interrupted=job.interrupted,
            )
        self._pending.clear()

    def _shutdown_workers(self) -> None:
        for label, process in self.processes.items():
            if process.is_alive():
                with contextlib.suppress(Exception):
                    self._job_queues[label].put_nowait(("stop",))
        deadline = time.monotonic() + 5.0
        for process in self.processes.values():
            process.join(max(0.0, deadline - time.monotonic()))
        for process in self.processes.values():
            if process.is_alive():
                process.kill()
                process.join(1.0)
        if self._control is not None:
            with contextlib.suppress(Exception):
                self._control.close()
                self._control.cancel_join_thread()
        for jobs in self._job_queues.values():
            with contextlib.suppress(Exception):
                jobs.close()
                jobs.cancel_join_thread()

    def _ledger(self, result: CampaignResult) -> None:
        campaign = self.campaign
        if campaign.ledger is None:
            return
        with campaign.ledger.appender(fsync_each=False) as sink:
            for outcome in result.outcomes:
                # skipped: nothing ran; poisoned: the quarantine
                # incident record already covers it.
                if outcome.status in ("skipped", "poisoned"):
                    continue
                spec = next(
                    s for s in self.specs if s.name == outcome.name
                )
                campaign._ledger_run(spec, outcome, sink)
            campaign._ledger_summary(
                result, time.perf_counter() - self._pass_begin, sink
            )


def _trace_write_safe(tracer, path: Path) -> None:
    """Write a trace payload, never letting I/O kill the pass."""
    try:
        tracer.write(str(path))
    except OSError:
        pass


def _worker_main(
    campaign: Campaign,
    specs: List[RunSpec],
    label: str,
    jobs,
    control,
    context: tracectx.TraceContext,
    status_address: Optional[Tuple[str, int]],
) -> None:
    """A forked supervised worker's whole life.

    Runs in the child process.  The forked copies of the global
    tracer/bus still hold the parent's spans, sinks, and counters, so
    the first job is to shed that inherited state (without closing the
    parent's file descriptors).  Then the worker loops on its job
    queue: one ``("run", index, attempt, interrupted)`` lease at a
    time, executed exactly like the serial path and committed as an
    atomic ``<name>.outcome.json`` checkpoint before the ``done``
    control message - the manifest is never touched from here.  A
    daemon heartbeat thread beats on the control queue at
    ``heartbeat_interval_s`` (always, independent of ``EMPROF_OBS``)
    so the supervisor can tell a long-running job from a hung worker;
    with observability on the same beat also lands on the event bus
    (socket sink to the parent's status server when it has one, the
    shared NDJSON file otherwise).
    """
    tracectx.activate(context)
    _trace.reset()
    _trace.set_process_label(label)
    _event_bus.reset()
    _event_bus.set_source(label)
    stop = threading.Event()
    if obs_enabled():
        if status_address is not None:
            # Push to the parent's status server; the parent's bus
            # re-delivers ingested events to its own sinks (the shared
            # NDJSON file, watch subscriptions), so attaching the file
            # sink here too would write every worker event twice.
            _event_bus.add_sink(
                SocketSink(status_address[0], status_address[1])
            )
        else:
            _event_bus.add_sink(NDJSONFileSink(campaign.events_path))
        _event_bus.emit("heartbeat", worker=label, phase="start")

    def _beat() -> None:
        while not stop.wait(campaign.heartbeat_interval_s):
            with contextlib.suppress(Exception):
                control.put_nowait((label, "beat", None))
            _event_bus.emit("heartbeat", worker=label)

    threading.Thread(
        target=_beat, name=f"{label}-heartbeat", daemon=True
    ).start()
    try:
        with _trace.span("campaign_worker", worker=label):
            while True:
                try:
                    message = jobs.get(timeout=0.5)
                except _queue.Empty:
                    continue  # the parent owns this worker's lifetime
                if message[0] != "run":
                    break
                _, index, attempt, interrupted = message
                spec = specs[index]
                with contextlib.suppress(Exception):
                    control.put_nowait((label, "started", spec.name))
                outcome = campaign._execute_one(
                    spec, attempts=attempt, interrupted=interrupted
                )
                # The commit point: after this atomic write the run is
                # finished no matter what happens to this process.
                obs_ledger.atomic_write_json(
                    campaign.outcome_path(spec.name),
                    {
                        "name": spec.name,
                        "status": outcome.status,
                        "error": outcome.error,
                        "wall_time_s": outcome.wall_time_s,
                        "attempts": attempt,
                        "finished_unix_s": time.time(),
                        "worker": label,
                    },
                )
                _event_bus.emit(
                    "checkpoint_written",
                    target="outcome",
                    run=spec.name,
                    status=outcome.status,
                )
                with contextlib.suppress(Exception):
                    control.put_nowait((label, "done", spec.name))
    finally:
        stop.set()
        if obs_enabled():
            _event_bus.emit("heartbeat", worker=label, phase="end")
            _trace_write_safe(
                _trace, campaign.directory / f"{label}.trace.json"
            )
            _event_bus.flush(timeout_s=2.0)
            _event_bus.close()
