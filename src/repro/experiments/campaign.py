"""Resilient measurement campaigns: checkpointed multi-run execution.

A campaign is a named list of runs (acquire a capture, profile it,
persist the report).  Physical campaigns are long - hours of bench
time - and die for reasons unrelated to the science: a wedged SDR
driver, a full disk, someone tripping over the probe.  This module
makes a killed campaign cheap to restart:

* every run is **isolated** - one run failing (typed
  :class:`repro.errors.AcquisitionError` /
  :class:`repro.errors.CorruptCaptureError`) is recorded and the
  campaign moves on instead of unwinding;
* transient failures are retried per
  :class:`repro.experiments.runner.RetryPolicy` before the run is
  declared failed;
* progress is **checkpointed** - each completed run's profile report
  is written to the campaign directory and the manifest is updated
  with an atomic replace, so ``kill -9`` between any two syscalls
  leaves a manifest that is either the old or the new state, never a
  torn one.  :meth:`Campaign.execute` on the same directory skips
  runs already marked ``done`` and re-attempts the rest;
* execution is **observable** - every manifest update carries a
  ``progress`` heartbeat (counts, total planned, last run, wall-clock
  timestamp), each run's entry records its wall time and finish time,
  and a campaign constructed with ``ledger=...`` appends one
  :class:`repro.obs.ledger.RunRecord` per item (kind
  ``campaign-run``) plus a summary record (kind ``campaign``) per
  :meth:`Campaign.execute` pass - so a long bench session can be
  watched from the outside (``repro obs ledger``/``dashboard``)
  without touching the process.

The manifest (``manifest.json``) is deliberately human-readable: a
campaign's state can be audited, or a run forced to re-execute by
deleting its entry, with a text editor.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from .. import io as repro_io
from ..core.events import ProfileReport
from ..core.profiler import Emprof, EmprofConfig
from ..errors import AcquisitionError, CampaignError
from ..obs import metrics as _metrics, trace as _trace
from ..obs import ledger as obs_ledger
from ..obs import tracectx
from ..obs.events import NDJSONFileSink, SocketSink, bus as _event_bus
from ..obs.runtime import obs_enabled
from .runner import RetryPolicy, acquire_with_retry

_MANIFEST_NAME = "manifest.json"
_MANIFEST_FORMAT = "emprof-campaign-v1"
_EVENTS_NAME = "events.ndjsonl"

#: Cadence of campaign worker ``heartbeat`` events.
DEFAULT_HEARTBEAT_INTERVAL_S = 0.25

_RUNS_COMPLETED = _metrics.counter(
    "campaign_runs_completed_total", "campaign runs that produced a report"
)
_RUNS_FAILED = _metrics.counter(
    "campaign_runs_failed_total", "campaign runs abandoned after retries"
)
_RUNS_SKIPPED = _metrics.counter(
    "campaign_runs_skipped_total", "campaign runs skipped on resume (already done)"
)


@dataclass(frozen=True)
class RunSpec:
    """One planned measurement: a name plus a capture source factory.

    Attributes:
        name: unique within the campaign; doubles as the report's
            filename stem, so keep it filesystem-safe.
        source_factory: zero-argument callable returning a fresh
            ``SignalSource``; called once per *attempt* so a flaky
            source is rebuilt rather than reused mid-failure.
        config: profiler configuration for this run.
    """

    name: str
    source_factory: Callable[[], object]
    config: Optional[EmprofConfig] = None


@dataclass
class RunOutcome:
    """What happened to one run during :meth:`Campaign.execute`."""

    name: str
    status: str  # "done" | "failed" | "skipped"
    report: Optional[ProfileReport] = None
    error: Optional[str] = None
    wall_time_s: float = 0.0


@dataclass
class CampaignResult:
    """Aggregate outcome of one :meth:`Campaign.execute` pass."""

    outcomes: List[RunOutcome] = field(default_factory=list)

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {"done": 0, "failed": 0, "skipped": 0}
        for outcome in self.outcomes:
            out[outcome.status] = out.get(outcome.status, 0) + 1
        return out

    @property
    def completed(self) -> bool:
        """True when every run has a persisted report (done or skipped)."""
        return all(o.status in ("done", "skipped") for o in self.outcomes)


class Campaign:
    """Checkpointed executor for a list of :class:`RunSpec`.

    Args:
        directory: campaign state directory; created if missing.  The
            manifest and one ``<run>.report.json`` per completed run
            live here.
        retry: retry policy for transient acquisition failures.
        sleep: injectable backoff sleep (see
            :func:`repro.experiments.runner.acquire_with_retry`).
        ledger: optional run ledger (path or
            :class:`repro.obs.ledger.RunLedger`); when given, every
            executed run appends a ``campaign-run`` record and each
            :meth:`execute` pass appends a ``campaign`` summary.
        workers: processes to execute runs in.  1 (default) keeps the
            in-process serial path; more forks that many workers, each
            writing per-run ``<name>.outcome.json`` checkpoints the
            parent merges into the manifest at join time (workers
            never touch the manifest, so crash semantics are
            unchanged: a run without both its report and outcome file
            is simply re-attempted).
        status_port: when given, :meth:`execute`/:meth:`start` serve
            the line-JSON status protocol (:mod:`repro.obs.statusd`)
            on this port for the duration of the pass; 0 picks an
            ephemeral port, published as :attr:`status_address`.
        heartbeat_interval_s: cadence of worker ``heartbeat`` events.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        retry: Optional[RetryPolicy] = None,
        sleep=None,
        ledger: Optional[Union[str, Path, obs_ledger.RunLedger]] = None,
        workers: int = 1,
        status_port: Optional[int] = None,
        heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
    ):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be positive")
        self.directory = Path(directory)
        self.retry = retry if retry is not None else RetryPolicy()
        self._sleep = sleep
        if ledger is None or isinstance(ledger, obs_ledger.RunLedger):
            self.ledger = ledger
        else:
            self.ledger = obs_ledger.RunLedger(ledger)
        self.workers = int(workers)
        self.status_port = status_port
        self.heartbeat_interval_s = float(heartbeat_interval_s)
        #: ``(host, port)`` of the live status server, set while a
        #: pass with ``status_port`` is executing.
        self.status_address: Optional[Tuple[str, int]] = None
        self.directory.mkdir(parents=True, exist_ok=True)

    # -- manifest ------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.directory / _MANIFEST_NAME

    @property
    def events_path(self) -> Path:
        """The campaign's shared NDJSON event stream (all processes)."""
        return self.directory / _EVENTS_NAME

    def outcome_path(self, name: str) -> Path:
        """A worker's per-run checkpoint file."""
        return self.directory / f"{name}.outcome.json"

    def load_manifest(self) -> Dict[str, dict]:
        """Per-run state map; empty when the campaign is fresh."""
        if not self.manifest_path.exists():
            return {}
        try:
            payload = json.loads(self.manifest_path.read_text())
        except json.JSONDecodeError as exc:
            raise CampaignError(
                f"unreadable campaign manifest {self.manifest_path}: {exc}"
            ) from exc
        if payload.get("format") != _MANIFEST_FORMAT:
            raise CampaignError(
                f"not an EMPROF campaign manifest: {self.manifest_path}"
            )
        return payload.get("runs", {})

    def load_progress(self) -> Dict[str, object]:
        """The manifest's heartbeat record; empty for fresh campaigns.

        Keys (when present): ``updated_unix_s``, ``counts`` (done /
        failed / skipped so far this pass), ``total_planned``, and
        ``last_run``.  An external watcher can poll this to tell a
        live campaign from a wedged one without signalling the
        process.
        """
        if not self.manifest_path.exists():
            return {}
        try:
            payload = json.loads(self.manifest_path.read_text())
        except json.JSONDecodeError as exc:
            raise CampaignError(
                f"unreadable campaign manifest {self.manifest_path}: {exc}"
            ) from exc
        progress = payload.get("progress", {})
        return progress if isinstance(progress, dict) else {}

    def _save_manifest(
        self, runs: Dict[str, dict], progress: Optional[Dict[str, object]] = None
    ) -> None:
        """Atomically replace the manifest (tmp + ``os.replace``)."""
        payload: Dict[str, object] = {"format": _MANIFEST_FORMAT, "runs": runs}
        if progress is not None:
            payload["progress"] = progress
        tmp = self.manifest_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
        os.replace(tmp, self.manifest_path)

    def report_path(self, name: str) -> Path:
        return self.directory / f"{name}.report.json"

    def load_report(self, name: str) -> ProfileReport:
        """Load the persisted report of a completed run."""
        return repro_io.load_report(self.report_path(name))

    # -- execution -----------------------------------------------------------

    def execute(self, specs: List[RunSpec]) -> CampaignResult:
        """Run every spec, resuming from the manifest.

        Runs already marked ``done`` with their report file present
        are skipped; everything else (fresh, previously failed, or
        interrupted mid-run) is attempted.  A failing run never stops
        the campaign - its error is recorded in the manifest and the
        outcome list.

        With ``workers > 1`` this is ``self.start(specs).join()``:
        the specs are partitioned across forked worker processes and
        the manifest is merged once they finish.
        """
        self._check_names(specs)
        if self.workers > 1:
            return self.start(specs).join()
        runs = self.load_manifest()
        result = CampaignResult()
        pass_begin = time.perf_counter()
        # One reusable ledger handle for the whole pass: a 100-run
        # campaign would otherwise pay an open+fsync per record.  The
        # manifest (atomic replace per run) stays the crash-recovery
        # source of truth, so the fsync is deferred to pass end.
        ledger_ctx = (
            self.ledger.appender(fsync_each=False)
            if self.ledger is not None
            else contextlib.nullcontext(None)
        )
        with self._observation(len(specs)):
            with ledger_ctx as ledger_sink:
                self._execute_pass(specs, runs, result, ledger_sink, pass_begin)
        return result

    def start(self, specs: List[RunSpec]) -> "CampaignExecution":
        """Launch the pass across ``self.workers`` forked processes.

        Returns a :class:`CampaignExecution` handle immediately; call
        :meth:`CampaignExecution.join` for the merged result.  While
        the pass runs, each worker streams events (heartbeats, run
        lifecycle, per-chunk telemetry) into the campaign's shared
        NDJSON event file and - when ``status_port`` is set - into the
        parent's status server, so the pass can be watched live.
        """
        self._check_names(specs)
        return CampaignExecution(self, list(specs)).start()

    @staticmethod
    def _check_names(specs: List[RunSpec]) -> None:
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise CampaignError("run names must be unique within a campaign")

    @contextlib.contextmanager
    def _observation(self, total_planned: int):
        """Event/status scaffolding around one execute pass.

        Attaches an NDJSON sink for the campaign's event file (when
        observability is on), serves the status protocol on
        ``status_port`` (when set), and brackets the pass in
        ``run_started``/``run_finished`` events.  All of it tears back
        down when the pass ends; with observability off and no status
        port this is a no-op.
        """
        sink = None
        server = None
        if obs_enabled():
            sink = _event_bus.add_sink(NDJSONFileSink(self.events_path))
        if self.status_port is not None:
            from ..obs import statusd

            server = statusd.StatusServer(
                _event_bus,
                metrics=_metrics,
                port=self.status_port,
                extra_status=lambda: self._live_status(total_planned),
            ).start()
            self.status_address = server.address
        _event_bus.emit(
            "run_started",
            op="campaign",
            campaign=self.directory.name,
            total_planned=total_planned,
            workers=self.workers,
        )
        try:
            yield server
        finally:
            _event_bus.emit(
                "run_finished", op="campaign", campaign=self.directory.name
            )
            _event_bus.flush(timeout_s=2.0)
            if server is not None:
                server.close()
                self.status_address = None
            if sink is not None:
                _event_bus.remove_sink(sink)
                sink.close()

    def _live_status(self, total_planned: int) -> Dict[str, object]:
        """The ``status`` response's campaign block (cheap to compute)."""
        try:
            progress = self.load_progress()
        except CampaignError:
            progress = {}
        return {
            "campaign": self.directory.name,
            "total_planned": total_planned,
            "progress": progress,
            "worker_outcomes": len(
                list(self.directory.glob("*.outcome.json"))
            ),
        }

    def _execute_pass(
        self,
        specs: List[RunSpec],
        runs: Dict[str, dict],
        result: CampaignResult,
        ledger_sink: Optional[obs_ledger.LedgerAppender],
        pass_begin: float,
    ) -> None:
        for spec in specs:
            state = runs.get(spec.name, {})
            if state.get("status") == "done" and self.report_path(spec.name).exists():
                _RUNS_SKIPPED.inc()
                result.outcomes.append(
                    RunOutcome(name=spec.name, status="skipped")
                )
                continue
            outcome = self._execute_one(spec)
            runs[spec.name] = {
                "status": outcome.status,
                "wall_time_s": outcome.wall_time_s,
                "finished_unix_s": time.time(),
            }
            if outcome.error is not None:
                runs[spec.name]["error"] = outcome.error
            result.outcomes.append(outcome)
            self._save_manifest(
                runs, progress=self._progress(result, len(specs), spec.name)
            )
            _event_bus.emit(
                "checkpoint_written",
                target="manifest",
                run=spec.name,
                status=outcome.status,
            )
            _event_bus.emit("heartbeat", run=spec.name)
            self._ledger_run(spec, outcome, ledger_sink)
        self._ledger_summary(
            result, time.perf_counter() - pass_begin, ledger_sink
        )

    def _progress(
        self, result: CampaignResult, total_planned: int, last_run: str
    ) -> Dict[str, object]:
        """The heartbeat written alongside every manifest update."""
        return {
            "updated_unix_s": time.time(),
            "counts": result.counts(),
            "total_planned": total_planned,
            "last_run": last_run,
        }

    def _ledger_run(
        self,
        spec: RunSpec,
        outcome: RunOutcome,
        sink: Optional[obs_ledger.LedgerAppender] = None,
    ) -> None:
        """Append one ``campaign-run`` record, when a ledger is wired."""
        if self.ledger is None:
            return
        writer = sink if sink is not None else self.ledger
        report = outcome.report
        quality = (
            dataclasses.asdict(report.quality)
            if report is not None and report.quality is not None
            else None
        )
        extra: Dict[str, object] = {"status": outcome.status}
        if outcome.error is not None:
            extra["error"] = outcome.error
        if report is not None:
            extra["miss_count"] = report.miss_count
            extra["low_confidence_count"] = report.low_confidence_count
            extra["stall_fraction"] = report.stall_fraction
        writer.append(
            obs_ledger.record(
                kind="campaign-run",
                label=f"{self.directory.name}/{spec.name}",
                wall_time_s=outcome.wall_time_s,
                config=spec.config,
                quality=quality,
                extra=extra,
            )
        )

    def _ledger_summary(
        self,
        result: CampaignResult,
        wall_time_s: float,
        sink: Optional[obs_ledger.LedgerAppender] = None,
    ) -> None:
        """Append one ``campaign`` summary record per execute() pass."""
        if self.ledger is None:
            return
        writer = sink if sink is not None else self.ledger
        extra: Dict[str, object] = {
            "counts": result.counts(),
            "completed": result.completed,
        }
        if obs_enabled():
            # Bridge the live-telemetry rollup into the post-hoc
            # record: the dashboard's "final" numbers can be checked
            # against what the bus saw while the pass was in flight.
            stats = _event_bus.stats()
            extra["events"] = {
                key: stats[key]
                for key in (
                    "total",
                    "samples_total",
                    "stalls_total",
                    "quality_flags_total",
                    "dropped_events",
                )
            }
        writer.append(
            obs_ledger.record(
                kind="campaign",
                label=self.directory.name,
                wall_time_s=wall_time_s,
                extra=extra,
            )
        )

    def _execute_one(self, spec: RunSpec) -> RunOutcome:
        """Acquire, profile, and persist one run, absorbing failures."""
        begin = time.perf_counter()
        with _trace.span("campaign_run", run=spec.name):
            try:
                capture = self._acquire(spec)
                report = Emprof.from_capture(
                    capture, config=spec.config
                ).profile()
            except AcquisitionError as exc:
                _RUNS_FAILED.inc()
                return RunOutcome(
                    name=spec.name,
                    status="failed",
                    error=f"{type(exc).__name__}: {exc}",
                    wall_time_s=time.perf_counter() - begin,
                )
            # Persist the report before the manifest marks the run
            # done: a crash between the two writes re-runs the run,
            # never trusts a missing report.
            repro_io.save_report(self.report_path(spec.name), report)
        _RUNS_COMPLETED.inc()
        return RunOutcome(
            name=spec.name,
            status="done",
            report=report,
            wall_time_s=time.perf_counter() - begin,
        )

    def _acquire(self, spec: RunSpec):
        kwargs = {} if self._sleep is None else {"sleep": self._sleep}
        return acquire_with_retry(
            spec.source_factory(), policy=self.retry, **kwargs
        )


# ---------------------------------------------------------------------------
# multi-process execution
# ---------------------------------------------------------------------------


class CampaignExecution:
    """A launched multi-worker pass; :meth:`join` merges the result.

    Created by :meth:`Campaign.start`.  The parent holds the open
    ``campaign`` span (workers stitch under it via the propagated
    :class:`~repro.obs.tracectx.TraceContext`), the status server, and
    the shared event sink; workers run their share of the specs and
    checkpoint each run as ``<name>.outcome.json``.  Killing a worker
    mid-pass is survivable: its finished runs keep their outcome files
    and reports, its unfinished ones are marked failed at join and
    re-attempted by the next pass.

    Attributes:
        processes: worker label -> live :class:`multiprocessing.Process`
            (exposed so callers - and the live-demo test - can signal
            individual workers).
        assignments: worker label -> the specs it was handed.
    """

    def __init__(self, campaign: Campaign, specs: List[RunSpec]):
        self.campaign = campaign
        self.specs = specs
        self.processes: Dict[str, multiprocessing.process.BaseProcess] = {}
        self.assignments: Dict[str, List[RunSpec]] = {}
        self.result: Optional[CampaignResult] = None
        self._skipped: List[str] = []
        self._pass_begin = 0.0
        self._observation = None
        self._span = None
        self._server = None

    def start(self) -> "CampaignExecution":
        """Fork the workers; returns immediately."""
        campaign = self.campaign
        self._pass_begin = time.perf_counter()
        self._observation = campaign._observation(len(self.specs))
        self._server = self._observation.__enter__()
        self._span = _trace.span(
            "campaign",
            campaign=campaign.directory.name,
            workers=campaign.workers,
        )
        self._span.__enter__()

        runs = campaign.load_manifest()
        todo: List[RunSpec] = []
        for spec in self.specs:
            state = runs.get(spec.name, {})
            if (
                state.get("status") == "done"
                and campaign.report_path(spec.name).exists()
            ):
                self._skipped.append(spec.name)
            else:
                todo.append(spec)
                # A stale outcome file from an earlier pass must not
                # masquerade as this pass's result.
                with contextlib.suppress(FileNotFoundError):
                    campaign.outcome_path(spec.name).unlink()

        context = tracectx.current().child(_trace.current_span_token())
        status_address = (
            self._server.address if self._server is not None else None
        )
        # Fork, not spawn: RunSpec factories are arbitrary callables
        # (closures, lambdas) that only survive by inheritance.
        mp_context = multiprocessing.get_context("fork")
        n_workers = min(campaign.workers, len(todo))
        for index in range(n_workers):
            label = f"worker{index}"
            assigned = todo[index::n_workers]
            process = mp_context.Process(
                target=_worker_main,
                name=label,
                args=(
                    campaign,
                    assigned,
                    label,
                    context,
                    status_address,
                ),
            )
            process.start()
            self.processes[label] = process
            self.assignments[label] = assigned
        return self

    def alive(self) -> List[str]:
        """Labels of workers still running."""
        return [
            label
            for label, process in self.processes.items()
            if process.is_alive()
        ]

    def join(self, timeout_s: Optional[float] = None) -> CampaignResult:
        """Wait for the workers and merge their checkpoints.

        Workers still alive after ``timeout_s`` (None = wait forever)
        are terminated; their unfinished runs - like those of a worker
        that died on its own - are recorded as failed with the worker's
        exit code, and will be re-attempted by the next pass.
        """
        deadline = (
            None if timeout_s is None else time.monotonic() + timeout_s
        )
        for process in self.processes.values():
            if deadline is None:
                process.join()
            else:
                process.join(max(0.0, deadline - time.monotonic()))
        for process in self.processes.values():
            if process.is_alive():
                process.terminate()
                process.join(1.0)

        campaign = self.campaign
        result = CampaignResult()
        runs = campaign.load_manifest()
        last_run = ""
        outcome_by_name: Dict[str, RunOutcome] = {}
        for name in self._skipped:
            _RUNS_SKIPPED.inc()
            outcome_by_name[name] = RunOutcome(name=name, status="skipped")
        for label, assigned in self.assignments.items():
            process = self.processes[label]
            for spec in assigned:
                outcome = self._collect(spec, label, process.exitcode)
                outcome_by_name[spec.name] = outcome
                runs[spec.name] = {
                    "status": outcome.status,
                    "wall_time_s": outcome.wall_time_s,
                    "finished_unix_s": time.time(),
                    "worker": label,
                }
                if outcome.error is not None:
                    runs[spec.name]["error"] = outcome.error
                last_run = spec.name
        for spec in self.specs:
            outcome = outcome_by_name.get(spec.name)
            if outcome is not None:
                result.outcomes.append(outcome)

        campaign._save_manifest(
            runs,
            progress=campaign._progress(result, len(self.specs), last_run),
        )
        _event_bus.emit(
            "checkpoint_written",
            target="manifest",
            campaign=campaign.directory.name,
        )
        self._ledger(result)
        if self._span is not None:
            self._span.__exit__(None, None, None)
            self._span = None
        if obs_enabled():
            # After the span closes, so the campaign span itself is in
            # the payload the stitcher reads.
            _trace_write_safe(
                _trace, campaign.directory / "main.trace.json"
            )
        if self._observation is not None:
            self._observation.__exit__(None, None, None)
            self._observation = None
        self.result = result
        return result

    def _collect(
        self, spec: RunSpec, label: str, exitcode: Optional[int]
    ) -> RunOutcome:
        """One run's outcome from its worker checkpoint (or absence)."""
        campaign = self.campaign
        path = campaign.outcome_path(spec.name)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            payload = None
        if payload is None or payload.get("status") not in ("done", "failed"):
            _RUNS_FAILED.inc()
            return RunOutcome(
                name=spec.name,
                status="failed",
                error=(
                    f"worker {label} (exit code {exitcode}) "
                    "died before finishing this run"
                ),
            )
        status = payload["status"]
        report = None
        if status == "done":
            _RUNS_COMPLETED.inc()
            try:
                report = campaign.load_report(spec.name)
            except (OSError, ValueError):
                report = None
        else:
            _RUNS_FAILED.inc()
        return RunOutcome(
            name=spec.name,
            status=status,
            report=report,
            error=payload.get("error"),
            wall_time_s=float(payload.get("wall_time_s", 0.0)),
        )

    def _ledger(self, result: CampaignResult) -> None:
        campaign = self.campaign
        if campaign.ledger is None:
            return
        outcomes = {o.name: o for o in result.outcomes}
        with campaign.ledger.appender(fsync_each=False) as sink:
            for spec in self.specs:
                outcome = outcomes.get(spec.name)
                if outcome is not None and outcome.status != "skipped":
                    campaign._ledger_run(spec, outcome, sink)
            campaign._ledger_summary(
                result, time.perf_counter() - self._pass_begin, sink
            )


def _trace_write_safe(tracer, path: Path) -> None:
    """Write a trace payload, never letting I/O kill the pass."""
    try:
        tracer.write(str(path))
    except OSError:
        pass


def _worker_main(
    campaign: Campaign,
    specs: List[RunSpec],
    label: str,
    context: tracectx.TraceContext,
    status_address: Optional[Tuple[str, int]],
) -> None:
    """A forked campaign worker's whole life.

    Runs in the child process.  The forked copies of the global
    tracer/bus still hold the parent's spans, sinks, and counters, so
    the first job is to shed that inherited state (without closing the
    parent's file descriptors); then events flow to the shared NDJSON
    file and - when the parent is serving status - over a socket sink,
    a heartbeat thread ticks, and the assigned specs execute exactly
    like the serial path, checkpointing each run as an outcome file
    instead of touching the shared manifest.
    """
    tracectx.activate(context)
    _trace.reset()
    _trace.set_process_label(label)
    _event_bus.reset()
    _event_bus.set_source(label)
    stop = threading.Event()
    if obs_enabled():
        if status_address is not None:
            # Push to the parent's status server; the parent's bus
            # re-delivers ingested events to its own sinks (the shared
            # NDJSON file, watch subscriptions), so attaching the file
            # sink here too would write every worker event twice.
            _event_bus.add_sink(
                SocketSink(status_address[0], status_address[1])
            )
        else:
            _event_bus.add_sink(NDJSONFileSink(campaign.events_path))
        _event_bus.emit("heartbeat", worker=label, phase="start")

        def _beat() -> None:
            while not stop.wait(campaign.heartbeat_interval_s):
                _event_bus.emit("heartbeat", worker=label)

        threading.Thread(
            target=_beat, name=f"{label}-heartbeat", daemon=True
        ).start()
    try:
        with _trace.span("campaign_worker", worker=label, runs=len(specs)):
            for spec in specs:
                outcome = campaign._execute_one(spec)
                obs_ledger.atomic_write_json(
                    campaign.outcome_path(spec.name),
                    {
                        "name": spec.name,
                        "status": outcome.status,
                        "error": outcome.error,
                        "wall_time_s": outcome.wall_time_s,
                        "finished_unix_s": time.time(),
                        "worker": label,
                    },
                )
                _event_bus.emit(
                    "checkpoint_written",
                    target="outcome",
                    run=spec.name,
                    status=outcome.status,
                )
    finally:
        stop.set()
        if obs_enabled():
            _event_bus.emit("heartbeat", worker=label, phase="end")
            _trace_write_safe(
                _trace, campaign.directory / f"{label}.trace.json"
            )
            _event_bus.flush(timeout_s=2.0)
            _event_bus.close()
