"""Shared experiment drivers: workload -> signal -> profile.

Two measurement paths, matching the paper's methodology:

* :func:`run_simulator` - the Section V-C path: EMPROF analyzes the
  simulator's power trace directly (clean signal, ground truth
  attached).
* :func:`run_device` - the Section V-B / VI path: the power trace is
  pushed through the EM apparatus (emission model, probe channel,
  bandwidth-limited receiver) and EMPROF analyzes the received
  capture, exactly as it would a physical recording.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.markers import MarkerWindow, find_marker_window
from ..core.profiler import Emprof, EmprofConfig
from ..core.events import ProfileReport
from ..obs import metrics as _metrics, trace as _trace
from ..devices.models import default_channel
from ..emsignal.apparatus import Apparatus
from ..emsignal.channel import ChannelConfig
from ..emsignal.receiver import Capture, MHZ
from ..emsignal.synth import EmissionModel
from ..sim.config import MachineConfig
from ..sim.machine import Machine, SimulationResult
from ..workloads.base import Workload

_EXPERIMENT_RUNS = _metrics.counter(
    "experiment_runs_total", "run_simulator()/run_device() invocations"
)


@dataclass
class ExperimentRun:
    """Everything one measurement produced.

    Attributes:
        result: the simulation (power trace + ground truth).
        capture: the EM capture, when the device path was used.
        emprof: the configured profiler over whichever signal EMPROF
            analyzed.
        report: the whole-signal profile.
    """

    result: SimulationResult
    capture: Optional[Capture]
    emprof: Emprof
    report: ProfileReport

    @property
    def signal(self):
        """The magnitude signal EMPROF analyzed."""
        return self.emprof.signal

    @property
    def sample_period_cycles(self) -> float:
        """Processor cycles per analyzed sample."""
        return self.emprof.sample_period_cycles


def run_simulator(
    workload: Workload,
    config: Optional[MachineConfig] = None,
    emprof_config: Optional[EmprofConfig] = None,
    seed: int = 0,
) -> ExperimentRun:
    """Simulate and profile the raw power trace (Section V-C path)."""
    from ..devices.models import sesc

    with _trace.span(
        "run_simulator", workload=getattr(workload, "name", "?")
    ):
        machine = Machine(config if config is not None else sesc(), seed=seed)
        result = machine.run(workload)
        emprof = Emprof.from_simulation(result, config=emprof_config)
        run = ExperimentRun(
            result=result, capture=None, emprof=emprof, report=emprof.profile()
        )
    _EXPERIMENT_RUNS.inc()
    return run


def run_device(
    workload: Workload,
    device: MachineConfig,
    bandwidth_hz: float = 40 * MHZ,
    channel: Optional[ChannelConfig] = None,
    emission: Optional[EmissionModel] = None,
    emprof_config: Optional[EmprofConfig] = None,
    seed: int = 0,
) -> ExperimentRun:
    """Simulate, measure through the EM apparatus, and profile.

    The channel defaults to the device's probe setup (see
    :func:`repro.devices.default_channel`).
    """
    with _trace.span(
        "run_device",
        workload=getattr(workload, "name", "?"),
        device=device.name,
        bandwidth_hz=bandwidth_hz,
    ):
        machine = Machine(device, seed=seed)
        result = machine.run(workload)
        apparatus = Apparatus(
            emission=emission if emission is not None else EmissionModel(),
            channel=(
                channel
                if channel is not None
                else default_channel(device.name, seed=seed)
            ),
            bandwidth_hz=bandwidth_hz,
        )
        capture = apparatus.measure(result)
        emprof = Emprof.from_capture(capture, config=emprof_config)
        run = ExperimentRun(
            result=result, capture=capture, emprof=emprof, report=emprof.profile()
        )
    _EXPERIMENT_RUNS.inc()
    return run


def microbenchmark_window(
    run: ExperimentRun, marker_min_samples: int = 200
) -> Tuple[ProfileReport, MarkerWindow]:
    """Isolate the marker-bracketed window and profile only it.

    This is how Table II counts are produced: the measurement window
    between the two blank loops is found *from the signal*, then
    detection is restricted to it.
    """
    window = find_marker_window(run.signal, marker_min_samples=marker_min_samples)
    report = run.emprof.profile_window(window.begin_sample, window.end_sample)
    return report, window


def window_cycles(run: ExperimentRun, window: MarkerWindow) -> Tuple[float, float]:
    """The marker window as (begin, end) cycles for validation."""
    period = run.sample_period_cycles
    return window.begin_sample * period, window.end_sample * period
