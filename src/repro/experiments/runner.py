"""Shared experiment drivers: workload -> signal -> profile.

Two measurement paths, matching the paper's methodology:

* :func:`run_simulator` - the Section V-C path: EMPROF analyzes the
  simulator's power trace directly (clean signal, ground truth
  attached).
* :func:`run_device` - the Section V-B / VI path: the power trace is
  pushed through the EM apparatus (emission model, probe channel,
  bandwidth-limited receiver) and EMPROF analyzes the received
  capture, exactly as it would a physical recording.

A physical bench fails in ways a simulator never does - the SDR
driver drops a buffer, USB hiccups, the probe gets bumped - so
acquisition is wrapped in :func:`acquire_with_retry`: transient
failures (:class:`repro.errors.AcquisitionError` with
``transient=True``) are retried with bounded exponential backoff,
permanent ones (missing hardware, corrupt files) fail fast.  Campaign
orchestration with checkpoint/resume lives in
:mod:`repro.experiments.campaign`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from ..core.markers import MarkerWindow, find_marker_window
from ..core.profiler import Emprof, EmprofConfig
from ..core.events import ProfileReport
from ..errors import AcquisitionError
from ..obs import metrics as _metrics, trace as _trace
from ..obs.events import bus as _event_bus
from ..devices.models import default_channel
from ..emsignal.apparatus import Apparatus
from ..emsignal.channel import ChannelConfig
from ..emsignal.receiver import Capture, MHZ
from ..emsignal.synth import EmissionModel
from ..sim.config import MachineConfig
from ..sim.machine import Machine, SimulationResult
from ..workloads.base import Workload

_EXPERIMENT_RUNS = _metrics.counter(
    "experiment_runs_total", "run_simulator()/run_device() invocations"
)
_ACQUIRE_RETRIES = _metrics.counter(
    "acquisition_retries_total", "transient acquisition failures retried"
)
_ACQUIRE_FAILURES = _metrics.counter(
    "acquisition_failures_total", "acquisitions abandoned after all retries"
)
_RUN_WALL_TIME = _metrics.gauge(
    "experiment_wall_time_seconds", "last experiment driver's wall time"
)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry-with-backoff for transient acquisition failures.

    Attributes:
        max_attempts: total tries, including the first (1 = no retry).
        backoff_base_s: sleep before the first retry.
        backoff_factor: multiplier applied to the sleep per retry.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s cannot be negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be at least 1")

    def delay(self, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (1-based)."""
        return self.backoff_base_s * self.backoff_factor ** (attempt - 1)


def acquire_with_retry(
    source,
    policy: Optional[RetryPolicy] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> Capture:
    """Acquire from ``source``, retrying transient failures.

    Only :class:`repro.errors.AcquisitionError` subclasses with
    ``transient=True`` (driver overruns, USB resets) are retried;
    permanent failures - :class:`repro.errors.HardwareMissingError`,
    :class:`repro.errors.CorruptCaptureError` - and non-acquisition
    exceptions propagate immediately.  ``sleep`` is injectable so
    tests (and event-loop integrations) can skip real waiting.
    """
    pol = policy if policy is not None else RetryPolicy()
    attempt = 1
    while True:
        try:
            return source.capture()
        except AcquisitionError as exc:
            if not exc.transient or attempt >= pol.max_attempts:
                _ACQUIRE_FAILURES.inc()
                raise
            _ACQUIRE_RETRIES.inc()
            sleep(pol.delay(attempt))
            attempt += 1


@dataclass(frozen=True)
class SimulatedCaptureSource:
    """A picklable ``SignalSource``: simulate a workload, measure it.

    The campaign daemon (:mod:`repro.experiments.service`) builds
    these from line-JSON ``submit`` payloads, so - unlike the ad-hoc
    lambdas tests use - every field is a plain scalar and the object
    survives pickling into any worker, not just fork-inherited ones.
    Mirrors the ``repro capture`` CLI path: workload -> simulator ->
    EM apparatus -> :class:`~repro.emsignal.receiver.Capture`.

    Attributes:
        workload: ``micro``, ``boot``, or a SPEC benchmark name.
        device: a :data:`repro.devices.DEVICE_NAMES` entry
            (``alcatel`` / ``samsung`` / ``olimex``).
        tm / cm: total / consecutive misses (micro workload only).
        scale: workload scale factor (boot / SPEC workloads).
        seed: simulation + channel seed.
        bandwidth_mhz: receiver bandwidth.

    Raises:
        ValueError: unknown workload or device name (at
            :meth:`capture` time, where the registries are consulted).
    """

    workload: str = "micro"
    device: str = "olimex"
    tm: int = 16
    cm: int = 16
    scale: float = 1.0
    seed: int = 0
    bandwidth_mhz: float = 40.0

    def _build_workload(self) -> Workload:
        from ..workloads import (
            BootWorkload,
            Microbenchmark,
            SPEC_BENCHMARKS,
            spec_workload,
        )

        if self.workload == "micro":
            return Microbenchmark(
                total_misses=self.tm,
                consecutive_misses=self.cm,
                seed=self.seed,
            )
        if self.workload == "boot":
            return BootWorkload(seed=self.seed, scale=self.scale)
        if self.workload in SPEC_BENCHMARKS:
            return spec_workload(
                self.workload, seed=self.seed or 11, scale=self.scale
            )
        raise ValueError(
            f"unknown workload {self.workload!r}; expected 'micro', "
            f"'boot' or one of {', '.join(SPEC_BENCHMARKS)}"
        )

    def capture(self) -> Capture:
        from ..devices import DEVICE_NAMES, by_name
        from ..emsignal import measure
        from ..sim.machine import simulate

        if self.device not in DEVICE_NAMES:
            raise ValueError(
                f"unknown device {self.device!r}; expected one of "
                f"{', '.join(DEVICE_NAMES)}"
            )
        device = by_name(self.device)
        result = simulate(self._build_workload(), device, seed=self.seed)
        return measure(
            result,
            bandwidth_hz=self.bandwidth_mhz * MHZ,
            channel=default_channel(device.name, seed=self.seed),
        )


@dataclass
class ExperimentRun:
    """Everything one measurement produced.

    Attributes:
        result: the simulation (power trace + ground truth).
        capture: the EM capture, when the device path was used.
        emprof: the configured profiler over whichever signal EMPROF
            analyzed.
        report: the whole-signal profile.
        wall_time_s: end-to-end driver wall time (simulate + measure +
            profile), fed into campaign telemetry and the run ledger.
    """

    result: SimulationResult
    capture: Optional[Capture]
    emprof: Emprof
    report: ProfileReport
    wall_time_s: float = 0.0

    @property
    def signal(self):
        """The magnitude signal EMPROF analyzed."""
        return self.emprof.signal

    @property
    def sample_period_cycles(self) -> float:
        """Processor cycles per analyzed sample."""
        return self.emprof.sample_period_cycles


def run_simulator(
    workload: Workload,
    config: Optional[MachineConfig] = None,
    emprof_config: Optional[EmprofConfig] = None,
    seed: int = 0,
) -> ExperimentRun:
    """Simulate and profile the raw power trace (Section V-C path)."""
    from ..devices.models import sesc

    begin = time.perf_counter()
    name = getattr(workload, "name", "?")
    _event_bus.emit("run_started", op="run_simulator", workload=name)
    with _trace.span("run_simulator", workload=name):
        machine = Machine(config if config is not None else sesc(), seed=seed)
        result = machine.run(workload)
        emprof = Emprof.from_simulation(result, config=emprof_config)
        run = ExperimentRun(
            result=result, capture=None, emprof=emprof, report=emprof.profile()
        )
    run.wall_time_s = time.perf_counter() - begin
    _EXPERIMENT_RUNS.inc()
    _RUN_WALL_TIME.set(run.wall_time_s)
    _event_bus.emit(
        "run_finished",
        op="run_simulator",
        workload=name,
        stalls=len(run.report.stalls),
        wall_time_s=run.wall_time_s,
    )
    return run


def run_device(
    workload: Workload,
    device: MachineConfig,
    bandwidth_hz: float = 40 * MHZ,
    channel: Optional[ChannelConfig] = None,
    emission: Optional[EmissionModel] = None,
    emprof_config: Optional[EmprofConfig] = None,
    seed: int = 0,
) -> ExperimentRun:
    """Simulate, measure through the EM apparatus, and profile.

    The channel defaults to the device's probe setup (see
    :func:`repro.devices.default_channel`).
    """
    begin = time.perf_counter()
    name = getattr(workload, "name", "?")
    _event_bus.emit(
        "run_started", op="run_device", workload=name, device=device.name
    )
    with _trace.span(
        "run_device",
        workload=name,
        device=device.name,
        bandwidth_hz=bandwidth_hz,
    ):
        machine = Machine(device, seed=seed)
        result = machine.run(workload)
        apparatus = Apparatus(
            emission=emission if emission is not None else EmissionModel(),
            channel=(
                channel
                if channel is not None
                else default_channel(device.name, seed=seed)
            ),
            bandwidth_hz=bandwidth_hz,
        )
        capture = apparatus.measure(result)
        emprof = Emprof.from_capture(capture, config=emprof_config)
        run = ExperimentRun(
            result=result, capture=capture, emprof=emprof, report=emprof.profile()
        )
    run.wall_time_s = time.perf_counter() - begin
    _EXPERIMENT_RUNS.inc()
    _RUN_WALL_TIME.set(run.wall_time_s)
    _event_bus.emit(
        "run_finished",
        op="run_device",
        workload=name,
        device=device.name,
        stalls=len(run.report.stalls),
        wall_time_s=run.wall_time_s,
    )
    return run


def microbenchmark_window(
    run: ExperimentRun, marker_min_samples: int = 200
) -> Tuple[ProfileReport, MarkerWindow]:
    """Isolate the marker-bracketed window and profile only it.

    This is how Table II counts are produced: the measurement window
    between the two blank loops is found *from the signal*, then
    detection is restricted to it.
    """
    window = find_marker_window(run.signal, marker_min_samples=marker_min_samples)
    report = run.emprof.profile_window(window.begin_sample, window.end_sample)
    return report, window


def window_cycles(run: ExperimentRun, window: MarkerWindow) -> Tuple[float, float]:
    """The marker window as (begin, end) cycles for validation."""
    period = run.sample_period_cycles
    return window.begin_sample * period, window.end_sample * period
