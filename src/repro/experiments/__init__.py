"""Experiment drivers regenerating every table and figure.

* :mod:`repro.experiments.runner` - shared simulate/measure/profile
  drivers (the Section V-B and V-C measurement paths) plus
  retry-with-backoff acquisition.
* :mod:`repro.experiments.campaign` - checkpointed multi-run
  campaigns with resume, supervised across forked workers.
* :mod:`repro.experiments.service` - the ``repro-campaignd`` daemon:
  a fault-tolerant job queue over supervised campaigns.
* :mod:`repro.experiments.tables` - Tables I-V row generators plus the
  perf anecdote.
* :mod:`repro.experiments.figures` - Figs. 1-14 series generators.
"""

from .campaign import (
    Campaign,
    CampaignExecution,
    CampaignResult,
    RunOutcome,
    RunSpec,
)
from .runner import (
    ExperimentRun,
    RetryPolicy,
    SimulatedCaptureSource,
    acquire_with_retry,
    microbenchmark_window,
    run_device,
    run_simulator,
    window_cycles,
)
from .service import CampaignService, build_specs, expand_matrix
from .tables import (
    DEVICE_ORDER,
    MICRO_GRID,
    PerfAnecdote,
    Table2Row,
    Table3Row,
    Table4Row,
    format_table2,
    format_table3,
    format_table4,
    perf_anecdote,
    table1_rows,
    table2_rows,
    table3_micro_rows,
    table3_spec_rows,
    table4_rows,
    table5_rows,
)

__all__ = [
    "ExperimentRun",
    "RetryPolicy",
    "SimulatedCaptureSource",
    "acquire_with_retry",
    "Campaign",
    "CampaignExecution",
    "CampaignResult",
    "CampaignService",
    "RunOutcome",
    "RunSpec",
    "build_specs",
    "expand_matrix",
    "run_simulator",
    "run_device",
    "microbenchmark_window",
    "window_cycles",
    "DEVICE_ORDER",
    "MICRO_GRID",
    "table1_rows",
    "table2_rows",
    "table3_micro_rows",
    "table3_spec_rows",
    "table4_rows",
    "table5_rows",
    "perf_anecdote",
    "PerfAnecdote",
    "Table2Row",
    "Table3Row",
    "Table4Row",
    "format_table2",
    "format_table3",
    "format_table4",
]
