"""Experiment drivers regenerating every table and figure.

* :mod:`repro.experiments.runner` - shared simulate/measure/profile
  drivers (the Section V-B and V-C measurement paths) plus
  retry-with-backoff acquisition.
* :mod:`repro.experiments.campaign` - checkpointed multi-run
  campaigns with resume.
* :mod:`repro.experiments.tables` - Tables I-V row generators plus the
  perf anecdote.
* :mod:`repro.experiments.figures` - Figs. 1-14 series generators.
"""

from .campaign import Campaign, CampaignResult, RunOutcome, RunSpec
from .runner import (
    ExperimentRun,
    RetryPolicy,
    acquire_with_retry,
    microbenchmark_window,
    run_device,
    run_simulator,
    window_cycles,
)
from .tables import (
    DEVICE_ORDER,
    MICRO_GRID,
    PerfAnecdote,
    Table2Row,
    Table3Row,
    Table4Row,
    format_table2,
    format_table3,
    format_table4,
    perf_anecdote,
    table1_rows,
    table2_rows,
    table3_micro_rows,
    table3_spec_rows,
    table4_rows,
    table5_rows,
)

__all__ = [
    "ExperimentRun",
    "RetryPolicy",
    "acquire_with_retry",
    "Campaign",
    "CampaignResult",
    "RunOutcome",
    "RunSpec",
    "run_simulator",
    "run_device",
    "microbenchmark_window",
    "window_cycles",
    "DEVICE_ORDER",
    "MICRO_GRID",
    "table1_rows",
    "table2_rows",
    "table3_micro_rows",
    "table3_spec_rows",
    "table4_rows",
    "table5_rows",
    "perf_anecdote",
    "PerfAnecdote",
    "Table2Row",
    "Table3Row",
    "Table4Row",
    "format_table2",
    "format_table3",
    "format_table4",
]
