"""One-command reproduction: run everything, write a results report.

``generate_report`` regenerates the paper's tables and headline figure
statistics and writes a self-contained ``results.md`` (plus ``.npz``
series for the figures) into an output directory - the artifact a
reviewer would ask for.  The bench suite under ``benchmarks/`` asserts
the claims; this module *records* the numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from ..attribution.report import format_region_table
from . import figures, tables

PathLike = Union[str, Path]


@dataclass(frozen=True)
class ReportSection:
    """One generated section of the results report."""

    title: str
    body: str
    seconds: float


def _timed(fn, *args, **kwargs):
    t0 = time.perf_counter()
    out = fn(*args, **kwargs)
    return out, time.perf_counter() - t0


def _section_table2(scale: float) -> ReportSection:
    rows, dt = _timed(tables.table2_rows, scale=scale)
    mean = float(np.mean([r.accuracy for r in rows]))
    body = tables.format_table2(rows)
    body += f"\n\nAverage accuracy: {100 * mean:.2f}% (paper: 99.52%)"
    return ReportSection("Table II - microbenchmark accuracy (device path)", body, dt)


def _section_table3(scale: float) -> ReportSection:
    micro, dt1 = _timed(tables.table3_micro_rows, scale=scale)
    spec, dt2 = _timed(tables.table3_spec_rows, scale=scale)
    body = tables.format_table3(micro + spec)
    miss = float(np.mean([r.miss_accuracy for r in spec]))
    stall = float(np.mean([r.stall_accuracy for r in spec]))
    body += (
        f"\n\nSPEC averages: miss {100 * miss:.2f}% (paper 98.5%), "
        f"stall {100 * stall:.2f}% (paper 99.5%)"
    )
    return ReportSection("Table III - accuracy vs simulator ground truth", body, dt1 + dt2)


def _section_table4(scale: float) -> ReportSection:
    rows, dt = _timed(tables.table4_rows, scale=scale)
    return ReportSection("Table IV - device profiles", tables.format_table4(rows), dt)


def _section_table5(scale: float) -> ReportSection:
    rows, dt = _timed(tables.table5_rows, scale=scale)
    return ReportSection(
        "Table V - parser attribution", format_region_table(rows), dt
    )


def _section_perf() -> ReportSection:
    pa, dt = _timed(tables.perf_anecdote)
    body = (
        f"1024 engineered misses -> perf reports mean {pa.mean_reported:.0f}, "
        f"std {pa.std_reported:.0f} over {pa.runs} runs "
        f"(paper: 32768 / 14543)"
    )
    return ReportSection("perf baseline anecdote (Section V)", body, dt)


def _section_fig11(scale: float, out_dir: Path) -> ReportSection:
    results, dt = _timed(figures.fig11_latency_histograms, scale=scale)
    lines = []
    arrays = {}
    for r in results:
        lines.append(
            f"{r.device:8s}: n={int(r.counts.sum()):5d} mean={r.mean_cycles:7.1f} "
            f"p99={r.p99_cycles:7.1f} tail(>=600cyc)={100 * r.tail_fraction_600:.2f}%"
        )
        arrays[f"{r.device}_edges"] = r.edges_cycles
        arrays[f"{r.device}_counts"] = r.counts
    np.savez_compressed(out_dir / "fig11_histograms.npz", **arrays)
    lines.append("series -> fig11_histograms.npz")
    return ReportSection("Fig. 11 - mcf stall-latency histograms", "\n".join(lines), dt)


def _section_fig12(scale: float, out_dir: Path) -> ReportSection:
    points, dt = _timed(figures.fig12_bandwidth_sweep, scale=scale)
    lines = [
        f"{p.device:8s} {p.bandwidth_hz / 1e6:5.0f} MHz: stalls={p.detected_stalls:5d} "
        f"mean={p.mean_stall_cycles:7.1f} cyc"
        for p in points
    ]
    np.savez_compressed(
        out_dir / "fig12_sweep.npz",
        device=np.array([p.device for p in points]),
        bandwidth_hz=np.array([p.bandwidth_hz for p in points]),
        detected=np.array([p.detected_stalls for p in points]),
        mean_cycles=np.array([p.mean_stall_cycles for p in points]),
    )
    lines.append("series -> fig12_sweep.npz")
    return ReportSection("Fig. 12 - measurement-bandwidth sweep (mcf)", "\n".join(lines), dt)


def _section_fig13(scale: float, out_dir: Path) -> ReportSection:
    runs, dt = _timed(figures.fig13_boot_profile, scale=scale)
    lines = []
    arrays = {}
    for r in runs:
        lines.append(
            f"run {r.run_id}: {r.total_misses} misses, "
            f"peak {r.miss_rate.max():.0f} misses/ms"
        )
        arrays[f"run{r.run_id}_time_ms"] = r.time_ms
        arrays[f"run{r.run_id}_rate"] = r.miss_rate
    np.savez_compressed(out_dir / "fig13_boot.npz", **arrays)
    lines.append("series -> fig13_boot.npz")
    return ReportSection("Fig. 13 - boot-sequence profiles", "\n".join(lines), dt)


def _section_fig5() -> ReportSection:
    r, dt = _timed(figures.fig5_refresh)
    interval = (
        f"{r.estimated_interval_us:.1f} us" if r.estimated_interval_us else "n/a"
    )
    body = (
        f"{r.refresh_stalls} refresh-coincident stalls, mean "
        f"{r.mean_duration_us:.2f} us (paper: 2-3 us), interval {interval} "
        f"(paper: >= ~70 us)"
    )
    return ReportSection("Fig. 5 - refresh collisions", body, dt)


def generate_report(
    output_dir: PathLike,
    scale: float = 1.0,
    include: Optional[List[str]] = None,
) -> Path:
    """Regenerate results and write ``results.md`` under ``output_dir``.

    Args:
        output_dir: directory to create/fill.
        scale: SPEC workload scale (1.0 = bench scale).
        include: optional subset of section keys to run, from
            {"table2", "table3", "table4", "table5", "perf", "fig5",
            "fig11", "fig12", "fig13"}; all when omitted.

    Returns:
        Path of the written ``results.md``.
    """
    out = Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)
    wanted = set(include) if include is not None else None

    builders = {
        "table2": lambda: _section_table2(scale),
        "table3": lambda: _section_table3(scale),
        "table4": lambda: _section_table4(scale),
        "table5": lambda: _section_table5(scale),
        "perf": _section_perf,
        "fig5": _section_fig5,
        "fig11": lambda: _section_fig11(scale, out),
        "fig12": lambda: _section_fig12(scale, out),
        "fig13": lambda: _section_fig13(scale, out),
    }
    unknown = (wanted or set()) - set(builders)
    if unknown:
        raise ValueError(f"unknown report sections: {sorted(unknown)}")

    sections: List[ReportSection] = []
    for key, builder in builders.items():
        if wanted is not None and key not in wanted:
            continue
        sections.append(builder())

    lines = [
        "# EMPROF reproduction - generated results",
        "",
        f"workload scale: {scale}",
        "",
    ]
    total = 0.0
    for section in sections:
        total += section.seconds
        lines.append(f"## {section.title}")
        lines.append("")
        lines.append("```")
        lines.append(section.body)
        lines.append("```")
        lines.append("")
        lines.append(f"_generated in {section.seconds:.1f} s_")
        lines.append("")
    lines.append(f"---\ntotal generation time: {total:.1f} s")

    report_path = out / "results.md"
    report_path.write_text("\n".join(lines))
    return report_path
