"""``repro-campaignd``: profiling-as-a-service over supervised campaigns.

The ROADMAP's item 1 end state: a long-running daemon that accepts
measurement jobs over the :mod:`repro.obs.statusd` line-JSON protocol,
executes each as a supervised multi-worker :class:`Campaign` pass
(worker watchdog, requeue, quarantine - see ``docs/service.md``), and
answers concurrent ``status`` queries while a pass runs.  One JSON
object per line, request in, response out, over plain TCP - the same
``eab``-style protocol shape the status server already speaks, which
this module *extends* with four verbs rather than reimplementing:

=============  ==========================================================
request        response
=============  ==========================================================
``submit``     enqueue a job: ``{"req": "submit", "runs": [...]}`` or
               ``{"req": "submit", "matrix": {...}}`` (cross product);
               replies ``{"ok": true, "job": "job0001", "runs": N}``
``status``     the standard status document plus a ``service`` block:
               job table, active job's live queue snapshot, drain flag
``cancel``     ``{"req": "cancel", "job": "job0001"}``: a queued job is
               dropped; a running one has its leased workers killed and
               their runs persisted as ``interrupted`` for a later pass
``drain``      stop accepting submits, finish every accepted job, exit
``shutdown``   stop accepting submits, finish only currently *leased*
               runs (checkpointing the rest), cancel queued jobs, exit
=============  ==========================================================

``SIGTERM`` is a graceful shutdown: the handler only sets a flag (no
locks, no I/O - the emlint signal-handler rule enforces this shape),
a watcher thread performs the actual drain, and the process exits 0
with every in-flight run either committed or checkpointed as
``interrupted`` in its job's manifest.

Durability is the campaign layer's: each job runs in its own
subdirectory (reusable via ``"dir"`` for resume), every run commits
through the manifest/outcome-file discipline, and requeue/quarantine
incidents land in the service's run ledger as they happen.
"""

from __future__ import annotations

import argparse
import functools
import itertools
import json
import signal
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from ..errors import ServiceError
from ..obs import ledger as obs_ledger
from ..obs import metrics as _metrics
from ..obs import statusd
from ..obs.events import bus as _event_bus
from .campaign import Campaign, CampaignExecution, RunSpec
from .runner import RetryPolicy, SimulatedCaptureSource

#: Run-payload keys understood by :func:`build_specs` /
#: :func:`expand_matrix` (everything but ``name``/``timeout_s`` maps
#: onto a :class:`SimulatedCaptureSource` field).
RUN_KEYS = (
    "workload",
    "device",
    "tm",
    "cm",
    "scale",
    "seed",
    "bandwidth_mhz",
)

_JOB_STATES = ("queued", "running", "done", "failed", "cancelled")


def expand_matrix(matrix: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """Cross-product a ``submit`` matrix into one run payload per cell.

    List-valued fields become axes; scalars are broadcast.  Each cell
    gets a deterministic filesystem-safe ``name`` built from its
    coordinates.

    Raises:
        ServiceError: unknown key or an empty axis.
    """
    allowed = RUN_KEYS + ("timeout_s",)
    keys: List[str] = []
    axes: List[List[Any]] = []
    for key, value in matrix.items():
        if key not in allowed:
            raise ServiceError(
                f"unknown matrix key {key!r}; expected one of "
                f"{', '.join(allowed)}"
            )
        values = list(value) if isinstance(value, (list, tuple)) else [value]
        if not values:
            raise ServiceError(f"matrix axis {key!r} is empty")
        keys.append(key)
        axes.append(values)
    runs: List[Dict[str, Any]] = []
    for combo in itertools.product(*axes):
        run: Dict[str, Any] = dict(zip(keys, combo))
        cell = "-".join(f"{k}{v}" for k, v in zip(keys, combo))
        run["name"] = cell.replace("/", "_").replace(" ", "_") or "run"
        runs.append(run)
    return runs


def build_specs(
    runs: List[Mapping[str, Any]],
    default_timeout_s: Optional[float] = None,
) -> List[RunSpec]:
    """Turn ``submit`` run payloads into picklable :class:`RunSpec`.

    Every source is a :class:`SimulatedCaptureSource` built via
    ``functools.partial`` from plain scalars, so specs survive any
    worker start method, not just fork inheritance.

    Raises:
        ServiceError: malformed payloads (wrong types, duplicate or
            unsafe names, unknown keys).
    """
    if not isinstance(runs, (list, tuple)) or not runs:
        raise ServiceError("submit needs a non-empty list of runs")
    specs: List[RunSpec] = []
    seen: set = set()
    for index, payload in enumerate(runs):
        if not isinstance(payload, Mapping):
            raise ServiceError(f"run #{index} is not a JSON object")
        unknown = set(payload) - set(RUN_KEYS) - {"name", "timeout_s"}
        if unknown:
            raise ServiceError(
                f"run #{index} has unknown keys: {', '.join(sorted(unknown))}"
            )
        name = str(payload.get("name") or f"run{index:04d}")
        if "/" in name or name in (".", ".."):
            raise ServiceError(f"run name {name!r} is not filesystem-safe")
        if name in seen:
            raise ServiceError(f"duplicate run name {name!r}")
        seen.add(name)
        try:
            factory = functools.partial(
                SimulatedCaptureSource,
                workload=str(payload.get("workload", "micro")),
                device=str(payload.get("device", "olimex")),
                tm=int(payload.get("tm", 16)),
                cm=int(payload.get("cm", 16)),
                scale=float(payload.get("scale", 1.0)),
                seed=int(payload.get("seed", 0)),
                bandwidth_mhz=float(payload.get("bandwidth_mhz", 40.0)),
            )
            timeout = payload.get("timeout_s", default_timeout_s)
            timeout_s = None if timeout is None else float(timeout)
        except (TypeError, ValueError) as exc:
            raise ServiceError(f"run {name!r}: {exc}") from exc
        specs.append(
            RunSpec(name=name, source_factory=factory, timeout_s=timeout_s)
        )
    return specs


@dataclass
class Job:
    """One submitted campaign pass and its lifecycle bookkeeping."""

    id: str
    name: str
    directory: str
    specs: List[RunSpec]
    state: str = "queued"  # one of _JOB_STATES
    submitted_unix_s: float = field(default_factory=time.time)
    started_unix_s: Optional[float] = None
    finished_unix_s: Optional[float] = None
    counts: Optional[Dict[str, int]] = None
    completed: Optional[bool] = None
    error: Optional[str] = None
    execution: Optional[CampaignExecution] = None

    def summary(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "id": self.id,
            "name": self.name,
            "dir": self.directory,
            "state": self.state,
            "runs": len(self.specs),
            "submitted_unix_s": self.submitted_unix_s,
        }
        for key in ("started_unix_s", "finished_unix_s", "counts",
                    "completed", "error"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.execution is not None:
            out["queue"] = self.execution.snapshot()
        return out


class CampaignService:
    """The daemon: a job queue of supervised campaign passes.

    One worker thread executes jobs FIFO (each job itself fans out
    across ``workers`` forked processes under the campaign
    supervisor); the embedded :class:`repro.obs.statusd.StatusServer`
    answers protocol requests concurrently, including while a pass is
    mid-flight.  All verb handlers run on server threads and only
    touch state under the service lock, so a wedged campaign can still
    be interrogated and cancelled.

    Args:
        directory: service root; each job runs in a subdirectory.
        host / port: bind address for the protocol socket (port 0
            picks an ephemeral port, published as :attr:`address`).
        workers: forked workers per campaign pass.
        retry / max_attempts / job_timeout_s / heartbeat_interval_s /
            heartbeat_timeout_s: supervisor knobs, passed through to
            every :class:`Campaign` (see its docstring).
        ledger: run-ledger path; defaults to ``LEDGER_obs.jsonl``
            inside ``directory``.
        flight / flight_retain: per-run flight recording and sidecar
            retention cap, passed through to every :class:`Campaign`.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        retry: Optional[RetryPolicy] = None,
        max_attempts: int = 3,
        job_timeout_s: Optional[float] = None,
        heartbeat_interval_s: float = 0.25,
        heartbeat_timeout_s: Optional[float] = None,
        ledger: Optional[Union[str, Path]] = None,
        flight: bool = False,
        flight_retain: Optional[int] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.host = host
        self._requested_port = int(port)
        self.workers = int(workers)
        self.retry = retry
        self.max_attempts = int(max_attempts)
        self.job_timeout_s = job_timeout_s
        self.heartbeat_interval_s = float(heartbeat_interval_s)
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.flight = bool(flight)
        self.flight_retain = flight_retain
        self.ledger_path = Path(
            ledger
            if ledger is not None
            else self.directory / obs_ledger.DEFAULT_LEDGER_NAME
        )
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._active: Optional[Job] = None
        self._next_job = 1
        self._draining = False
        self._shutdown = False
        self._sigterm = threading.Event()
        self._exited = threading.Event()
        self._server: Optional[statusd.StatusServer] = None
        self._runner: Optional[threading.Thread] = None
        self._watcher: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self):
        """``(host, port)`` clients should connect to (after start)."""
        if self._server is None:
            return (self.host, self._requested_port)
        return self._server.address

    def start(self) -> "CampaignService":
        """Bind the protocol socket and start the job runner thread."""
        if self._server is not None:
            raise ServiceError("service already started")
        self._server = statusd.StatusServer(
            _event_bus,
            metrics=_metrics,
            host=self.host,
            port=self._requested_port,
            extra_status=self._service_status,
            extra_requests={
                "submit": self._req_submit,
                "cancel": self._req_cancel,
                "drain": self._req_drain,
                "shutdown": self._req_shutdown,
            },
        ).start()
        self._runner = threading.Thread(
            target=self._run_loop, name="campaignd-runner", daemon=True
        )
        self._runner.start()
        self._watcher = threading.Thread(
            target=self._signal_watch, name="campaignd-sigwatch", daemon=True
        )
        self._watcher.start()
        return self

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT to a graceful shutdown (main thread only).

        The handlers only set an Event - no locks, no allocation, no
        I/O - and the ``campaignd-sigwatch`` thread does the real work.
        """
        signal.signal(signal.SIGTERM, self._on_signal)
        signal.signal(signal.SIGINT, self._on_signal)

    def _on_signal(self, signum, frame) -> None:
        self._sigterm.set()

    def _signal_watch(self) -> None:
        while not self._exited.is_set():
            if self._sigterm.wait(timeout=0.1):
                self.begin_shutdown()
                return

    def wait(self, timeout_s: Optional[float] = None) -> bool:
        """Block until the runner exits (after drain/shutdown).

        Waits in short slices rather than one indefinite ``wait``: a
        process-directed SIGTERM may be picked up by *any* thread's C
        handler, and the Python-level handler only runs once the main
        thread re-enters the eval loop - a main thread parked forever
        in ``sem_wait`` would never process it and the daemon would
        ignore the signal.
        """
        deadline = (
            None if timeout_s is None else time.monotonic() + timeout_s
        )
        while True:
            if deadline is None:
                step = 0.2
            else:
                step = min(0.2, deadline - time.monotonic())
                if step <= 0:
                    return self._exited.is_set()
            if self._exited.wait(timeout=step):
                return True

    def close(self) -> None:
        """Tear down the socket (idempotent); does not wait for jobs."""
        # Swap-then-close under the lock: the runner thread's exit path
        # and the owner's close() may race, and StatusServer.close is
        # not safe to enter twice concurrently.
        with self._lock:
            server, self._server = self._server, None
        if server is not None:
            server.close()

    def __enter__(self) -> "CampaignService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.begin_shutdown()
        self.wait(timeout_s=60.0)
        self.close()

    # -- the job runner ------------------------------------------------------

    def _run_loop(self) -> None:
        try:
            while True:
                job: Optional[Job] = None
                with self._wake:
                    while True:
                        if self._shutdown:
                            break
                        job = self._next_queued_locked()
                        if job is not None:
                            job.state = "running"
                            job.started_unix_s = time.time()
                            self._active = job
                            break
                        if self._draining:
                            break
                        self._wake.wait(timeout=0.2)
                if job is None:
                    return
                self._execute(job)
        finally:
            self._cancel_queued("service exited")
            self._exited.set()
            self.close()

    def _next_queued_locked(self) -> Optional[Job]:
        for job_id in self._order:
            if self._jobs[job_id].state == "queued":
                return self._jobs[job_id]
        return None

    def _execute(self, job: Job) -> None:
        campaign = Campaign(
            self.directory / job.directory,
            retry=self.retry,
            ledger=obs_ledger.RunLedger(self.ledger_path),
            workers=self.workers,
            status_port=0,  # internal: workers push events to our bus
            heartbeat_interval_s=self.heartbeat_interval_s,
            heartbeat_timeout_s=self.heartbeat_timeout_s,
            job_timeout_s=self.job_timeout_s,
            max_attempts=self.max_attempts,
            flight=self.flight,
            flight_retain=self.flight_retain,
        )
        cancelled = False
        try:
            execution = campaign.start(job.specs)
            with self._lock:
                job.execution = execution
                # A cancel/shutdown that raced the launch still lands.
                if job.state == "cancelled":
                    execution.request_stop("cancel")
                    cancelled = True
                elif self._shutdown:
                    execution.request_stop("drain")
            result = execution.join()
            with self._wake:
                cancelled = cancelled or job.state == "cancelled"
                job.counts = result.counts()
                job.completed = result.completed
                job.state = "cancelled" if cancelled else "done"
        except Exception as exc:  # noqa: BLE001 - daemon must survive any job
            with self._wake:
                job.state = "failed"
                job.error = f"{type(exc).__name__}: {exc}"
        finally:
            with self._wake:
                job.execution = None
                job.finished_unix_s = time.time()
                self._active = None
                self._wake.notify_all()

    def _cancel_queued(self, reason: str) -> None:
        with self._wake:
            for job_id in self._order:
                job = self._jobs[job_id]
                if job.state == "queued":
                    job.state = "cancelled"
                    job.error = reason
                    job.finished_unix_s = time.time()
            self._wake.notify_all()

    def begin_shutdown(self) -> None:
        """The SIGTERM / ``shutdown``-verb path (runs on any thread).

        Refuses new submits, cancels queued jobs, asks the active
        pass to finish only its leased runs, and lets the runner exit.
        """
        with self._wake:
            self._draining = True
            self._shutdown = True
            active = self._active
            self._wake.notify_all()
        self._cancel_queued("cancelled by shutdown")
        if active is not None and active.execution is not None:
            active.execution.request_stop("drain")

    # -- protocol verbs (run on status-server threads) -----------------------

    def _service_status(self) -> Dict[str, Any]:
        with self._lock:
            jobs = [self._jobs[job_id].summary() for job_id in self._order]
            active = self._active.id if self._active is not None else None
        return {
            "service": {
                "directory": str(self.directory),
                "workers": self.workers,
                "jobs": jobs,
                "active": active,
                "draining": self._draining,
                "shutting_down": self._shutdown,
                "exited": self._exited.is_set(),
            }
        }

    def _req_submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        runs = request.get("runs")
        matrix = request.get("matrix")
        if (runs is None) == (matrix is None):
            raise ServiceError(
                "submit needs exactly one of 'runs' (a list) or "
                "'matrix' (an object of axes)"
            )
        if matrix is not None:
            if not isinstance(matrix, Mapping):
                raise ServiceError("matrix must be a JSON object")
            runs = expand_matrix(matrix)
        timeout = request.get("timeout_s", self.job_timeout_s)
        specs = build_specs(runs, default_timeout_s=timeout)
        with self._wake:
            if self._draining or self._shutdown:
                raise ServiceError(
                    "service is draining; not accepting new jobs"
                )
            job_id = f"job{self._next_job:04d}"
            self._next_job += 1
            job = Job(
                id=job_id,
                name=str(request.get("name") or job_id),
                directory=str(request.get("dir") or job_id),
                specs=specs,
            )
            if "/" in job.directory or job.directory in (".", ".."):
                raise ServiceError(
                    f"job dir {job.directory!r} is not filesystem-safe"
                )
            self._jobs[job_id] = job
            self._order.append(job_id)
            self._wake.notify_all()
        return {"ok": True, "job": job_id, "runs": len(specs)}

    def _req_cancel(self, request: Dict[str, Any]) -> Dict[str, Any]:
        job_id = request.get("job")
        with self._wake:
            job = self._jobs.get(str(job_id))
            if job is None:
                raise ServiceError(f"unknown job {job_id!r}")
            if job.state in ("done", "failed", "cancelled"):
                return {
                    "ok": True,
                    "job": job.id,
                    "state": job.state,
                    "note": "already finished",
                }
            was_running = job.state == "running"
            job.state = "cancelled"
            execution = job.execution
            self._wake.notify_all()
        if was_running and execution is not None:
            # Kills leased workers; their runs persist as
            # "interrupted" (attempts intact) for a later pass.
            execution.request_stop("cancel")
        return {"ok": True, "job": job.id, "state": "cancelled"}

    def _req_drain(self, request: Dict[str, Any]) -> Dict[str, Any]:
        with self._wake:
            self._draining = True
            queued = sum(
                1 for j in self._jobs.values() if j.state == "queued"
            )
            self._wake.notify_all()
        return {"ok": True, "draining": True, "queued": queued}

    def _req_shutdown(self, request: Dict[str, Any]) -> Dict[str, Any]:
        self.begin_shutdown()
        return {"ok": True, "shutting_down": True}


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def _serve(args: argparse.Namespace) -> int:
    retry = RetryPolicy(
        max_attempts=args.retry_attempts,
        backoff_base_s=args.retry_backoff_s,
    )
    service = CampaignService(
        args.dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        retry=retry,
        max_attempts=args.max_attempts,
        job_timeout_s=args.job_timeout_s,
        heartbeat_interval_s=args.heartbeat_interval_s,
        heartbeat_timeout_s=args.heartbeat_timeout_s,
        ledger=args.ledger,
        flight=args.flight,
        flight_retain=args.flight_retain,
    )
    service.start()
    service.install_signal_handlers()
    host, port = service.address
    print(
        json.dumps(
            {
                "ok": True,
                "daemon": "repro-campaignd",
                "address": f"{host}:{port}",
                "dir": str(service.directory),
                "workers": service.workers,
            },
            sort_keys=True,
        ),
        flush=True,
    )
    service.wait()
    print(json.dumps({"ok": True, "exited": True}, sort_keys=True))
    return 0


def _client(args: argparse.Namespace) -> int:
    try:
        host, port = statusd.parse_address(args.addr)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    request: Dict[str, Any] = {"req": args.verb}
    if args.verb == "submit":
        try:
            payload = json.loads(args.json)
        except json.JSONDecodeError as exc:
            print(f"bad --json payload: {exc}", file=sys.stderr)
            return 2
        if not isinstance(payload, dict):
            print("--json payload must be a JSON object", file=sys.stderr)
            return 2
        request.update(payload)
    if args.job is not None:
        request["job"] = args.job
    try:
        response = statusd.query(host, port, request, timeout_s=args.timeout)
    except (OSError, ValueError) as exc:
        print(f"cannot reach {host}:{port}: {exc}", file=sys.stderr)
        return 2
    print(json.dumps(response, sort_keys=True, indent=2))
    return 0 if response.get("ok") else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-campaignd",
        description=(
            "supervised campaign daemon: submit/status/cancel/drain/"
            "shutdown over line JSON"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the daemon")
    serve.add_argument("--dir", default="campaignd", help="service root")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="0 picks an ephemeral port (printed on stdout)")
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument("--max-attempts", type=int, default=3,
                       help="execution starts before a run is quarantined")
    serve.add_argument("--job-timeout-s", type=float, default=None,
                       help="per-attempt budget for one leased run")
    serve.add_argument("--heartbeat-interval-s", type=float, default=0.25)
    serve.add_argument("--heartbeat-timeout-s", type=float, default=None)
    serve.add_argument("--retry-attempts", type=int, default=3,
                       help="acquisition retries inside one run")
    serve.add_argument("--retry-backoff-s", type=float, default=0.05)
    serve.add_argument("--ledger", default=None,
                       help="run-ledger path (default: <dir>/LEDGER_obs.jsonl)")
    serve.add_argument("--flight", action="store_true",
                       help="flight-record every run: reports carry "
                       "per-stall evidence and a <run>.flight sidecar is "
                       "spilled (see `repro explain`)")
    serve.add_argument("--flight-retain", type=int, default=None,
                       help="keep at most N .flight sidecars per campaign "
                       "directory (oldest pruned; default: keep all)")
    serve.set_defaults(func=_serve)

    for verb, description in (
        ("submit", "enqueue a job (--json carries runs/matrix)"),
        ("status", "query the daemon"),
        ("cancel", "cancel a job (--job)"),
        ("drain", "finish accepted jobs, then exit"),
        ("shutdown", "finish leased runs only, then exit"),
    ):
        client = sub.add_parser(verb, help=description)
        client.add_argument("--addr", required=True, help="HOST:PORT")
        client.add_argument("--timeout", type=float, default=5.0)
        client.add_argument("--job", default=None)
        if verb == "submit":
            client.add_argument(
                "--json",
                required=True,
                help='e.g. \'{"matrix": {"tm": [8, 16], "seed": [0, 1]}}\'',
            )
        client.set_defaults(func=_client, verb=verb)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
