"""Row generators for every table in the paper's evaluation.

Each ``tableN_*`` function runs the experiment and returns structured
rows; ``format_*`` helpers render them the way the paper prints them.
The bench harness under ``benchmarks/`` calls these and asserts the
paper's qualitative claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..attribution.report import RegionReport, attribute_stalls
from ..attribution.spectral import SpectralProfiler
from ..core.validate import count_accuracy, validate_profile
from ..devices.models import by_name, olimex
from ..emsignal.receiver import MHZ
from ..sim.config import MachineConfig
from ..workloads.microbenchmark import Microbenchmark
from ..workloads.spec import SPEC_BENCHMARKS, SpecWorkload, spec_workload
from .runner import (
    microbenchmark_window,
    run_device,
    run_simulator,
    window_cycles,
)

# The TM/CM grid of Tables II and III.
MICRO_GRID: Tuple[Tuple[int, int], ...] = ((256, 1), (256, 5), (1024, 10), (4096, 50))

DEVICE_ORDER = ("alcatel", "samsung", "olimex")


def _micro(tm: int, cm: int, scale: float) -> Microbenchmark:
    return Microbenchmark(
        total_misses=max(8, int(tm * scale)),
        consecutive_misses=min(cm, max(1, int(tm * scale))),
        blank_iterations=max(4000, int(20_000 * min(1.0, scale * 4))),
        gap_instructions=120,
    )


# -- Table I ----------------------------------------------------------------


@dataclass(frozen=True)
class DeviceSpecRow:
    """One column of Table I."""

    device: str
    frequency_hz: float
    llc_bytes: int
    issue_width: int
    prefetcher: bool


def table1_rows() -> List[DeviceSpecRow]:
    """Device specifications (Table I + Section VI-A facts)."""
    rows = []
    for name in DEVICE_ORDER:
        cfg = by_name(name)
        rows.append(
            DeviceSpecRow(
                device=name,
                frequency_hz=cfg.clock_hz,
                llc_bytes=cfg.llc.size_bytes,
                issue_width=cfg.core.width,
                prefetcher=cfg.prefetcher_enabled,
            )
        )
    return rows


# -- Table II ----------------------------------------------------------------


@dataclass(frozen=True)
class Table2Row:
    """EMPROF miss-count accuracy on one device for one TM/CM point."""

    tm: int
    cm: int
    device: str
    expected: int
    detected: int
    accuracy: float


def table2_rows(
    grid: Sequence[Tuple[int, int]] = MICRO_GRID,
    devices: Sequence[str] = DEVICE_ORDER,
    scale: float = 1.0,
    bandwidth_hz: float = 40 * MHZ,
    seed: int = 0,
) -> List[Table2Row]:
    """Microbenchmark accuracy on the physical-device path (Table II).

    The measurement window is isolated from the signal via the marker
    loops; detected stalls inside it are compared with the engineered
    TM.  ``scale`` shrinks TM for fast test runs.
    """
    rows = []
    for tm, cm in grid:
        workload = _micro(tm, cm, scale)
        expected = workload.total_misses
        for name in devices:
            run = run_device(
                workload, by_name(name), bandwidth_hz=bandwidth_hz, seed=seed
            )
            report, _ = microbenchmark_window(run)
            rows.append(
                Table2Row(
                    tm=tm,
                    cm=cm,
                    device=name,
                    expected=expected,
                    detected=report.miss_count,
                    accuracy=count_accuracy(report.miss_count, expected),
                )
            )
    return rows


def format_table2(rows: List[Table2Row]) -> str:
    """Render like Table II: one row per TM/CM, one column per device."""
    devices = list(dict.fromkeys(r.device for r in rows))
    header = f"{'#TM':>6s} {'#CM':>4s} " + " ".join(f"{d:>9s}" for d in devices)
    lines = [header, "-" * len(header)]
    grid = list(dict.fromkeys((r.tm, r.cm) for r in rows))
    by_key = {(r.tm, r.cm, r.device): r for r in rows}
    for tm, cm in grid:
        cells = " ".join(
            f"{100 * by_key[(tm, cm, d)].accuracy:8.2f}%" for d in devices
        )
        lines.append(f"{tm:6d} {cm:4d} {cells}")
    return "\n".join(lines)


# -- Table III ----------------------------------------------------------------


@dataclass(frozen=True)
class Table3Row:
    """Accuracy vs. simulator ground truth for one benchmark."""

    benchmark: str
    true_misses: int
    detected: int
    miss_accuracy: float
    stall_accuracy: float


def table3_micro_rows(
    grid: Sequence[Tuple[int, int]] = MICRO_GRID,
    scale: float = 1.0,
    config: Optional[MachineConfig] = None,
    seed: int = 0,
) -> List[Table3Row]:
    """Microbenchmark half of Table III (simulator path).

    Accuracy is computed inside the marker window, against the
    engineered miss count, like the paper's microbenchmark validation.
    """
    rows = []
    for tm, cm in grid:
        workload = _micro(tm, cm, scale)
        run = run_simulator(workload, config=config, seed=seed)
        report, window = microbenchmark_window(run)
        v = validate_profile(
            run.report,
            run.result.ground_truth,
            window_cycles=window_cycles(run, window),
        )
        rows.append(
            Table3Row(
                benchmark=f"tm{tm}_cm{cm}",
                true_misses=workload.total_misses,
                detected=report.miss_count,
                miss_accuracy=count_accuracy(report.miss_count, workload.total_misses),
                stall_accuracy=v.stall_accuracy,
            )
        )
    return rows


def table3_spec_rows(
    benchmarks: Sequence[str] = SPEC_BENCHMARKS,
    scale: float = 1.0,
    config: Optional[MachineConfig] = None,
    seed: int = 0,
) -> List[Table3Row]:
    """SPEC half of Table III (simulator path, whole run)."""
    rows = []
    for name in benchmarks:
        run = run_simulator(spec_workload(name, scale=scale), config=config, seed=seed)
        truth = run.result.ground_truth
        v = validate_profile(run.report, truth)
        rows.append(
            Table3Row(
                benchmark=name,
                true_misses=truth.miss_count(),
                detected=v.detected_misses,
                miss_accuracy=v.miss_accuracy,
                stall_accuracy=v.stall_accuracy,
            )
        )
    return rows


def format_table3(rows: List[Table3Row]) -> str:
    """Render like Table III."""
    header = f"{'Benchmark':14s} {'Miss Acc (%)':>12s} {'Stall Acc (%)':>13s}"
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.benchmark:14s} {100 * r.miss_accuracy:12.2f} {100 * r.stall_accuracy:13.2f}"
        )
    return "\n".join(lines)


# -- Table IV ----------------------------------------------------------------


@dataclass(frozen=True)
class Table4Row:
    """Per-benchmark, per-device profiling statistics."""

    benchmark: str
    device: str
    total_misses: int
    stall_percent: float
    refresh_stalls: int


def table4_rows(
    benchmarks: Sequence[str] = SPEC_BENCHMARKS,
    grid: Sequence[Tuple[int, int]] = MICRO_GRID,
    devices: Sequence[str] = DEVICE_ORDER,
    scale: float = 1.0,
    bandwidth_hz: float = 40 * MHZ,
    seed: int = 0,
) -> List[Table4Row]:
    """Total LLC misses and miss latency (% of time) - Table IV.

    All numbers come from EMPROF on the device path, like the paper's.
    """
    rows = []
    workloads: List = [_micro(tm, cm, scale) for tm, cm in grid]
    workloads += [spec_workload(name, scale=scale) for name in benchmarks]
    for workload in workloads:
        for name in devices:
            run = run_device(
                workload, by_name(name), bandwidth_hz=bandwidth_hz, seed=seed
            )
            rows.append(
                Table4Row(
                    benchmark=workload.name,
                    device=name,
                    total_misses=run.report.miss_count,
                    stall_percent=100.0 * run.report.stall_fraction,
                    refresh_stalls=run.report.refresh_count,
                )
            )
    return rows


def format_table4(rows: List[Table4Row]) -> str:
    """Render like Table IV: counts then stall percentages."""
    devices = list(dict.fromkeys(r.device for r in rows))
    benchmarks = list(dict.fromkeys(r.benchmark for r in rows))
    by_key = {(r.benchmark, r.device): r for r in rows}
    head_counts = " ".join(f"{d:>9s}" for d in devices)
    head_pct = " ".join(f"{d:>7s}" for d in devices)
    lines = [f"{'Benchmark':16s} {head_counts}   | {head_pct}"]
    lines.append("-" * len(lines[0]))
    for b in benchmarks:
        counts = " ".join(f"{by_key[(b, d)].total_misses:9d}" for d in devices)
        pcts = " ".join(f"{by_key[(b, d)].stall_percent:7.2f}" for d in devices)
        lines.append(f"{b:16s} {counts}   | {pcts}")
    # Averages, as in the paper's last row.
    avg_counts = " ".join(
        f"{np.mean([by_key[(b, d)].total_misses for b in benchmarks]):9.1f}"
        for d in devices
    )
    avg_pct = " ".join(
        f"{np.mean([by_key[(b, d)].stall_percent for b in benchmarks]):7.2f}"
        for d in devices
    )
    lines.append(f"{'Average':16s} {avg_counts}   | {avg_pct}")
    return "\n".join(lines)


# -- Table V ----------------------------------------------------------------


def table5_rows(
    device: Optional[MachineConfig] = None,
    scale: float = 1.0,
    bandwidth_hz: float = 40 * MHZ,
    seed: int = 0,
) -> List[RegionReport]:
    """Per-function attribution for parser (Table V).

    Training captures come from running each parser phase alone on the
    same device (the Spectral Profiling training step); the test
    capture is the full parser run.
    """
    cfg = device if device is not None else olimex()
    parser = spec_workload("parser", scale=scale)

    profiler = SpectralProfiler(window_samples=128, overlap=0.5, smoothing_frames=7)
    for phase in parser.phases:
        solo = SpecWorkload(
            name=f"train_{phase.region}", phases=[phase], seed=parser.seed
        )
        train_run = run_device(solo, cfg, bandwidth_hz=bandwidth_hz, seed=seed)
        profiler.train(
            phase.region, train_run.signal, train_run.capture.sample_rate_hz
        )

    run = run_device(parser, cfg, bandwidth_hz=bandwidth_hz, seed=seed)
    timeline = profiler.attribute(run.signal, run.capture.sample_rate_hz)
    return attribute_stalls(run.report, timeline)


# -- The perf anecdote (Section V) -------------------------------------------


@dataclass(frozen=True)
class PerfAnecdote:
    """perf-reported statistics for the 1024-miss microbenchmark."""

    true_misses: int
    mean_reported: float
    std_reported: float
    runs: int


def perf_anecdote(
    true_misses: int = 1024,
    duration_s: float = 2.0e-3,
    runs: int = 200,
    seed: int = 0,
) -> PerfAnecdote:
    """Reproduce "an average of 32,768 and a standard deviation of 14,543"."""
    from ..baselines.perf_counters import PerfCounterConfig, PerfCounterModel

    model = PerfCounterModel(PerfCounterConfig(seed=seed))
    reports = model.report_runs(true_misses, duration_s, runs)
    return PerfAnecdote(
        true_misses=true_misses,
        mean_reported=float(reports.mean()),
        std_reported=float(reports.std()),
        runs=runs,
    )
