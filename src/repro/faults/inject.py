"""Deterministic, seeded injection of acquisition impairments.

Every fault is a frozen dataclass; an injector applies a sequence of
them to a magnitude signal (or a chunk stream) with a
``numpy.random.Generator`` seeded at construction, so a given
``(faults, seed)`` pair always produces bit-identical output.  Every
injected event is recorded in an :class:`ImpairmentLog` in
*output-stream* coordinates, giving chaos tests ground truth to check
the pipeline's quality gating against.

Value-level faults (gain steps, DC drift, bursts, clipping) preserve
sample count; :class:`DropoutFault` removes samples, which is what a
digitizer overrun does - downstream sees a shorter stream with
discontinuities, not padded zeros.  The injector applies dropouts
last and remaps earlier events through the cut.
"""

from __future__ import annotations

import bisect
import dataclasses
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import TransientAcquisitionError

# ---------------------------------------------------------------------------
# impairment ground truth
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ImpairmentEvent:
    """One injected impairment, in output-stream sample coordinates.

    Attributes:
        kind: ``dropout`` / ``clip`` / ``gain_step`` / ``burst`` /
            ``dc_drift`` / ``chunk_dup`` / ``chunk_reorder``.
        begin_sample / end_sample: half-open impaired interval.  For a
            dropout both bounds equal the cut position (the samples no
            longer exist); the surrounding guard is the monitor's job.
        severe: True when the impairment can fabricate or destroy
            stalls (dropouts, clipping, gain steps, bursts); benign
            events (slow DC drift) are logged but are not expected to
            be quality-gated.
        detail: free-form description (factor, dropped count, ...).
    """

    kind: str
    begin_sample: int
    end_sample: int
    severe: bool = True
    detail: str = ""


class ImpairmentLog:
    """Ground-truth record of every injected impairment."""

    def __init__(self) -> None:
        self.events: List[ImpairmentEvent] = []

    def add(
        self,
        kind: str,
        begin_sample: int,
        end_sample: int,
        severe: bool = True,
        detail: str = "",
    ) -> None:
        """Record one event."""
        self.events.append(
            ImpairmentEvent(kind, int(begin_sample), int(end_sample), severe, detail)
        )

    def count(self, kind: Optional[str] = None) -> int:
        """Number of events, optionally of one kind."""
        if kind is None:
            return len(self.events)
        return sum(1 for e in self.events if e.kind == kind)

    def severe_intervals(self) -> List[Tuple[int, int]]:
        """Merged, sorted [begin, end) intervals of severe events."""
        spans = sorted(
            (e.begin_sample, max(e.end_sample, e.begin_sample + 1))
            for e in self.events
            if e.severe
        )
        merged: List[Tuple[int, int]] = []
        for begin, end in spans:
            if merged and begin <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((begin, end))
        return merged

    def overlaps(self, begin: float, end: float, margin: float = 0.0) -> bool:
        """Whether [begin, end] touches any severe event (with margin)."""
        for b, e in self.severe_intervals():
            if begin <= e + margin and end >= b - margin:
                return True
        return False

    def summary(self) -> str:
        """One line per fault kind with counts."""
        kinds: List[str] = []
        for event in self.events:
            if event.kind not in kinds:
                kinds.append(event.kind)
        parts = [f"{kind}: {self.count(kind)}" for kind in kinds]
        return ", ".join(parts) if parts else "no impairments"


# ---------------------------------------------------------------------------
# fault kinds
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GainStepFault:
    """Abrupt AGC gain changes: the signal scale steps at random instants."""

    steps: int = 2
    min_factor: float = 0.5
    max_factor: float = 2.0

    def apply(self, x: np.ndarray, rng: np.random.Generator, log: ImpairmentLog) -> np.ndarray:
        n = len(x)
        if n < 4 or self.steps < 1:
            return x
        lo, hi = int(0.05 * n) + 1, int(0.95 * n)
        if hi <= lo:
            return x
        positions = np.sort(
            rng.choice(np.arange(lo, hi), size=min(self.steps, hi - lo), replace=False)
        )
        out = x.copy()
        for pos in positions:
            factor = float(rng.uniform(self.min_factor, self.max_factor))
            out[pos:] *= factor
            log.add("gain_step", pos, pos + 1, detail=f"factor={factor:.3f}")
        return out


@dataclass(frozen=True)
class DcDriftFault:
    """Slow additive DC offset drift (supply/temperature wander)."""

    max_offset_ratio: float = 0.15  # of the median magnitude
    periods: float = 1.5  # sinusoid periods across the capture

    def apply(self, x: np.ndarray, rng: np.random.Generator, log: ImpairmentLog) -> np.ndarray:
        n = len(x)
        if n == 0:
            return x
        amplitude = self.max_offset_ratio * float(np.median(x))
        phase = float(rng.uniform(0, 2 * np.pi))
        drift = amplitude * np.sin(
            np.linspace(0, 2 * np.pi * self.periods, n) + phase
        )
        log.add(
            "dc_drift", 0, n, severe=False,
            detail=f"amplitude={amplitude:.3g}",
        )
        return np.maximum(x + drift, 0.0)


@dataclass(frozen=True)
class BurstFault:
    """Additive interference bursts (a nearby transmitter keying up)."""

    bursts: int = 2
    amplitude_factor: float = 3.0  # of the running maximum
    length_samples: int = 64

    def apply(self, x: np.ndarray, rng: np.random.Generator, log: ImpairmentLog) -> np.ndarray:
        n = len(x)
        if n == 0 or self.bursts < 1:
            return x
        out = x.copy()
        peak = float(np.max(x))
        length = max(1, min(self.length_samples, n))
        for _ in range(self.bursts):
            start = int(rng.integers(0, max(1, n - length)))
            end = min(n, start + length)
            out[start:end] += self.amplitude_factor * peak * (
                0.5 + 0.5 * rng.random(end - start)
            )
            log.add("burst", start, end, detail=f"x{self.amplitude_factor:.1f} peak")
        return out


@dataclass(frozen=True)
class ClippingFault:
    """ADC saturation: everything above the full-scale level is clipped.

    ``level`` pins the full scale explicitly; otherwise it is chosen as
    the ``1 - rate`` quantile so that roughly ``rate`` of the samples
    saturate.
    """

    rate: float = 0.01
    level: Optional[float] = None

    def clip_level(self, x: np.ndarray) -> float:
        """The saturation level this fault uses on ``x``."""
        if self.level is not None:
            return float(self.level)
        return float(np.quantile(x, 1.0 - self.rate))

    def apply(self, x: np.ndarray, rng: np.random.Generator, log: ImpairmentLog) -> np.ndarray:
        if len(x) == 0:
            return x
        level = self.clip_level(x)
        clipped = x > level
        if not clipped.any():
            return x
        # Full precision: the applied level is ground truth a monitor
        # can be configured with (see applied_clip_level).
        for start, end in _true_runs(clipped):
            log.add("clip", start, end, detail=f"level={level:.17g}")
        return np.minimum(x, level)


@dataclass(frozen=True)
class DropoutFault:
    """Digitizer overruns: contiguous runs of samples are lost entirely."""

    rate: float = 0.01  # fraction of samples dropped
    mean_gap_samples: int = 32

    def plan(self, n: int, rng: np.random.Generator) -> List[Tuple[int, int]]:
        """Sorted, non-overlapping [start, end) runs to drop, input coords."""
        if n < 8 or self.rate <= 0:
            return []
        target = int(round(self.rate * n))
        if target < 1:
            return []
        mean_gap = max(1, self.mean_gap_samples)
        runs: List[Tuple[int, int]] = []
        dropped = 0
        # Deterministic draw loop; bounded by the sample budget.
        attempts = 0
        while dropped < target and attempts < 4 * max(1, target // mean_gap) + 8:
            attempts += 1
            length = int(rng.integers(max(1, mean_gap // 2), 2 * mean_gap))
            length = min(length, target - dropped) or 1
            start = int(rng.integers(1, max(2, n - length - 1)))
            candidate = (start, start + length)
            if any(s < candidate[1] and candidate[0] < e for s, e in runs):
                continue
            runs.append(candidate)
            dropped += length
        runs.sort()
        return runs


# The union accepted by FaultInjector; DropoutFault is special-cased.
ValueFault = Union[GainStepFault, DcDriftFault, BurstFault, ClippingFault]
AnyFault = Union[ValueFault, DropoutFault]


def applied_clip_level(log: ImpairmentLog) -> Optional[float]:
    """The saturation level a :class:`ClippingFault` actually used.

    The injector computes the level from the signal *after* earlier
    value faults (gain steps), so the clean-signal quantile is not it;
    this reads the exact level back from the ground-truth log, for
    configuring a :class:`repro.faults.quality.QualityConfig`.
    """
    for event in log.events:
        if event.kind == "clip" and event.detail.startswith("level="):
            return float(event.detail[len("level="):])
    return None


def _true_runs(mask: np.ndarray) -> List[Tuple[int, int]]:
    """Half-open [start, end) runs where ``mask`` is True."""
    if len(mask) == 0:
        return []
    padded = np.concatenate(([False], mask, [False]))
    edges = np.flatnonzero(np.diff(padded.astype(np.int8)))
    return list(zip(edges[0::2].tolist(), edges[1::2].tolist()))


# ---------------------------------------------------------------------------
# the injector
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ImpairedSignal:
    """An impaired signal plus everything needed to reason about it.

    Attributes:
        signal: the impaired magnitude stream (dropout samples removed).
        log: ground truth of every injected event (output coords).
        gaps: ``(output_position, dropped_count)`` per dropout, i.e.
            what an honest digitizer driver would report as overruns.
        drop_starts / drop_cumulative: the dropout runs' input-coord
            start positions and cumulative dropped-sample counts, for
            mapping clean-signal positions into impaired coordinates.
    """

    signal: np.ndarray
    log: ImpairmentLog
    gaps: List[Tuple[int, int]] = field(default_factory=list)
    drop_starts: List[int] = field(default_factory=list)
    drop_cumulative: List[int] = field(default_factory=list)

    def map_position(self, clean_position: float) -> float:
        """Map a clean-signal sample position into impaired coordinates.

        Positions inside a dropped run collapse to the cut point.
        """
        index = bisect.bisect_right(self.drop_starts, clean_position) - 1
        if index < 0:
            return float(clean_position)
        run_len = self.drop_cumulative[index] - (
            self.drop_cumulative[index - 1] if index > 0 else 0
        )
        run_start = self.drop_starts[index]
        if clean_position < run_start + run_len:
            return float(run_start - (self.drop_cumulative[index] - run_len))
        return float(clean_position) - self.drop_cumulative[index]


class FaultInjector:
    """Applies a composable, seeded fault mix to signals and streams."""

    def __init__(self, faults: Sequence[AnyFault], seed: int = 0):
        self.faults = tuple(faults)
        self.seed = int(seed)

    def apply(self, signal: np.ndarray) -> ImpairedSignal:
        """Impair a whole magnitude signal; deterministic in the seed."""
        rng = np.random.default_rng(self.seed)
        x = np.asarray(signal, dtype=np.float64).copy()
        log = ImpairmentLog()
        dropout: Optional[DropoutFault] = None
        for fault in self.faults:
            if isinstance(fault, DropoutFault):
                dropout = fault  # applied last; see module docstring
                continue
            x = fault.apply(x, rng, log)
        if dropout is None:
            return ImpairedSignal(signal=x, log=log)
        runs = dropout.plan(len(x), rng)
        return _cut_dropouts(x, runs, log)


def _cut_dropouts(
    x: np.ndarray, runs: List[Tuple[int, int]], log: ImpairmentLog
) -> ImpairedSignal:
    """Remove dropout runs and remap logged events to output coords."""
    if not runs:
        return ImpairedSignal(signal=x, log=log)
    keep = np.ones(len(x), dtype=bool)
    starts: List[int] = []
    cumulative: List[int] = []
    dropped_before = 0
    gaps: List[Tuple[int, int]] = []
    for start, end in runs:
        keep[start:end] = False
        starts.append(start)
        dropped_before += end - start
        cumulative.append(dropped_before)
        gaps.append((start - (dropped_before - (end - start)), end - start))

    def remap(pos: int) -> int:
        index = bisect.bisect_right(starts, pos) - 1
        if index < 0:
            return pos
        run_len = cumulative[index] - (cumulative[index - 1] if index > 0 else 0)
        run_start = starts[index]
        drops_before_run = cumulative[index] - run_len
        if pos < run_start + run_len:
            # Position inside a dropped run collapses to the cut point.
            return run_start - drops_before_run
        return pos - cumulative[index]

    remapped = ImpairmentLog()
    for event in log.events:
        remapped.add(
            event.kind,
            remap(event.begin_sample),
            max(remap(event.begin_sample), remap(event.end_sample)),
            severe=event.severe,
            detail=event.detail,
        )
    for out_pos, dropped in gaps:
        remapped.add("dropout", out_pos, out_pos, detail=f"dropped={dropped}")
    return ImpairedSignal(
        signal=x[keep],
        log=remapped,
        gaps=gaps,
        drop_starts=starts,
        drop_cumulative=cumulative,
    )


def iter_chunks(
    impaired: ImpairedSignal, chunk_samples: int
) -> Iterator[Tuple[np.ndarray, int]]:
    """Yield ``(chunk, gap_before)`` pairs, splitting at every dropout.

    This is the shape an honest driver hands the hardened pipeline:
    contiguous runs of samples plus the overrun count preceding each.
    """
    if chunk_samples < 1:
        raise ValueError("chunk size must be positive")
    x = impaired.signal
    boundaries = sorted(set(pos for pos, _ in impaired.gaps))
    gap_at = {pos: dropped for pos, dropped in impaired.gaps}
    segment_edges = [0] + [b for b in boundaries if 0 < b < len(x)] + [len(x)]
    for seg_begin, seg_end in zip(segment_edges, segment_edges[1:]):
        gap_before = gap_at.get(seg_begin, 0)
        for start in range(seg_begin, seg_end, chunk_samples):
            end = min(start + chunk_samples, seg_end)
            yield x[start:end], (gap_before if start == seg_begin else 0)


# ---------------------------------------------------------------------------
# chunk-stream faults and the self-healing resequencer
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NumberedChunk:
    """One transport frame: a sequence number plus its samples."""

    seq: int
    data: np.ndarray


class ChunkResequencer:
    """Repairs a numbered chunk stream: drops duplicates, reorders, gaps.

    Digitizer transports (USB, network) can duplicate or reorder
    frames; the sequence number is the ground truth.  ``push`` returns
    the ``(chunk, gap_before)`` pairs that are now in order; chunks
    arriving more than ``max_reorder`` frames early are held until the
    missing frames arrive or are declared lost (their samples counted
    into ``gap_before`` using ``lost_samples_per_frame``).
    """

    def __init__(self, max_reorder: int = 4, lost_samples_per_frame: int = 0):
        if max_reorder < 1:
            raise ValueError("max_reorder must be at least 1")
        self.max_reorder = max_reorder
        self.lost_samples_per_frame = lost_samples_per_frame
        self._next_seq = 0
        self._pending: dict = {}
        self.duplicates_dropped = 0
        self.frames_declared_lost = 0

    def push(self, chunk: NumberedChunk) -> List[Tuple[np.ndarray, int]]:
        """Feed one frame; return frames now deliverable in order."""
        if chunk.seq < self._next_seq or chunk.seq in self._pending:
            self.duplicates_dropped += 1
            return []
        self._pending[chunk.seq] = chunk.data
        out: List[Tuple[np.ndarray, int]] = []
        gap_samples = 0
        while self._pending:
            if self._next_seq in self._pending:
                out.append((self._pending.pop(self._next_seq), gap_samples))
                gap_samples = 0
                self._next_seq += 1
            elif max(self._pending) - self._next_seq >= self.max_reorder:
                # The missing frame is declared lost.
                self.frames_declared_lost += 1
                gap_samples += max(1, self.lost_samples_per_frame)
                self._next_seq += 1
            else:
                break
        return out

    def flush(self) -> List[Tuple[np.ndarray, int]]:
        """Deliver everything still pending, declaring holes lost."""
        out: List[Tuple[np.ndarray, int]] = []
        gap_samples = 0
        while self._pending:
            if self._next_seq in self._pending:
                out.append((self._pending.pop(self._next_seq), gap_samples))
                gap_samples = 0
            else:
                self.frames_declared_lost += 1
                gap_samples += max(1, self.lost_samples_per_frame)
            self._next_seq += 1
        return out


def corrupt_chunk_stream(
    chunks: Iterable[np.ndarray],
    seed: int = 0,
    duplicate_probability: float = 0.0,
    swap_probability: float = 0.0,
    log: Optional[ImpairmentLog] = None,
) -> Iterator[NumberedChunk]:
    """Number a chunk stream and corrupt its transport order.

    Duplicates repeat a frame immediately; swaps exchange a frame with
    its successor.  Deterministic in ``seed``.
    """
    rng = np.random.default_rng(seed)
    held: Optional[NumberedChunk] = None
    position = 0
    for seq, data in enumerate(chunks):
        frame = NumberedChunk(seq, np.asarray(data, dtype=np.float64))
        if held is not None:
            yield frame
            yield held
            if log is not None:
                log.add("chunk_reorder", position, position + len(held.data))
            held = None
        elif swap_probability > 0 and rng.random() < swap_probability:
            held = frame
        else:
            yield frame
            if duplicate_probability > 0 and rng.random() < duplicate_probability:
                yield frame
                if log is not None:
                    log.add("chunk_dup", position, position + len(frame.data))
        position += len(frame.data)
    if held is not None:
        yield held


# ---------------------------------------------------------------------------
# source wrappers
# ---------------------------------------------------------------------------


class FaultySource:
    """A :class:`~repro.acquire.SignalSource` whose captures are impaired.

    Wraps any source; every ``capture()`` runs the injected fault mix
    over the underlying magnitude.  The last ground-truth log is kept
    on :attr:`last_log` (and the full :class:`ImpairedSignal` on
    :attr:`last_impaired`) for validation flows.
    """

    def __init__(self, source, injector: FaultInjector):
        self.source = source
        self.injector = injector
        self.last_log: Optional[ImpairmentLog] = None
        self.last_impaired: Optional[ImpairedSignal] = None

    def capture(self):
        clean = self.source.capture()
        impaired = self.injector.apply(clean.magnitude)
        self.last_impaired = impaired
        self.last_log = impaired.log
        # Field-addressed rebuild of the (frozen) Capture, so this
        # wrapper needs no import of the signal chain.
        return dataclasses.replace(clean, magnitude=impaired.signal)


class FlakySource:
    """A source whose first ``failures`` captures raise transiently.

    Models digitizer overruns/timeouts for exercising retry policies;
    deterministic, no randomness.
    """

    def __init__(self, source, failures: int = 1, exc: Optional[Exception] = None):
        self.source = source
        self.failures = int(failures)
        self.exc = exc
        self.attempts = 0

    def capture(self):
        self.attempts += 1
        if self.attempts <= self.failures:
            if self.exc is not None:
                raise self.exc
            raise TransientAcquisitionError(
                f"injected transient failure {self.attempts}/{self.failures}"
            )
        return self.source.capture()


@dataclass(frozen=True)
class CrashingSource:
    """A poison source: kills its own process mid-capture.

    ``os._exit`` (not ``sys.exit``) so no ``finally`` blocks, atexit
    hooks, or buffered writes run - the closest a test can get to a
    segfault or an OOM kill inside a campaign worker.  The supervisor
    must observe only the vanished process, requeue the run, and
    quarantine it once the spec has burned ``max_attempts`` workers.
    Picklable (plain scalars only) so it survives any start method.

    Attributes:
        exit_code: the status the dying process reports.
        delay_s: how long the capture pretends to work first, so the
            ``started`` control message and a heartbeat or two get out
            before the lights go off.
    """

    exit_code: int = 13
    delay_s: float = 0.05

    def capture(self):
        import os
        import time as _time

        _time.sleep(self.delay_s)
        os._exit(self.exit_code)


@dataclass(frozen=True)
class StallingSource:
    """A hung source: the process stays alive but stops making progress.

    Models a wedged SDR driver ioctl - the worker's acquisition call
    never returns, but the process is healthy as far as the OS is
    concerned (it even keeps heartbeating, since the worker's beat
    thread is independent of the capture).  Only the per-job lease
    deadline (``RunSpec.timeout_s`` / ``Campaign.job_timeout_s``) can
    catch it; heartbeat silence is the *SIGSTOP* failure mode, which
    the chaos tests drive directly.  Picklable.

    Attributes:
        hang_s: how long the capture sleeps; pick it far beyond the
            campaign's heartbeat/job timeout so the watchdog always
            fires first.
    """

    hang_s: float = 3600.0

    def capture(self):
        import time as _time

        _time.sleep(self.hang_s)
        raise TransientAcquisitionError("stalling source woke up")
