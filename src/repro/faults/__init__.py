"""Acquisition fault injection and signal-quality monitoring.

Real captures (near-field probe -> ThinkRF WSA5000 -> PX14400,
Sections V-B/VI of the paper) are not pristine: digitizers drop
samples, ADCs clip, AGC steps the gain mid-capture, and nearby
transmitters burst into the measurement band.  This package provides
both halves of the robustness story:

* :mod:`repro.faults.inject` - a deterministic, seeded fault-injection
  layer that applies composable impairments to a signal or chunk
  stream and records every injected event in an
  :class:`~repro.faults.inject.ImpairmentLog`, so tests know ground
  truth;
* :mod:`repro.faults.quality` - the runtime monitors the hardened
  streaming pipeline uses to *detect* impairments in an unknown
  capture and quality-gate the stalls it reports
  (``DetectedStall.low_confidence``).

See ``docs/robustness.md`` for the fault model and gating semantics.
"""

from .inject import (
    BurstFault,
    ChunkResequencer,
    ClippingFault,
    CrashingSource,
    DcDriftFault,
    DropoutFault,
    FaultInjector,
    FaultySource,
    FlakySource,
    GainStepFault,
    StallingSource,
    ImpairedSignal,
    ImpairmentEvent,
    ImpairmentLog,
    NumberedChunk,
    applied_clip_level,
    iter_chunks,
)
from .quality import QualityConfig, QualityMonitor

__all__ = [
    "BurstFault",
    "applied_clip_level",
    "ChunkResequencer",
    "ClippingFault",
    "CrashingSource",
    "DcDriftFault",
    "DropoutFault",
    "FaultInjector",
    "FaultySource",
    "FlakySource",
    "GainStepFault",
    "ImpairedSignal",
    "ImpairmentEvent",
    "ImpairmentLog",
    "NumberedChunk",
    "StallingSource",
    "QualityConfig",
    "QualityMonitor",
    "iter_chunks",
]
