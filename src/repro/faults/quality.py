"""Runtime signal-quality monitors for the hardened streaming pipeline.

The injector (:mod:`repro.faults.inject`) *creates* impairments with
ground truth attached; this module *detects* them in an unknown
capture, which is what a real measurement needs.  A
:class:`QualityMonitor` watches the raw magnitude stream as
:class:`repro.core.streaming.StreamingEmprof` consumes it and
maintains a set of impaired sample intervals from four detectors:

* **gaps** - driver-reported overruns and non-finite sample runs,
  guarded by a few samples on each side (the dip state machine cannot
  bridge unknown samples);
* **saturation** - samples at/above an explicit ``clip_level``, plus a
  plateau heuristic (long runs of bit-identical samples at the running
  maximum are clipped ADC codes, not physics);
* **interference bursts** - samples far above the running median;
* **AGC gain steps** - abrupt sustained level changes between
  consecutive blocks; the moving min/max normalizer needs a full
  window to adapt, so the guard interval covers that smear.

Detected stalls overlapping any impaired interval are reported with
``low_confidence=True`` rather than suppressed: the paper's accounting
(each stall is one MISS) stays intact, and the caller decides whether
to trust them.  See ``docs/robustness.md``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class QualityConfig:
    """Quality-monitor parameters.

    Attributes:
        clip_level: the digitizer's known full-scale magnitude; when
            set, every sample at/above it is marked impaired.  None
            leaves only the plateau heuristic watching for saturation.
        plateau_run_samples: minimum run of bit-identical samples, at
            ``plateau_level_fraction`` of the running maximum, for the
            saturation heuristic to fire.  0 disables it.
        plateau_level_fraction: how close to the running maximum a
            plateau must sit to count as saturation.
        burst_factor: samples above ``burst_factor`` times the running
            median are interference; 0 disables the detector.
        burst_min_samples: minimum consecutive outliers for a burst
            (a single spiky sample is noise, not interference).
        gain_step_tolerance: relative level change between consecutive
            level blocks that counts as an AGC step; 0 disables.
        level_block_samples: block size for the running-level tracker.
        gap_guard_samples: impaired guard on each side of a gap.
    """

    clip_level: Optional[float] = None
    plateau_run_samples: int = 16
    plateau_level_fraction: float = 0.98
    burst_factor: float = 6.0
    burst_min_samples: int = 2
    gain_step_tolerance: float = 0.3
    level_block_samples: int = 256
    gap_guard_samples: int = 8

    def __post_init__(self) -> None:
        if self.clip_level is not None and self.clip_level <= 0:
            raise ValueError("clip_level must be positive")
        if self.plateau_run_samples < 0:
            raise ValueError("plateau_run_samples cannot be negative")
        if not 0.0 < self.plateau_level_fraction <= 1.0:
            raise ValueError("plateau_level_fraction must be in (0, 1]")
        if self.burst_factor < 0:
            raise ValueError("burst_factor cannot be negative")
        if self.level_block_samples < 8:
            raise ValueError("level_block_samples must be at least 8")
        if self.gap_guard_samples < 0:
            raise ValueError("gap_guard_samples cannot be negative")


def _identical_runs(chunk: np.ndarray, min_run: int) -> List[Tuple[int, int]]:
    """[start, end) runs of >= min_run consecutive identical values."""
    n = len(chunk)
    if n < min_run:
        return []
    # Boundaries where the value changes; bit-identical comparison is
    # the point (clipped ADC codes repeat exactly, noise never does).
    changed = chunk[1:] != chunk[:-1]  # emlint: disable=float-equality
    change_at = np.flatnonzero(changed)
    starts = np.concatenate(([0], change_at + 1))
    ends = np.concatenate((change_at + 1, [n]))
    keep = (ends - starts) >= min_run
    return list(zip(starts[keep].tolist(), ends[keep].tolist()))


class QualityMonitor:
    """Tracks impaired sample intervals over a magnitude stream.

    Positions are stream coordinates: the index a sample has in the
    concatenation of every chunk fed to the pipeline (dropped samples
    have no coordinate - a gap is a point between two positions).
    """

    def __init__(
        self,
        config: Optional[QualityConfig] = None,
        gain_guard_samples: int = 256,
    ):
        self.config = config if config is not None else QualityConfig()
        #: Impaired guard after a detected gain step; the caller passes
        #: the normalizer window so the guard covers the min/max smear.
        self.gain_guard_samples = max(1, int(gain_guard_samples))
        self._intervals: List[Tuple[float, float]] = []
        self._merged: Optional[List[Tuple[float, float]]] = None
        # Running stream statistics.
        self._running_max = 0.0
        self._block: List[float] = []
        self._block_start = 0
        self._prev_block_median: Optional[float] = None
        self._median_ref: Optional[float] = None
        # Accounting.
        self.gap_count = 0
        self.dropped_samples = 0
        self.clipped_samples = 0
        self.burst_samples = 0
        self.gain_steps = 0

    # -- marking -------------------------------------------------------------

    def _mark(self, begin: float, end: float) -> None:
        self._intervals.append((max(0.0, begin), max(0.0, end)))
        self._merged = None

    def mark_gap(self, position: int, dropped: int) -> None:
        """Record a stream discontinuity at ``position``."""
        guard = self.config.gap_guard_samples
        self.gap_count += 1
        self.dropped_samples += max(0, int(dropped))
        self._mark(position - guard, position + guard)

    # -- observation ---------------------------------------------------------

    def observe(self, chunk: np.ndarray, start_position: int) -> None:
        """Watch one raw chunk as the pipeline consumes it."""
        cfg = self.config
        n = len(chunk)
        if n == 0:
            return
        chunk_max = float(np.max(chunk))
        if cfg.clip_level is not None:
            clipped = chunk >= cfg.clip_level
            if clipped.any():
                self._mark_mask(clipped, start_position, "clip")
        if cfg.plateau_run_samples > 0:
            floor = cfg.plateau_level_fraction * max(self._running_max, chunk_max)
            for run_begin, run_end in _identical_runs(
                np.asarray(chunk), cfg.plateau_run_samples
            ):
                if chunk[run_begin] >= floor:
                    self.clipped_samples += run_end - run_begin
                    self._mark(
                        start_position + run_begin, start_position + run_end
                    )
        if cfg.burst_factor > 0 and self._median_ref is not None:
            level = cfg.burst_factor * self._median_ref
            if level > 0:
                outliers = chunk > level
                if outliers.any():
                    self._mark_burst(outliers, start_position)
        self._running_max = max(self._running_max, chunk_max)
        self._track_level(chunk, start_position)

    def _mark_mask(self, mask: np.ndarray, offset: int, what: str) -> None:
        padded = np.concatenate(([False], mask, [False]))
        edges = np.flatnonzero(np.diff(padded.astype(np.int8)))
        for begin, end in zip(edges[0::2].tolist(), edges[1::2].tolist()):
            if what == "clip":
                self.clipped_samples += end - begin
            self._mark(offset + begin, offset + end)

    def _mark_burst(self, outliers: np.ndarray, offset: int) -> None:
        padded = np.concatenate(([False], outliers, [False]))
        edges = np.flatnonzero(np.diff(padded.astype(np.int8)))
        for begin, end in zip(edges[0::2].tolist(), edges[1::2].tolist()):
            if end - begin >= self.config.burst_min_samples:
                self.burst_samples += end - begin
                self._mark(offset + begin, offset + end)

    def _track_level(self, chunk: np.ndarray, start_position: int) -> None:
        cfg = self.config
        if cfg.gain_step_tolerance <= 0 and cfg.burst_factor <= 0:
            return
        position = start_position
        remaining = np.asarray(chunk, dtype=np.float64)
        while len(remaining):
            if not self._block:
                self._block_start = position
            take = cfg.level_block_samples - len(self._block)
            self._block.extend(remaining[:take].tolist())
            position += min(take, len(remaining))
            remaining = remaining[take:]
            if len(self._block) < cfg.level_block_samples:
                return
            median = float(np.median(self._block))
            if self._median_ref is None:
                self._median_ref = median
            else:
                self._median_ref = 0.7 * self._median_ref + 0.3 * median
            if (
                cfg.gain_step_tolerance > 0
                and self._prev_block_median is not None
                and self._prev_block_median > 0
                and median > 0
            ):
                ratio = median / self._prev_block_median
                if abs(math.log(ratio)) > math.log1p(cfg.gain_step_tolerance):
                    self.gain_steps += 1
                    self._mark(
                        self._block_start - self.gain_guard_samples,
                        self._block_start + self.gain_guard_samples,
                    )
                    # The step resets the level reference: everything
                    # after it is the new normal, not an outlier.
                    self._median_ref = median
            self._prev_block_median = median
            self._block = []

    # -- queries -------------------------------------------------------------

    def intervals(self) -> List[Tuple[float, float]]:
        """Merged, sorted impaired [begin, end) intervals."""
        if self._merged is None:
            merged: List[Tuple[float, float]] = []
            for begin, end in sorted(self._intervals):
                if merged and begin <= merged[-1][1]:
                    merged[-1] = (merged[-1][0], max(merged[-1][1], end))
                else:
                    merged.append((begin, end))
            self._merged = merged
        return list(self._merged)

    def is_impaired(self, begin: float, end: float) -> bool:
        """Whether [begin, end] overlaps any impaired interval."""
        for b, e in self.intervals():
            if b > end:
                break
            if begin <= e and end >= b:
                return True
        return False

    def flag(self, stall):
        """Copy of ``stall`` flagged low-confidence if it overlaps."""
        if self.is_impaired(stall.begin_sample, stall.end_sample):
            return stall.flagged(True)
        return stall

    def summary(self):
        """Snapshot of the accounting (a :class:`QualitySummary`)."""
        # Imported lazily: repro.core.streaming imports this module, so
        # a top-level import of repro.core.events would be circular
        # when `repro.faults` is the first package imported.
        from ..core.events import QualitySummary

        merged = self.intervals()
        return QualitySummary(
            gap_count=self.gap_count,
            dropped_samples=self.dropped_samples,
            clipped_samples=self.clipped_samples,
            burst_samples=self.burst_samples,
            gain_steps=self.gain_steps,
            impaired_sample_spans=len(merged),
            impaired_samples=int(sum(e - b for b, e in merged)),
        )
