"""Dependency-free ASCII rendering of signals and profiles.

The library deliberately avoids a plotting dependency; these helpers
give the CLI and examples quick visual summaries - a signal strip
chart (the Fig. 1/7 shapes), latency histograms (Fig. 11), and
miss-rate timelines (Fig. 13) - rendered with block characters in a
terminal.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .core.events import ProfileReport

_BLOCKS = " ▁▂▃▄▅▆▇█"
_ASCII_BLOCKS = " .:-=+*#%@"


def _levels(values: np.ndarray, width: int) -> np.ndarray:
    """Fold ``values`` into ``width`` columns of mean level."""
    if len(values) == 0:
        return np.zeros(width)
    chunks = np.array_split(np.asarray(values, dtype=np.float64), width)
    return np.array([c.mean() if len(c) else 0.0 for c in chunks])


def sparkline(
    values: Sequence[float], width: int = 72, ascii_only: bool = False
) -> str:
    """One-line strip chart of ``values``.

    Levels are normalized to the series' own min/max; an empty or
    constant series renders flat.
    """
    blocks = _ASCII_BLOCKS if ascii_only else _BLOCKS
    folded = _levels(np.asarray(values, dtype=np.float64), width)
    lo = folded.min() if len(folded) else 0.0
    hi = folded.max() if len(folded) else 1.0
    span = hi - lo
    if span <= 0:
        return blocks[0] * width
    idx = ((folded - lo) / span * (len(blocks) - 1)).astype(int)
    return "".join(blocks[i] for i in idx)


def signal_strip(
    signal: np.ndarray,
    width: int = 72,
    height: int = 8,
    ascii_only: bool = False,
) -> str:
    """Multi-row strip chart of a magnitude signal.

    Each column is the mean level of its time slice; a column is
    filled from the bottom up to its level - dips (stalls) show up as
    valleys, exactly the Fig. 1 visual.
    """
    if height < 2:
        raise ValueError("height must be at least 2")
    fill = "#" if ascii_only else "█"
    folded = _levels(np.asarray(signal, dtype=np.float64), width)
    hi = folded.max() if len(folded) else 1.0
    if hi <= 0:
        hi = 1.0
    rows: List[str] = []
    for row in range(height, 0, -1):
        threshold = (row - 0.5) / height * hi
        rows.append("".join(fill if v >= threshold else " " for v in folded))
    rows.append("-" * width)
    return "\n".join(rows)


def histogram_bars(
    edges: np.ndarray,
    counts: np.ndarray,
    width: int = 50,
    max_rows: int = 16,
    ascii_only: bool = False,
) -> str:
    """Horizontal-bar rendering of a latency histogram (Fig. 11)."""
    counts = np.asarray(counts)
    edges = np.asarray(edges)
    if len(edges) != len(counts) + 1:
        raise ValueError("edges must be one longer than counts")
    if len(counts) == 0 or counts.max() == 0:
        return "(empty histogram)"
    fill = "#" if ascii_only else "█"
    # Fold bins down to at most max_rows rows.
    n = len(counts)
    rows = min(max_rows, n)
    folded_counts = _levels(counts.astype(float), rows) * (n / rows)
    bounds = np.linspace(edges[0], edges[-1], rows + 1)
    top = folded_counts.max()
    lines = []
    for i in range(rows):
        bar = fill * max(0, int(round(folded_counts[i] / top * width)))
        lines.append(
            f"{bounds[i]:8.0f}-{bounds[i + 1]:6.0f} cyc |{bar} "
            f"{folded_counts[i]:.0f}"
        )
    return "\n".join(lines)


def report_panel(
    report: ProfileReport,
    signal: Optional[np.ndarray] = None,
    width: int = 72,
    ascii_only: bool = False,
) -> str:
    """Composite text panel: summary + optional signal strip + histogram."""
    parts = [report.summary()]
    if signal is not None and len(signal):
        parts.append("")
        parts.append("signal (time ->):")
        parts.append(signal_strip(signal, width=width, ascii_only=ascii_only))
    lat = report.latencies_cycles()
    if len(lat):
        from .core.stats import latency_histogram

        edges, counts = latency_histogram(lat, bin_cycles=max(20.0, lat.max() / 24))
        parts.append("")
        parts.append("stall-latency histogram:")
        parts.append(histogram_bars(edges, counts, ascii_only=ascii_only))
    return "\n".join(parts)
