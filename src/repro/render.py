"""Dependency-free ASCII rendering of signals and profiles.

The library deliberately avoids a plotting dependency; these helpers
give the CLI and examples quick visual summaries - a signal strip
chart (the Fig. 1/7 shapes), latency histograms (Fig. 11), and
miss-rate timelines (Fig. 13) - rendered with block characters in a
terminal.  The ``repro explain`` provenance cards (text and
self-contained HTML) also live here, on top of
:mod:`repro.obs.explain`.
"""

from __future__ import annotations

import html as _html
from typing import List, Optional, Sequence

import numpy as np

from .core.events import ProfileReport
from .obs.explain import (
    ReportDiff,
    StallCard,
    explain_report,
    near_miss_line,
)

_BLOCKS = " ▁▂▃▄▅▆▇█"
_ASCII_BLOCKS = " .:-=+*#%@"


def _levels(values: np.ndarray, width: int) -> np.ndarray:
    """Fold ``values`` into ``width`` columns of mean level."""
    if len(values) == 0:
        return np.zeros(width)
    chunks = np.array_split(np.asarray(values, dtype=np.float64), width)
    return np.array([c.mean() if len(c) else 0.0 for c in chunks])


def sparkline(
    values: Sequence[float], width: int = 72, ascii_only: bool = False
) -> str:
    """One-line strip chart of ``values``.

    Levels are normalized to the series' own min/max; an empty or
    constant series renders flat.
    """
    blocks = _ASCII_BLOCKS if ascii_only else _BLOCKS
    folded = _levels(np.asarray(values, dtype=np.float64), width)
    lo = folded.min() if len(folded) else 0.0
    hi = folded.max() if len(folded) else 1.0
    span = hi - lo
    if span <= 0:
        return blocks[0] * width
    idx = ((folded - lo) / span * (len(blocks) - 1)).astype(int)
    return "".join(blocks[i] for i in idx)


def signal_strip(
    signal: np.ndarray,
    width: int = 72,
    height: int = 8,
    ascii_only: bool = False,
) -> str:
    """Multi-row strip chart of a magnitude signal.

    Each column is the mean level of its time slice; a column is
    filled from the bottom up to its level - dips (stalls) show up as
    valleys, exactly the Fig. 1 visual.
    """
    if height < 2:
        raise ValueError("height must be at least 2")
    fill = "#" if ascii_only else "█"
    folded = _levels(np.asarray(signal, dtype=np.float64), width)
    hi = folded.max() if len(folded) else 1.0
    if hi <= 0:
        hi = 1.0
    rows: List[str] = []
    for row in range(height, 0, -1):
        threshold = (row - 0.5) / height * hi
        rows.append("".join(fill if v >= threshold else " " for v in folded))
    rows.append("-" * width)
    return "\n".join(rows)


def histogram_bars(
    edges: np.ndarray,
    counts: np.ndarray,
    width: int = 50,
    max_rows: int = 16,
    ascii_only: bool = False,
) -> str:
    """Horizontal-bar rendering of a latency histogram (Fig. 11)."""
    counts = np.asarray(counts)
    edges = np.asarray(edges)
    if len(edges) != len(counts) + 1:
        raise ValueError("edges must be one longer than counts")
    if len(counts) == 0 or counts.max() == 0:
        return "(empty histogram)"
    fill = "#" if ascii_only else "█"
    # Fold bins down to at most max_rows rows.
    n = len(counts)
    rows = min(max_rows, n)
    folded_counts = _levels(counts.astype(float), rows) * (n / rows)
    bounds = np.linspace(edges[0], edges[-1], rows + 1)
    top = folded_counts.max()
    lines = []
    for i in range(rows):
        bar = fill * max(0, int(round(folded_counts[i] / top * width)))
        lines.append(
            f"{bounds[i]:8.0f}-{bounds[i + 1]:6.0f} cyc |{bar} "
            f"{folded_counts[i]:.0f}"
        )
    return "\n".join(lines)


def report_panel(
    report: ProfileReport,
    signal: Optional[np.ndarray] = None,
    width: int = 72,
    ascii_only: bool = False,
) -> str:
    """Composite text panel: summary + optional signal strip + histogram."""
    parts = [report.summary()]
    if signal is not None and len(signal):
        parts.append("")
        parts.append("signal (time ->):")
        parts.append(signal_strip(signal, width=width, ascii_only=ascii_only))
    lat = report.latencies_cycles()
    if len(lat):
        from .core.stats import latency_histogram

        edges, counts = latency_histogram(lat, bin_cycles=max(20.0, lat.max() / 24))
        parts.append("")
        parts.append("stall-latency histogram:")
        parts.append(histogram_bars(edges, counts, ascii_only=ascii_only))
    return "\n".join(parts)


# -- provenance cards (repro explain) -----------------------------------------


def _card_header(card: StallCard) -> str:
    e = card.evidence
    flags = []
    if e.is_refresh:
        flags.append("refresh")
    if e.low_confidence:
        flags.append("low-confidence")
    if not e.complete:
        flags.append("incomplete evidence")
    suffix = f"  [{', '.join(flags)}]" if flags else ""
    return (
        f"stall #{card.index}: samples {e.begin_sample:.3f}-{e.end_sample:.3f}"
        f", {e.duration_cycles:.1f} cycles{suffix}"
    )


def explain_text(report: ProfileReport, show_near_misses: bool = True) -> str:
    """Text provenance cards for a flight-recorded report.

    One card per stall — the exact decision trail that produced it —
    followed by the near-miss log (rejected dip candidates), which
    answers "why was nothing reported here?".  Raises ``ValueError``
    when the report carries no evidence.
    """
    cards = explain_report(report)
    ev = report.evidence
    lines: List[str] = [
        f"{len(cards)} stall(s), {len(ev.near_misses)} near miss(es); "
        f"threshold {ev.threshold:g}, recover {ev.recover_threshold:g}, "
        f"min duration {ev.min_duration_cycles:g} cycles / "
        f"{ev.min_duration_samples} samples",
    ]
    if ev.overwritten_events:
        lines.append(
            f"warning: flight ring wrapped — {ev.overwritten_events} of "
            f"{ev.total_events} events lost; early cards may be incomplete"
        )
    for card in cards:
        lines.append("")
        lines.append(_card_header(card))
        lines.extend(f"  - {line}" for line in card.lines)
    if show_near_misses:
        lines.append("")
        if ev.near_misses:
            lines.append("near misses (dips seen but rejected):")
            lines.extend(f"  - {near_miss_line(m)}" for m in ev.near_misses)
        else:
            lines.append("near misses: none (no dip candidate was rejected)")
    return "\n".join(lines)


def diff_text(diff: ReportDiff) -> str:
    """Text rendering of a two-run diff (:func:`repro.obs.explain.diff_reports`)."""
    if diff.identical:
        return (
            f"runs are identical: {len(diff.pairs)} stall(s) aligned, "
            f"no differences"
        )
    lines = [
        f"{len(diff.pairs)} stall(s) aligned, "
        f"{len(diff.deltas)} difference(s):"
    ]
    for d in diff.deltas:
        run = "A" if d.side == "a" else "B"
        lines.append(
            f"  - only in {run}: stall #{d.index} "
            f"[{d.begin_sample:.3f}, {d.end_sample:.3f}) — {d.detail}"
        )
    return "\n".join(lines)


_EXPLAIN_CSS = (
    "body{font:14px/1.5 -apple-system,'Segoe UI',sans-serif;margin:2em auto;"
    "max-width:60em;color:#1a1a2e;background:#fafafa}"
    "h1{font-size:1.3em}h2{font-size:1.1em;margin-top:2em}"
    ".card{background:#fff;border:1px solid #ddd;border-left:4px solid #4361ee;"
    "border-radius:4px;padding:.8em 1.2em;margin:1em 0}"
    ".card.flagged{border-left-color:#e07a00}"
    ".card h3{margin:0 0 .4em;font-size:1em}"
    ".card ol{margin:.2em 0 .2em 1.2em;padding:0}"
    ".card li{margin:.15em 0}"
    ".meta{color:#667;font-size:.92em}"
    ".warn{background:#fff3e0;border:1px solid #e07a00;border-radius:4px;"
    "padding:.6em 1em}"
    ".miss{color:#884;font-size:.95em;margin:.3em 0}"
    ".delta{background:#fde8e8;border-left:4px solid #c0392b;border-radius:4px;"
    "padding:.6em 1em;margin:.6em 0}"
)


def explain_html(
    report: ProfileReport,
    title: str = "EMPROF stall provenance",
    diff: Optional[ReportDiff] = None,
) -> str:
    """Self-contained HTML provenance report (no external assets).

    The HTML mirrors :func:`explain_text`: one card per stall with its
    decision trail, the near-miss log, and — when ``diff`` is given —
    the attributed differences against the compared run.
    """
    cards = explain_report(report)
    ev = report.evidence
    esc = _html.escape
    parts: List[str] = [
        "<!doctype html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{esc(title)}</title>",
        f"<style>{_EXPLAIN_CSS}</style></head><body>",
        f"<h1>{esc(title)}</h1>",
        f'<p class="meta">{len(cards)} stall(s), '
        f"{len(ev.near_misses)} near miss(es) &middot; threshold "
        f"{ev.threshold:g}, recover {ev.recover_threshold:g}, min duration "
        f"{ev.min_duration_cycles:g} cycles / {ev.min_duration_samples} "
        f"samples</p>",
    ]
    if ev.overwritten_events:
        parts.append(
            f'<p class="warn">flight ring wrapped: {ev.overwritten_events} '
            f"of {ev.total_events} events lost; early cards may be "
            f"incomplete</p>"
        )
    if diff is not None:
        parts.append("<h2>Differences vs compared run</h2>")
        if diff.identical:
            parts.append(
                f'<p class="meta">runs are identical '
                f"({len(diff.pairs)} stall(s) aligned)</p>"
            )
        for d in diff.deltas:
            run = "A" if d.side == "a" else "B"
            parts.append(
                f'<div class="delta">only in {run}: stall #{d.index} '
                f"[{d.begin_sample:.3f}, {d.end_sample:.3f}) &mdash; "
                f"{esc(d.detail)}</div>"
            )
    parts.append("<h2>Reported stalls</h2>")
    for card in cards:
        e = card.evidence
        flagged = e.low_confidence or not e.complete
        parts.append(f'<div class="card{" flagged" if flagged else ""}">')
        parts.append(f"<h3>{esc(_card_header(card))}</h3><ol>")
        parts.extend(f"<li>{esc(line)}</li>" for line in card.lines)
        parts.append("</ol></div>")
    parts.append("<h2>Near misses</h2>")
    if ev.near_misses:
        parts.extend(
            f'<p class="miss">{esc(near_miss_line(m))}</p>'
            for m in ev.near_misses
        )
    else:
        parts.append(
            '<p class="meta">none — no dip candidate was rejected</p>'
        )
    parts.append("</body></html>")
    return "\n".join(parts)
