"""Baseline profilers EMPROF is compared against, and their costs."""

from .instrumentation import (
    INTERRUPT_REGION,
    InstrumentationConfig,
    InstrumentedWorkload,
    ObserverEffect,
    observer_effect,
)
from .perf_counters import (
    PerfCounterConfig,
    PerfCounterModel,
    PerfSampler,
    SamplerResult,
)

__all__ = [
    "InstrumentationConfig",
    "InstrumentedWorkload",
    "ObserverEffect",
    "observer_effect",
    "INTERRUPT_REGION",
    "PerfCounterConfig",
    "PerfCounterModel",
    "PerfSampler",
    "SamplerResult",
]
