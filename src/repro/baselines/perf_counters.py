"""Emulation of perf-style hardware-counter profiling (the baseline).

Section V motivates EMPROF by showing how unreliable on-device counter
profiling is for short runs on these devices: counting LLC misses with
``perf`` for a program engineered to produce exactly 1,024 misses
"reported ... an average of 32,768 and a standard deviation of
14,543".  Two effects drive this:

* the counter counts *system-wide per-CPU* events while the program
  shares the machine with the OS, other processes, interrupt handlers
  and the profiling machinery itself - bursty background activity that
  dwarfs a small engineered count;
* reading counters requires interrupts/syscalls whose own cache
  footprint perturbs the measurement (the observer effect EMPROF is
  free of), increasingly so at higher sampling rates.

:class:`PerfCounterModel` reproduces the first effect (the reported
count); :class:`PerfSampler` models the rate/overhead trade-off of
sampled attribution (Section I's granularity-vs-overhead discussion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..sim.trace import GroundTruth


@dataclass(frozen=True)
class PerfCounterConfig:
    """Background-interference model behind a counter reading.

    Background activity arrives as bursts (scheduler ticks, daemons
    waking, RCU callbacks...): burst *count* over a run is Poisson
    with mean ``burst_rate_per_s * duration``, and each burst
    contributes a heavy-tailed Gamma-distributed number of extra LLC
    misses.  Defaults are calibrated so a ~2 ms run on the Olimex
    model reports mean ~32k / std ~14k extra misses, matching the
    paper's perf anecdote.
    """

    burst_rate_per_s: float = 3000.0
    burst_mean_misses: float = 5200.0
    burst_shape: float = 6.0
    base_rate_per_s: float = 120_000.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.burst_rate_per_s < 0 or self.base_rate_per_s < 0:
            raise ValueError("rates cannot be negative")
        if self.burst_mean_misses < 0:
            raise ValueError("burst size cannot be negative")
        if self.burst_shape <= 0:
            raise ValueError("gamma shape must be positive")


class PerfCounterModel:
    """What ``perf stat -e LLC-load-misses`` would report.

    The model takes the *true* miss count and the run duration and
    adds system interference; repeated calls draw independent runs.
    """

    def __init__(self, config: Optional[PerfCounterConfig] = None):
        self.config = config if config is not None else PerfCounterConfig()
        self._rng = np.random.default_rng(self.config.seed)

    def report(self, true_misses: int, duration_s: float) -> int:
        """One reported counter value for one program run."""
        if true_misses < 0 or duration_s < 0:
            raise ValueError("inputs cannot be negative")
        cfg = self.config
        n_bursts = self._rng.poisson(cfg.burst_rate_per_s * duration_s)
        burst = 0.0
        if n_bursts:
            scale = cfg.burst_mean_misses / cfg.burst_shape
            burst = float(
                self._rng.gamma(cfg.burst_shape, scale, size=n_bursts).sum()
            )
        base = self._rng.poisson(cfg.base_rate_per_s * duration_s)
        return int(true_misses + base + burst)

    def report_runs(
        self, true_misses: int, duration_s: float, runs: int
    ) -> np.ndarray:
        """Reported values for ``runs`` independent executions."""
        if runs <= 0:
            raise ValueError("runs must be positive")
        return np.array(
            [self.report(true_misses, duration_s) for _ in range(runs)],
            dtype=np.int64,
        )

    def report_for(self, truth: GroundTruth, clock_hz: float) -> int:
        """Convenience: report for a simulated run's ground truth."""
        return self.report(truth.miss_count(), truth.total_cycles / clock_hz)


@dataclass(frozen=True)
class SamplerResult:
    """Outcome of sampled counter profiling of one run.

    Attributes:
        misses_by_region: estimated miss attribution (region id ->
            estimated misses), reconstructed from samples.
        overhead_cycles: cycles the target spent in profiling
            interrupts (the observer effect).
        samples: number of sampling interrupts taken.
    """

    misses_by_region: Dict[int, float]
    overhead_cycles: int
    samples: int


class PerfSampler:
    """Threshold-sampled attribution (interrupt every T misses).

    Each interrupt attributes T misses to the region executing at that
    moment, and costs ``interrupt_cycles`` on the target - the
    granularity-vs-overhead trade-off of Section I: small T gives fine
    attribution but large overhead and perturbation; large T gives
    coarse, aliased attribution.
    """

    def __init__(self, threshold: int = 512, interrupt_cycles: int = 4_000):
        if threshold <= 0:
            raise ValueError("sampling threshold must be positive")
        if interrupt_cycles < 0:
            raise ValueError("interrupt cost cannot be negative")
        self.threshold = threshold
        self.interrupt_cycles = interrupt_cycles

    def profile(self, truth: GroundTruth) -> SamplerResult:
        """Sampled attribution of a simulated run's misses."""
        misses: Dict[int, float] = {}
        samples = 0
        count = 0
        for miss in truth.misses:
            count += 1
            if count >= self.threshold:
                count = 0
                samples += 1
                region = miss.region
                misses[region] = misses.get(region, 0.0) + self.threshold
        return SamplerResult(
            misses_by_region=misses,
            overhead_cycles=samples * self.interrupt_cycles,
            samples=samples,
        )

    def attribution_error(self, truth: GroundTruth) -> float:
        """L1 distance between sampled and true per-region shares.

        0.0 is perfect attribution, 2.0 total disagreement - a scalar
        for the ablation bench sweeping the threshold.
        """
        result = self.profile(truth)
        true_counts = truth.misses_by_region()
        total_true = sum(true_counts.values())
        total_est = sum(result.misses_by_region.values())
        if total_true == 0:
            return 0.0
        if total_est == 0:
            return 2.0
        regions = set(true_counts) | set(result.misses_by_region)
        err = 0.0
        for region in regions:
            share_true = true_counts.get(region, 0) / total_true
            share_est = result.misses_by_region.get(region, 0.0) / total_est
            err += abs(share_true - share_est)
        return err
