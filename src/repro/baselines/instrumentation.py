"""On-device profiling instrumentation and its observer effect.

The paper's central claim is that EMPROF has *zero* observer effect:
it needs no interrupts, no instrumentation, no memory on the target
(Sections I and VII).  Counter-based profiling does: every sample is
an interrupt whose handler executes OS code and touches OS data,
polluting the caches the profiled program depends on - "increased
interrupt rate as well as binary software calls introduce overhead
and may distort the measurement" [11]-[13].

:class:`InstrumentedWorkload` makes that concrete: it wraps any
workload and injects a profiling-interrupt handler every
``period_instructions``, with a configurable code footprint and data
touch set.  Simulating the same program with and without the wrapper
measures exactly the two distortions the paper names:

* **overhead** - extra cycles spent in handlers,
* **measurement distortion** - the change in the *application's own*
  miss behaviour caused by handler cache pollution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator

from ..sim.config import MachineConfig
from ..sim.isa import ALU, Instr, LOAD, NO_CONSUMER, STORE, instruction_bytes
from ..sim.trace import GroundTruth
from ..workloads.base import Workload

_IB = instruction_bytes()

# Region id reserved for injected handler activity; far above anything
# workloads assign themselves.
INTERRUPT_REGION = 990

_HANDLER_PC = 0x7F00_0000
_HANDLER_DATA = 0x7E00_0000


@dataclass(frozen=True)
class InstrumentationConfig:
    """Profiling-interrupt model.

    Attributes:
        period_instructions: application instructions between
            interrupts (the sampling rate knob; smaller = finer
            attribution = more distortion).
        handler_instructions: dynamic length of one handler run
            (counter read, sample buffering, bookkeeping).
        handler_code_bytes: handler code footprint - evicts
            application lines from the I-cache.
        handler_data_lines: distinct data lines the handler touches
            per interrupt (sample buffer, task structs) - evicts
            application lines from the D-cache/LLC.
    """

    period_instructions: int = 10_000
    handler_instructions: int = 1_500
    handler_code_bytes: int = 4_096
    handler_data_lines: int = 32

    def __post_init__(self) -> None:
        if self.period_instructions <= 0:
            raise ValueError("sampling period must be positive")
        if self.handler_instructions <= 0:
            raise ValueError("handler length must be positive")
        if self.handler_code_bytes < _IB:
            raise ValueError("handler code footprint too small")
        if self.handler_data_lines < 0:
            raise ValueError("handler data lines cannot be negative")


class InstrumentedWorkload:
    """A workload with periodic profiling interrupts injected.

    The wrapped workload's stream is passed through unchanged except
    that after every ``period_instructions`` application instructions,
    one interrupt handler execution is inserted.  Handler data touches
    rotate through a buffer so repeated interrupts keep polluting
    fresh lines, as real sample buffers do.
    """

    def __init__(self, inner: Workload, config: InstrumentationConfig = None):
        self.inner = inner
        self.config = config if config is not None else InstrumentationConfig()
        self.name = f"{inner.name}+perf{self.config.period_instructions}"
        self.region_names: Dict[int, str] = dict(
            getattr(inner, "region_names", {}) or {}
        )
        self.region_names[INTERRUPT_REGION] = "profiler_interrupt"

    def _handler(self, invocation: int) -> Iterator[Instr]:
        cfg = self.config
        code_instrs = cfg.handler_code_bytes // _IB
        data_base = _HANDLER_DATA + (
            (invocation * cfg.handler_data_lines) % 4096
        ) * 64
        touched = 0
        for j in range(cfg.handler_instructions):
            pc = _HANDLER_PC + (j % code_instrs) * _IB
            # Interleave data touches through the handler body.
            if touched < cfg.handler_data_lines and j % max(
                1, cfg.handler_instructions // max(1, cfg.handler_data_lines)
            ) == 0:
                addr = data_base + touched * 64
                op = STORE if touched % 2 else LOAD
                dep = NO_CONSUMER if op == STORE else 4
                yield Instr(op, pc, addr, dep, 0.15, INTERRUPT_REGION)
                touched += 1
            else:
                yield Instr(ALU, pc, 0, NO_CONSUMER, 0.12, INTERRUPT_REGION)

    def instructions(self, config: MachineConfig) -> Iterator[Instr]:
        """The wrapped stream with handlers injected."""
        cfg = self.config
        count = 0
        invocation = 0
        for ins in self.inner.instructions(config):
            yield ins
            count += 1
            if count >= cfg.period_instructions:
                count = 0
                yield from self._handler(invocation)
                invocation += 1


@dataclass(frozen=True)
class ObserverEffect:
    """Measured distortion of instrumented vs clean execution.

    Attributes:
        overhead_fraction: extra execution time / clean execution time.
        app_miss_delta: change in the application's own miss count
            (handler-region misses excluded) - nonzero means the
            profiler changed what it was measuring.
        handler_misses: misses caused by the handlers themselves.
        handler_cycles: cycles the target spent inside handlers.
    """

    overhead_fraction: float
    app_miss_delta: int
    handler_misses: int
    handler_cycles: int


def observer_effect(
    clean: GroundTruth, instrumented: GroundTruth
) -> ObserverEffect:
    """Quantify what the instrumentation did to the measured program."""
    if clean.total_cycles <= 0:
        raise ValueError("clean run has no execution time")
    app_misses_clean = sum(
        1 for m in clean.misses if m.region != INTERRUPT_REGION
    )
    app_misses_instr = sum(
        1 for m in instrumented.misses if m.region != INTERRUPT_REGION
    )
    handler_misses = sum(
        1 for m in instrumented.misses if m.region == INTERRUPT_REGION
    )
    handler_cycles = instrumented.region_cycles.get(INTERRUPT_REGION, 0)
    return ObserverEffect(
        overhead_fraction=(
            instrumented.total_cycles - clean.total_cycles
        )
        / clean.total_cycles,
        app_miss_delta=app_misses_instr - app_misses_clean,
        handler_misses=handler_misses,
        handler_cycles=handler_cycles,
    )
