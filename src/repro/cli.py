"""Command-line interface: ``python -m repro <command>``.

Mirrors a real measurement campaign's workflow:

* ``devices``    - list the modelled targets and their parameters;
* ``capture``    - run a workload on a device model through the EM
  apparatus and save the capture (.npz);
* ``profile``    - run EMPROF over a saved capture and save/print the
  report (.json);
* ``explain``    - decision-level provenance: why was each stall
  reported (and why was nothing reported elsewhere)?  Re-profiles a
  capture with the engine flight recorder attached; renders text or
  self-contained HTML cards, diffs two runs;
* ``selftest``   - engineered-microbenchmark accuracy check (the
  Table II experiment at one grid point);
* ``table``      - regenerate one of the paper's tables;
* ``faults``     - chaos demo: inject impairments into a capture and
  compare the hardened streaming profile against the clean one;
* ``obs``        - pretty-print an observability snapshot (or run a
  live instrumented demo); see ``docs/observability.md``;
* ``campaignd``  - the supervised campaign daemon and its protocol
  clients (submit/status/cancel/drain/shutdown); see
  ``docs/service.md``.

Global ``--quiet`` / ``--verbose`` flags control the stdlib-logging
bridge (:mod:`repro.obs.logbridge`); ``profile --trace-out/--metrics-out``
export spans and metrics from an instrumented run.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import io as repro_io
from . import obs
from .analysis import boundedness, speedup_headroom
from .core.detect import DetectorConfig
from .core.markers import find_marker_window
from .core.normalize import NormalizerConfig
from .core.profiler import Emprof, EmprofConfig
from .core.validate import count_accuracy
from .devices import DEVICE_NAMES, by_name, default_channel
from .emsignal import measure
from .sim.machine import simulate
from .workloads import BootWorkload, Microbenchmark, SPEC_BENCHMARKS, spec_workload


def _build_workload(args: argparse.Namespace):
    name = args.workload
    if name == "micro":
        return Microbenchmark(
            total_misses=args.tm,
            consecutive_misses=args.cm,
            seed=args.seed,
        )
    if name == "boot":
        return BootWorkload(seed=args.seed, scale=args.scale)
    if name in SPEC_BENCHMARKS:
        return spec_workload(name, seed=args.seed or 11, scale=args.scale)
    raise SystemExit(
        f"unknown workload {name!r}; expected 'micro', 'boot' or one of "
        f"{', '.join(SPEC_BENCHMARKS)}"
    )


def cmd_devices(_args: argparse.Namespace) -> int:
    print(f"{'device':10s} {'clock':>9s} {'LLC':>7s} {'width':>5s} "
          f"{'mem lat':>8s} {'prefetch':>8s}")
    for name in DEVICE_NAMES:
        cfg = by_name(name)
        print(
            f"{name:10s} {cfg.clock_hz / 1e9:7.3f}G {cfg.llc.size_bytes // 1024:5d}KB "
            f"{cfg.core.width:5d} {cfg.memory.access_latency:6d}cy "
            f"{'yes' if cfg.prefetcher_enabled else 'no':>8s}"
        )
    return 0


def cmd_capture(args: argparse.Namespace) -> int:
    device = by_name(args.device)
    workload = _build_workload(args)
    print(f"simulating {workload.name} on {device.name} ...")
    result = simulate(workload, device, seed=args.seed)
    capture = measure(
        result,
        bandwidth_hz=args.bandwidth_mhz * 1e6,
        channel=default_channel(device.name, seed=args.seed),
    )
    repro_io.save_capture(args.output, capture)
    truth = result.ground_truth
    print(
        f"captured {len(capture.magnitude)} samples "
        f"({capture.duration_s * 1e3:.2f} ms at {args.bandwidth_mhz:.0f} MHz) "
        f"-> {args.output}"
    )
    if args.ground_truth:
        repro_io.save_ground_truth(args.ground_truth, truth)
        print(f"ground truth ({truth.miss_count()} misses) -> {args.ground_truth}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    import contextlib as _contextlib
    import time as _time

    log = obs.get_logger("cli")
    wants_obs = bool(
        args.trace_out
        or args.metrics_out
        or args.ledger
        or args.profile_out
        or args.span_memory
    )
    if wants_obs and not obs.obs_enabled():
        # Exporting implies instrumenting: turn the obs layer on for
        # this command rather than silently writing empty artifacts.
        obs.set_obs_enabled(True)
        log.info(
            "observability enabled for this run "
            "(--trace-out/--metrics-out/--ledger/--profile-out)"
        )
    if args.trace_id:
        # A parent process (campaign orchestrator, shell script) is
        # threading this run into its trace.
        from .obs import tracectx

        tracectx.activate(
            tracectx.TraceContext(
                trace_id=args.trace_id,
                parent_span_id=args.parent_span or None,
            )
        )
    run_begin = _time.perf_counter()
    capture = repro_io.load_capture(args.capture)
    config = EmprofConfig(
        normalizer=NormalizerConfig(window_samples=args.window),
        detector=DetectorConfig(
            threshold=args.threshold,
            min_duration_cycles=args.min_duration,
        ),
    )
    profiler = Emprof.from_capture(capture, config=config)
    from .obs import profilehooks

    memory_ctx = (
        profilehooks.span_memory()
        if args.span_memory
        else _contextlib.nullcontext()
    )
    flight = None
    if args.flight_out:
        if args.isolate_window:
            raise SystemExit(
                "--flight-out is not supported with --isolate-window "
                "(windowed stalls are shifted away from their decision "
                "positions); use `repro explain` on the full capture"
            )
        from .obs.flight import FlightRecorder

        flight = FlightRecorder()
    with profilehooks.profiled(args.profile_out), memory_ctx:
        if args.isolate_window:
            window = find_marker_window(profiler.signal, marker_min_samples=200)
            report = profiler.profile_window(window.begin_sample, window.end_sample)
            print(f"marker window: samples [{window.begin_sample}, {window.end_sample})")
        else:
            report = profiler.profile(flight=flight)
    if flight is not None:
        count = repro_io.save_flight(
            args.flight_out, flight, capture=str(args.capture)
        )
        print(f"flight recording ({count} events) -> {args.flight_out}")
    if args.profile_out:
        print(f"cProfile stats -> {args.profile_out} (+ .txt table)")
    if args.plot:
        from .render import report_panel

        print(report_panel(report, signal=profiler.signal))
    else:
        print(report.summary())

    verdict = boundedness(report)
    print(f"classification : {verdict.label} "
          f"({100 * verdict.stall_fraction:.1f}% stalled)")
    if verdict.stall_fraction < 1.0:
        print(f"Amdahl headroom: {speedup_headroom(report):.2f}x if all "
              f"miss stalls were eliminated")
    if args.output:
        repro_io.save_report(args.output, report)
        print(f"report -> {args.output}")
    if args.metrics_out or args.ledger:
        # Stamp the event bus's health gauges (drops, queue depth) into
        # the registry so they land in the exported snapshot.
        from .obs import events as obs_events

        obs_events.export_gauges()
    if args.trace_out:
        obs.trace.write(args.trace_out, fmt=args.trace_format)
        print(f"trace ({len(obs.trace.records())} spans) -> {args.trace_out}")
    if args.metrics_out:
        fmt = "prom" if args.metrics_out.endswith((".prom", ".txt")) else "json"
        obs.metrics.write(args.metrics_out, fmt=fmt)
        print(f"metrics -> {args.metrics_out}")
    if args.ledger:
        import dataclasses
        from pathlib import Path

        from .obs import ledger as obs_ledger

        entry = obs_ledger.record(
            kind="profile",
            label=Path(args.capture).stem,
            wall_time_s=_time.perf_counter() - run_begin,
            config=config,
            metrics=obs.metrics.snapshot(),
            spans=obs.trace.aggregate(),
            quality=(
                dataclasses.asdict(report.quality)
                if report.quality is not None
                else None
            ),
            extra={
                "capture": str(args.capture),
                "miss_count": report.miss_count,
                "low_confidence_count": report.low_confidence_count,
                "stall_fraction": report.stall_fraction,
                **(
                    {"flight": str(args.flight_out)}
                    if args.flight_out
                    else {}
                ),
            },
        )
        obs_ledger.RunLedger(args.ledger).append(entry)
        print(f"ledger +1 ({entry.group}) -> {args.ledger}")
    return 0


def _explained_report(path: str, args: argparse.Namespace):
    """Load a report (.json, must carry evidence) or re-profile a capture.

    Returns ``(report, recorder)``; ``recorder`` is ``None`` when the
    evidence came from a saved report rather than a fresh run.
    """
    from .obs.flight import FlightRecorder

    if str(path).endswith(".json"):
        report = repro_io.load_report(path)
        if report.evidence is None:
            raise SystemExit(
                f"{path}: report carries no evidence; run "
                f"`repro explain` on the capture instead (it re-profiles "
                f"with a flight recorder), or profile with --flight-out"
            )
        return report, None
    capture = repro_io.load_capture(path)
    config = EmprofConfig(
        normalizer=NormalizerConfig(window_samples=args.window),
        detector=DetectorConfig(
            threshold=args.threshold,
            min_duration_cycles=args.min_duration,
        ),
    )
    recorder = FlightRecorder(capacity=args.flight_capacity)
    report = Emprof.from_capture(capture, config=config).profile(flight=recorder)
    return report, recorder


def _parse_sample_range(spec: str) -> tuple:
    """Parse the ``--at BEGIN:END`` sample-range syntax."""
    try:
        begin_s, _, end_s = spec.partition(":")
        begin, end = float(begin_s), float(end_s)
    except ValueError:
        raise SystemExit(f"--at expects BEGIN:END sample range, got {spec!r}")
    if end < begin:
        raise SystemExit(f"--at range is inverted: {spec!r}")
    return begin, end


def cmd_explain(args: argparse.Namespace) -> int:
    from .obs.explain import diff_reports, near_miss_line, near_misses_between
    from .render import diff_text, explain_html, explain_text

    report, recorder = _explained_report(args.capture, args)
    diff = None
    if args.diff:
        other, _ = _explained_report(args.diff, args)
        diff = diff_reports(report, other)

    print(explain_text(report))
    if args.at:
        begin, end = _parse_sample_range(args.at)
        print()
        print(f"window [{begin:g}, {end:g}):")
        overlapping = [
            e
            for e in report.evidence.stalls
            if e.begin_sample <= end and e.end_sample >= begin
        ]
        for e in overlapping:
            print(f"  - stall #{e.index} reported "
                  f"[{e.begin_sample:.3f}, {e.end_sample:.3f})")
        misses = near_misses_between(report.evidence, begin, end)
        for m in misses:
            print(f"  - {near_miss_line(m)}")
        if not overlapping and not misses:
            print("  - nothing reported and no candidate rejected: the "
                  "signal never crossed the threshold here")
    if diff is not None:
        print()
        print(f"diff vs {args.diff}:")
        print(diff_text(diff))
    if args.html:
        html = explain_html(
            report,
            title=f"EMPROF stall provenance — {args.capture}",
            diff=diff,
        )
        with open(args.html, "w", encoding="utf-8") as fh:
            fh.write(html)
        print(f"\nprovenance report -> {args.html}")
    if args.flight_out:
        if recorder is None:
            raise SystemExit(
                "--flight-out needs a capture input (saved reports carry "
                "evidence but not the raw event stream)"
            )
        count = repro_io.save_flight(
            args.flight_out, recorder, capture=str(args.capture)
        )
        print(f"flight recording ({count} events) -> {args.flight_out}")
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    # Delegate to the repro-obs entry point so argument handling (and
    # the 0/2/3 exit-code contract) exist in exactly one place.  The
    # top-level parser forwards everything after `obs` verbatim:
    # positionals it captured plus any flags it did not recognize.
    from .obs.cli import main as obs_main

    return obs_main(list(args.args) + list(getattr(args, "extra_args", [])))


def cmd_campaignd(args: argparse.Namespace) -> int:
    # Same delegation shape as `obs`: the repro-campaignd entry point
    # owns the daemon/client argument handling, this just forwards.
    from .experiments.service import main as campaignd_main

    return campaignd_main(list(args.args) + list(getattr(args, "extra_args", [])))


def cmd_selftest(args: argparse.Namespace) -> int:
    device = by_name(args.device)
    workload = Microbenchmark(total_misses=args.tm, consecutive_misses=args.cm)
    result = simulate(workload, device, seed=args.seed)
    capture = measure(
        result, bandwidth_hz=40e6, channel=default_channel(device.name, seed=args.seed)
    )
    profiler = Emprof.from_capture(capture)
    window = find_marker_window(profiler.signal, marker_min_samples=200)
    report = profiler.profile_window(window.begin_sample, window.end_sample)
    acc = count_accuracy(report.miss_count, workload.total_misses)
    print(
        f"{device.name}: detected {report.miss_count} / {workload.total_misses} "
        f"engineered misses ({100 * acc:.2f}%)"
    )
    if acc < 0.97:
        print("SELFTEST FAILED (expected >= 97%)")
        return 1
    print("selftest passed")
    return 0


def cmd_reproduce(args: argparse.Namespace) -> int:
    from .experiments.reportgen import generate_report

    include = args.only.split(",") if args.only else None
    path = generate_report(args.output, scale=args.scale, include=include)
    print(f"results -> {path}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from .analysis import compare_reports

    before = repro_io.load_report(args.before)
    after = repro_io.load_report(args.after)
    delta = compare_reports(before, after)
    print(f"misses        : {before.miss_count} -> {after.miss_count} "
          f"({delta.miss_delta:+d})")
    print(f"stall cycles  : {before.stall_cycles:.0f} -> {after.stall_cycles:.0f} "
          f"({delta.stall_cycle_delta:+.0f})")
    print(f"stall fraction: {100 * delta.stall_fraction_before:.2f}% -> "
          f"{100 * delta.stall_fraction_after:.2f}%")
    print(f"time speedup  : {delta.time_speedup:.3f}x")
    print("verdict       : " + ("improved" if delta.improved else "not improved"))
    return 0


def cmd_attribute(args: argparse.Namespace) -> int:
    from .attribution.report import format_region_table
    from .attribution.spectral import SpectralProfiler
    from .attribution.report import attribute_stalls
    from .experiments.runner import run_device
    from .workloads.spec import SpecWorkload

    device = by_name(args.device)
    workload = spec_workload(args.benchmark, scale=args.scale)
    profiler_s = SpectralProfiler(window_samples=128, smoothing_frames=7)
    print(f"training region spectra for {args.benchmark} on {device.name} ...")
    for phase in workload.phases:
        solo = SpecWorkload(f"train_{phase.region}", [phase], seed=workload.seed)
        train = run_device(solo, device, bandwidth_hz=40e6, seed=args.seed)
        profiler_s.train(phase.region, train.signal, train.capture.sample_rate_hz)
    run = run_device(workload, device, bandwidth_hz=40e6, seed=args.seed)
    timeline = profiler_s.attribute(run.signal, run.capture.sample_rate_hz)
    rows = attribute_stalls(run.report, timeline)
    print(format_region_table(rows))
    worst = max(rows, key=lambda r: r.stall_percent)
    print(f"=> optimization target: {worst.region!r} "
          f"({worst.stall_percent:.1f}% of its time stalled)")
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    import dataclasses

    from .core.streaming import profile_chunks
    from .faults import (
        ClippingFault,
        DropoutFault,
        FaultInjector,
        GainStepFault,
        QualityConfig,
        applied_clip_level,
        iter_chunks,
    )

    capture = repro_io.load_capture(args.capture)
    faults = []
    if args.dropout_rate > 0:
        faults.append(DropoutFault(rate=args.dropout_rate))
    if args.gain_steps > 0:
        faults.append(GainStepFault(steps=args.gain_steps))
    if args.clip_rate > 0:
        faults.append(ClippingFault(rate=args.clip_rate))
    if not faults:
        raise SystemExit("no impairments selected; see --dropout-rate, "
                         "--gain-steps, --clip-rate")
    injector = FaultInjector(faults, seed=args.seed)
    impaired = injector.apply(capture.magnitude)

    clean = profile_chunks(
        [capture.magnitude],
        sample_rate_hz=capture.sample_rate_hz,
        clock_hz=capture.clock_hz,
    )
    quality = QualityConfig(clip_level=applied_clip_level(impaired.log))
    chunks = list(iter_chunks(impaired, chunk_samples=args.chunk))
    report = profile_chunks(
        chunks,
        sample_rate_hz=capture.sample_rate_hz,
        clock_hz=capture.clock_hz,
        quality=quality,
    )

    print("injected impairments:")
    for line in impaired.log.summary().splitlines():
        print(f"  {line}")
    print(f"clean profile   : {clean.miss_count} misses")
    print(f"impaired profile: {report.miss_count} misses "
          f"({report.low_confidence_count} low-confidence)")
    if report.quality is not None:
        q = report.quality
        print(f"quality monitor : {q.gap_count} gaps "
              f"({q.dropped_samples} samples lost), "
              f"{q.clipped_samples} clipped, {q.gain_steps} gain steps, "
              f"{q.impaired_samples} samples in {q.impaired_sample_spans} "
              f"impaired spans")
    if clean.miss_count:
        drift = abs(report.miss_count - clean.miss_count) / clean.miss_count
        print(f"miss-count drift: {100 * drift:.2f}%")
    if args.output:
        repro_io.save_capture(
            args.output,
            dataclasses.replace(capture, magnitude=impaired.signal),
        )
        print(f"impaired capture -> {args.output}")
    return 0


def cmd_table(args: argparse.Namespace) -> int:
    from .experiments import tables

    which = args.which
    if which == 2:
        rows = tables.table2_rows(scale=args.scale)
        print(tables.format_table2(rows))
    elif which == 3:
        micro = tables.table3_micro_rows(scale=args.scale)
        spec = tables.table3_spec_rows(scale=args.scale)
        print(tables.format_table3(micro + spec))
    elif which == 4:
        rows = tables.table4_rows(scale=args.scale)
        print(tables.format_table4(rows))
    elif which == 5:
        from .attribution.report import format_region_table

        print(format_region_table(tables.table5_rows(scale=args.scale)))
    else:
        raise SystemExit("supported tables: 2, 3, 4, 5")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EMPROF reproduction - EM-emanation memory profiling",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="increase log verbosity (-v info, -vv debug)",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="only log errors (overrides --verbose)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("devices", help="list modelled devices").set_defaults(
        func=cmd_devices
    )

    cap = sub.add_parser("capture", help="record an EM capture of a workload")
    cap.add_argument("--device", default="olimex", choices=list(DEVICE_NAMES))
    cap.add_argument(
        "--workload",
        default="micro",
        help="'micro', 'boot', or a SPEC name: " + ", ".join(SPEC_BENCHMARKS),
    )
    cap.add_argument("--tm", type=int, default=256, help="microbenchmark TM")
    cap.add_argument("--cm", type=int, default=5, help="microbenchmark CM")
    cap.add_argument("--scale", type=float, default=1.0, help="workload scale")
    cap.add_argument("--bandwidth-mhz", type=float, default=40.0)
    cap.add_argument("--seed", type=int, default=0)
    cap.add_argument("-o", "--output", required=True, help="capture .npz path")
    cap.add_argument("--ground-truth", help="also save ground truth (.npz)")
    cap.set_defaults(func=cmd_capture)

    prof = sub.add_parser("profile", help="run EMPROF over a saved capture")
    prof.add_argument("capture", help="capture .npz path")
    prof.add_argument("-o", "--output", help="report .json path")
    prof.add_argument("--threshold", type=float, default=0.45)
    prof.add_argument("--window", type=int, default=2001)
    prof.add_argument("--min-duration", type=float, default=70.0)
    prof.add_argument(
        "--isolate-window",
        action="store_true",
        help="restrict to the marker-loop window (microbenchmark captures)",
    )
    prof.add_argument(
        "--plot",
        action="store_true",
        help="render the signal and latency histogram as ASCII art",
    )
    prof.add_argument(
        "--trace-out",
        metavar="SPANS_JSON",
        help="write the run's span trace (implies observability on)",
    )
    prof.add_argument(
        "--trace-format",
        choices=("json", "chrome"),
        default="json",
        help="trace file format: native JSON or chrome://tracing",
    )
    prof.add_argument(
        "--metrics-out",
        metavar="METRICS_FILE",
        help="write the run's metric snapshot (.json, or .prom/.txt "
        "for Prometheus text format; implies observability on)",
    )
    prof.add_argument(
        "--ledger",
        metavar="LEDGER_JSONL",
        help="append this run to an append-only run ledger (.jsonl; "
        "implies observability on); see `repro obs regress`",
    )
    prof.add_argument(
        "--profile-out",
        metavar="PSTATS",
        help="capture cProfile stats of the run (binary pstats + .txt "
        "table; implies observability on)",
    )
    prof.add_argument(
        "--span-memory",
        action="store_true",
        help="record per-span tracemalloc high-water marks in the trace "
        "(implies observability on)",
    )
    prof.add_argument(
        "--flight-out",
        metavar="FLIGHT",
        help="record engine decisions and spill them as an NDJSON "
        ".flight sidecar; the saved report then carries per-stall "
        "evidence (see `repro explain`)",
    )
    prof.add_argument(
        "--trace-id",
        metavar="HEX",
        help="join an existing cross-process trace (see repro-obs stitch)",
    )
    prof.add_argument(
        "--parent-span",
        metavar="PID:SPAN",
        help="globalized parent span id this run hangs under",
    )
    prof.set_defaults(func=cmd_profile)

    exp = sub.add_parser(
        "explain",
        help="per-stall provenance: why was each stall reported (or not)?",
        description=(
            "Re-profiles a capture with the engine flight recorder "
            "attached (or reads a report .json that already carries "
            "evidence) and renders one provenance card per stall: "
            "trigger sample, depth margin vs threshold, hysteresis "
            "merge chain, carry provenance, quality overlaps — plus "
            "the near-miss log of rejected dip candidates.  "
            "See docs/observability.md."
        ),
    )
    exp.add_argument("capture", help="capture .npz (re-profiled) or report .json")
    exp.add_argument("--threshold", type=float, default=0.45)
    exp.add_argument("--window", type=int, default=2001)
    exp.add_argument("--min-duration", type=float, default=70.0)
    exp.add_argument(
        "--diff",
        metavar="OTHER",
        help="second capture/report: align stall sets and attribute every "
        "difference to the first diverging decision",
    )
    exp.add_argument(
        "--at",
        metavar="BEGIN:END",
        help="sample range to interrogate: what was reported or rejected "
        "there, and why?",
    )
    exp.add_argument("--html", metavar="OUT_HTML", help="write a self-contained HTML report")
    exp.add_argument(
        "--flight-out",
        metavar="FLIGHT",
        help="spill the raw decision events as an NDJSON .flight sidecar",
    )
    exp.add_argument(
        "--flight-capacity",
        type=int,
        default=16384,
        help="flight-ring capacity (oldest events overwritten beyond this)",
    )
    exp.set_defaults(func=cmd_explain)

    st = sub.add_parser("selftest", help="engineered-miss accuracy check")
    st.add_argument("--device", default="olimex", choices=list(DEVICE_NAMES))
    st.add_argument("--tm", type=int, default=256)
    st.add_argument("--cm", type=int, default=5)
    st.add_argument("--seed", type=int, default=0)
    st.set_defaults(func=cmd_selftest)

    att = sub.add_parser(
        "attribute", help="per-region memory profile of a SPEC model (Table V style)"
    )
    att.add_argument("--benchmark", default="parser", choices=list(SPEC_BENCHMARKS))
    att.add_argument("--device", default="olimex", choices=list(DEVICE_NAMES))
    att.add_argument("--scale", type=float, default=1.0)
    att.add_argument("--seed", type=int, default=0)
    att.set_defaults(func=cmd_attribute)

    rep = sub.add_parser(
        "reproduce", help="regenerate results and write results.md"
    )
    rep.add_argument("-o", "--output", required=True, help="output directory")
    rep.add_argument("--scale", type=float, default=1.0)
    rep.add_argument(
        "--only",
        help="comma-separated subset: table2,table3,table4,table5,perf,"
        "fig5,fig11,fig12,fig13",
    )
    rep.set_defaults(func=cmd_reproduce)

    cmp_ = sub.add_parser(
        "compare", help="before/after comparison of two report .json files"
    )
    cmp_.add_argument("before")
    cmp_.add_argument("after")
    cmp_.set_defaults(func=cmd_compare)

    flt = sub.add_parser(
        "faults",
        help="inject impairments into a capture and profile it hardened",
    )
    flt.add_argument("capture", help="capture .npz path")
    flt.add_argument("--seed", type=int, default=0, help="injection seed")
    flt.add_argument(
        "--dropout-rate", type=float, default=0.02,
        help="fraction of samples lost to dropouts (0 disables)",
    )
    flt.add_argument(
        "--gain-steps", type=int, default=2,
        help="number of AGC gain steps (0 disables)",
    )
    flt.add_argument(
        "--clip-rate", type=float, default=0.01,
        help="fraction of samples saturated (0 disables)",
    )
    flt.add_argument(
        "--chunk", type=int, default=4096, help="streaming chunk size"
    )
    flt.add_argument("-o", "--output", help="save the impaired capture (.npz)")
    flt.set_defaults(func=cmd_faults)

    tab = sub.add_parser("table", help="regenerate one of the paper's tables")
    tab.add_argument("which", type=int, choices=(2, 3, 4, 5))
    tab.add_argument("--scale", type=float, default=1.0)
    tab.set_defaults(func=cmd_table)

    ob = sub.add_parser(
        "obs",
        help="observability tools: snapshot pretty-printer, run ledger, "
        "regression gate, HTML dashboard",
        description=(
            "Forwards to the repro-obs entry point.  Forms: "
            "`repro obs [metrics.json] [--trace spans.json] [--live]`, "
            "`repro obs ledger LEDGER.jsonl`, "
            "`repro obs regress LEDGER.jsonl`, "
            "`repro obs dashboard LEDGER.jsonl -o out.html`."
        ),
    )
    ob.add_argument(
        "args",
        nargs="*",
        help="subcommand (ledger/regress/dashboard) and its arguments, "
        "or a metrics snapshot .json; omit everything to run a demo",
    )
    ob.set_defaults(func=cmd_obs)

    cd = sub.add_parser(
        "campaignd",
        help="supervised campaign daemon and its protocol clients",
        description=(
            "Forwards to the repro-campaignd entry point.  Forms: "
            "`repro campaignd serve --dir DIR --workers N`, "
            "`repro campaignd submit --addr HOST:PORT --json '{...}'`, "
            "`repro campaignd status|cancel|drain|shutdown --addr "
            "HOST:PORT`.  See docs/service.md."
        ),
    )
    cd.add_argument(
        "args",
        nargs="*",
        help="campaignd subcommand (serve/submit/status/cancel/drain/"
        "shutdown) and its arguments",
    )
    cd.set_defaults(func=cmd_campaignd)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    # `obs` and `campaignd` forward their whole tail (including flags
    # like --trace or --addr that only their own entry points know), so
    # unknown arguments are tolerated for those commands alone.
    args, extra = parser.parse_known_args(argv)
    if extra and args.func not in (cmd_obs, cmd_campaignd):
        parser.error(f"unrecognized arguments: {' '.join(extra)}")
    args.extra_args = extra
    verbosity = -1 if args.quiet else args.verbose
    obs.configure_logging(verbosity)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
