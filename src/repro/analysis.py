"""Post-profiling analysis: turning stall lists into decisions.

The paper's motivation (Section I) is that profiling output should
drive optimization: which code suffers, whether the program is
memory-bound at all, and how much headroom an optimization has.  This
module implements that interpretation layer on top of EMPROF reports:

* :func:`boundedness` - memory-boundedness classification of a run;
* :func:`overlap_factor` - effective memory-level parallelism from
  ground truth (misses per observable stall group);
* :func:`speedup_headroom` - Amdahl bound on the gain from removing a
  fraction of miss stalls;
* :func:`rank_regions` - optimization priority over attributed regions
  (the "optimize batch_process first" conclusion of Table V);
* :func:`compare_reports` - before/after comparison of two profiles of
  the same program.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .attribution.report import RegionReport
from .core.events import ProfileReport
from .sim.trace import GroundTruth

# Memory-boundedness classes, by stall fraction.
COMPUTE_BOUND = "compute-bound"
BALANCED = "balanced"
MEMORY_SENSITIVE = "memory-sensitive"
MEMORY_BOUND = "memory-bound"

_BANDS = (
    (0.05, COMPUTE_BOUND),
    (0.20, BALANCED),
    (0.50, MEMORY_SENSITIVE),
    (1.01, MEMORY_BOUND),
)


@dataclass(frozen=True)
class Boundedness:
    """Memory-boundedness verdict for one run.

    Attributes:
        label: one of the class constants above.
        stall_fraction: miss latency as a fraction of execution time.
        mean_stall_cycles: average detected stall length.
        refresh_share: fraction of stall *time* spent in
            refresh-coincident stalls (a tail-latency indicator).
    """

    label: str
    stall_fraction: float
    mean_stall_cycles: float
    refresh_share: float


def boundedness(report: ProfileReport) -> Boundedness:
    """Classify how memory-bound the profiled execution is."""
    frac = report.stall_fraction
    label = MEMORY_BOUND
    for ceiling, name in _BANDS:
        if frac < ceiling:
            label = name
            break
    refresh_cycles = sum(
        s.duration_cycles for s in report.stalls if s.is_refresh
    )
    total = report.stall_cycles
    return Boundedness(
        label=label,
        stall_fraction=frac,
        mean_stall_cycles=report.mean_latency_cycles,
        refresh_share=refresh_cycles / total if total else 0.0,
    )


def overlap_factor(truth: GroundTruth) -> float:
    """Effective MLP: LLC misses per observable stall group.

    1.0 means every miss stalls alone (no MLP, mcf-style); higher
    values mean the core overlaps misses (the Fig. 3 behaviours) and a
    stall-counting profiler will undercount misses by that factor.
    """
    groups = truth.memory_stall_count()
    if groups == 0:
        return float(truth.miss_count()) if truth.miss_count() else 1.0
    return truth.miss_count() / groups


def speedup_headroom(report: ProfileReport, removable_fraction: float = 1.0) -> float:
    """Amdahl bound: speedup from removing miss-stall time.

    Args:
        report: the profile.
        removable_fraction: fraction of stall time an optimization
            could plausibly eliminate (1.0 = all of it).

    Returns:
        The execution-time speedup factor (>= 1.0).
    """
    if not 0.0 <= removable_fraction <= 1.0:
        raise ValueError("removable fraction must be in [0, 1]")
    saved = report.stall_fraction * removable_fraction
    if saved >= 1.0:
        raise ValueError("profile claims more stall time than execution time")
    return 1.0 / (1.0 - saved)


@dataclass(frozen=True)
class RegionPriority:
    """One region's optimization priority.

    ``score`` is the region's share of whole-program stall time - the
    upper bound (in fractions of total runtime) on what fixing that
    region alone can save.
    """

    region: str
    score: float
    stall_percent: float
    miss_rate_per_mcycle: float


def rank_regions(
    rows: Sequence[RegionReport], total_cycles: float = None
) -> List[RegionPriority]:
    """Order attributed regions by optimization priority.

    Priority is the region's stall time as a share of the whole
    program: a region stalled 50% of its own (tiny) runtime can still
    matter less than a dominant region stalled 10%.
    """
    total = (
        total_cycles
        if total_cycles is not None
        else sum(r.cycles for r in rows)
    )
    if total <= 0:
        raise ValueError("total cycles must be positive")
    ranked = [
        RegionPriority(
            region=r.region,
            score=(r.stall_percent / 100.0) * (r.cycles / total),
            stall_percent=r.stall_percent,
            miss_rate_per_mcycle=r.miss_rate_per_mcycle,
        )
        for r in rows
    ]
    ranked.sort(key=lambda p: -p.score)
    return ranked


@dataclass(frozen=True)
class ProfileDelta:
    """Before/after comparison of two profiles of the same program.

    Attributes:
        miss_delta: change in detected miss count (after - before).
        stall_cycle_delta: change in total stall cycles.
        time_speedup: before.total_cycles / after.total_cycles.
        stall_fraction_before / after: the headline ratios.
    """

    miss_delta: int
    stall_cycle_delta: float
    time_speedup: float
    stall_fraction_before: float
    stall_fraction_after: float

    @property
    def improved(self) -> bool:
        """True when the 'after' run stalls less, absolutely and relatively."""
        return (
            self.stall_cycle_delta < 0
            and self.stall_fraction_after <= self.stall_fraction_before
        )


def compare_reports(before: ProfileReport, after: ProfileReport) -> ProfileDelta:
    """Quantify the effect of an optimization between two profiles."""
    if after.total_cycles <= 0:
        raise ValueError("'after' profile has no execution time")
    return ProfileDelta(
        miss_delta=after.miss_count - before.miss_count,
        stall_cycle_delta=after.stall_cycles - before.stall_cycles,
        time_speedup=before.total_cycles / after.total_cycles,
        stall_fraction_before=before.stall_fraction,
        stall_fraction_after=after.stall_fraction,
    )


def dvfs_runtime_scale(report: ProfileReport, frequency_scale: float) -> float:
    """Predicted runtime change under frequency scaling (leading-load model).

    The paper's stall accounting is exactly the input the DVFS
    performance predictors it cites ([30]-[32]) need: busy time scales
    inversely with clock frequency, while memory-stall time is set by
    DRAM latency in *nanoseconds* and does not scale.  With stall
    fraction ``s`` at the profiled frequency, running at
    ``frequency_scale`` x the clock takes

        T' / T = (1 - s) / frequency_scale + s

    Args:
        report: profile taken at the baseline frequency.
        frequency_scale: new frequency / profiled frequency (> 0).

    Returns:
        Predicted ``T' / T`` (1.0 = unchanged runtime; < 1 = faster).
    """
    if frequency_scale <= 0:
        raise ValueError("frequency scale must be positive")
    s = report.stall_fraction
    return (1.0 - s) / frequency_scale + s


def dvfs_profitability(report: ProfileReport, frequency_scale: float) -> float:
    """Speedup (>1) or slowdown (<1) from scaling the clock.

    A memory-bound program gains little from a higher clock (and loses
    little at a lower one) - the counter-architecture insight of
    Eyerman & Eeckhout the paper cites as [32], computed here from an
    EMPROF profile with zero on-device support.
    """
    return 1.0 / dvfs_runtime_scale(report, frequency_scale)
