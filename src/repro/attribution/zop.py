"""ZOP-style time-domain signal matching (fine-grain attribution).

The paper contrasts two signal-to-code attribution families (Sections
II-A and VI-D): spectral matching (coarse, cheap - what Table V uses)
and ZOP [27], which matches the *time-domain* signal against
per-path template waveforms to reconstruct execution at fine
granularity, "albeit that requires much more computation so it may not
be feasible for long stretches of execution".

:class:`ZopMatcher` implements that idea at block granularity: each
code block contributes a template waveform (recorded in training);
matching walks the signal left to right, testing every template at the
current position (the "multiple hypotheses about which path ... was
taken") and committing to the best-scoring one.  The comparison count
is tracked so benches can demonstrate the cost argument against the
spectral approach.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class ZopSegment:
    """One matched stretch of the signal.

    Attributes:
        block: template (code block) name.
        begin_sample / end_sample: matched span.
        distance: normalized mean-squared distance of the match (0 is
            a perfect template hit).
    """

    block: str
    begin_sample: int
    end_sample: int
    distance: float


@dataclass
class ZopResult:
    """Output of one matching pass.

    Attributes:
        segments: the reconstructed block sequence.
        comparisons: template-sample comparisons performed - the cost
            metric behind the paper's "very high computational cost"
            remark.
        coverage: fraction of the signal attributed to some block.
    """

    segments: List[ZopSegment]
    comparisons: int
    coverage: float

    def sequence(self) -> List[str]:
        """Just the block names, in execution order."""
        return [s.block for s in self.segments]


def _normalize_template(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    std = x.std()
    if std <= 0:
        return x - x.mean()
    return (x - x.mean()) / std


class ZopMatcher:
    """Greedy time-domain path reconstruction from block templates.

    Args:
        max_distance: matches scoring above this normalized distance
            are rejected; the position is skipped as unattributable
            (e.g. a stall not present in any template).
    """

    def __init__(self, max_distance: float = 0.6):
        if max_distance <= 0:
            raise ValueError("max distance must be positive")
        self.max_distance = max_distance
        self._templates: Dict[str, np.ndarray] = {}

    def add_template(self, block: str, waveform: np.ndarray) -> None:
        """Register a block's template waveform (>= 8 samples)."""
        w = np.asarray(waveform, dtype=np.float64)
        if len(w) < 8:
            raise ValueError("templates need at least 8 samples")
        self._templates[block] = _normalize_template(w)

    @property
    def blocks(self) -> Tuple[str, ...]:
        """Registered template names."""
        return tuple(self._templates)

    def _score(self, signal: np.ndarray, pos: int, template: np.ndarray) -> Optional[float]:
        end = pos + len(template)
        if end > len(signal):
            return None
        window = _normalize_template(signal[pos:end])
        return float(np.mean((window - template) ** 2))

    def match(self, signal: np.ndarray, max_segments: int = 100_000) -> ZopResult:
        """Reconstruct the executed block sequence over ``signal``."""
        if not self._templates:
            raise RuntimeError("no templates registered; call add_template()")
        x = np.asarray(signal, dtype=np.float64)
        segments: List[ZopSegment] = []
        comparisons = 0
        covered = 0
        pos = 0
        min_len = min(len(t) for t in self._templates.values())
        while pos + min_len <= len(x) and len(segments) < max_segments:
            best_name = None
            best_dist = np.inf
            best_len = 0
            for name, template in self._templates.items():
                dist = self._score(x, pos, template)
                if dist is None:
                    continue
                comparisons += len(template)
                if dist < best_dist:
                    best_name, best_dist, best_len = name, dist, len(template)
            if best_name is not None and best_dist <= self.max_distance:
                segments.append(
                    ZopSegment(best_name, pos, pos + best_len, best_dist)
                )
                covered += best_len
                pos += best_len
            else:
                pos += 1  # unattributable sample; re-hypothesize next
        coverage = covered / len(x) if len(x) else 0.0
        return ZopResult(segments=segments, comparisons=comparisons, coverage=coverage)


def sequence_accuracy(result: ZopResult, expected: Sequence[str]) -> float:
    """Fraction of the expected block sequence recovered in order.

    Longest-common-subsequence ratio between the matched and expected
    sequences; 1.0 means the whole path was reconstructed.
    """
    got = result.sequence()
    if not expected:
        return 1.0 if not got else 0.0
    # Classic LCS DP (sequences here are short).
    m, n = len(got), len(expected)
    dp = np.zeros((m + 1, n + 1), dtype=np.int64)
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            if got[i - 1] == expected[j - 1]:
                dp[i, j] = dp[i - 1, j - 1] + 1
            else:
                dp[i, j] = max(dp[i - 1, j], dp[i, j - 1])
    return float(dp[m, n]) / n
