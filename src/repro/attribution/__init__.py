"""Spectral-Profiling-style code attribution (Section VI-D, Table V)."""

from .report import RegionReport, attribute_stalls, format_region_table
from .spectral import (
    RegionSegment,
    RegionTimeline,
    SpectralProfiler,
    timeline_accuracy,
)
from .zop import ZopMatcher, ZopResult, ZopSegment, sequence_accuracy

__all__ = [
    "SpectralProfiler",
    "ZopMatcher",
    "ZopResult",
    "ZopSegment",
    "sequence_accuracy",
    "RegionSegment",
    "RegionTimeline",
    "RegionReport",
    "attribute_stalls",
    "format_region_table",
    "timeline_accuracy",
]
