"""Per-region attribution report (Table V).

Joins an EMPROF profile with a region timeline to produce, per code
region: total misses, LLC miss rate per million cycles, memory stall
cycles as a percentage of the region's time, and average miss latency
- the four columns of Table V.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.events import ProfileReport
from .spectral import RegionTimeline


@dataclass(frozen=True)
class RegionReport:
    """Table V row for one code region.

    Attributes:
        region: region (function) name.
        cycles: cycles attributed to the region.
        total_misses: detected LLC-miss stalls inside it.
        miss_rate_per_mcycle: misses per million cycles of the region.
        stall_percent: miss latency as % of the region's time.
        avg_latency_cycles: mean detected stall duration.
    """

    region: str
    cycles: float
    total_misses: int
    miss_rate_per_mcycle: float
    stall_percent: float
    avg_latency_cycles: float


def attribute_stalls(
    report: ProfileReport, timeline: RegionTimeline, clock_hz: float = None
) -> List[RegionReport]:
    """Build the Table V rows from a profile and a region timeline.

    The timeline's sample positions must refer to the same signal the
    profile was computed from (same capture, same sampling rate).
    """
    clock = clock_hz if clock_hz is not None else report.clock_hz
    cycles_per_sample = report.sample_period_cycles

    region_cycles: Dict[str, float] = {}
    for seg in timeline.segments:
        region_cycles[seg.region] = (
            region_cycles.get(seg.region, 0.0) + seg.width * cycles_per_sample
        )

    counts: Dict[str, int] = {r: 0 for r in region_cycles}
    stall_cycles: Dict[str, float] = {r: 0.0 for r in region_cycles}
    for stall in report.stalls:
        mid = 0.5 * (stall.begin_sample + stall.end_sample)
        region = timeline.region_at(mid)
        if region is None:
            continue
        counts[region] = counts.get(region, 0) + 1
        stall_cycles[region] = stall_cycles.get(region, 0.0) + stall.duration_cycles

    rows: List[RegionReport] = []
    for region, cycles in region_cycles.items():
        n = counts.get(region, 0)
        stalled = stall_cycles.get(region, 0.0)
        rows.append(
            RegionReport(
                region=region,
                cycles=cycles,
                total_misses=n,
                miss_rate_per_mcycle=1e6 * n / cycles if cycles else 0.0,
                stall_percent=100.0 * stalled / cycles if cycles else 0.0,
                avg_latency_cycles=stalled / n if n else 0.0,
            )
        )
    rows.sort(key=lambda r: -r.cycles)
    return rows


def format_region_table(rows: List[RegionReport]) -> str:
    """Render rows the way Table V prints them."""
    header = (
        f"{'Region':22s} {'Total Miss':>10s} {'Rate/Mcyc':>10s} "
        f"{'Stall %':>8s} {'Avg Lat':>8s}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.region:22s} {r.total_misses:10d} {r.miss_rate_per_mcycle:10.1f} "
            f"{r.stall_percent:8.2f} {r.avg_latency_cycles:8.1f}"
        )
    return "\n".join(lines)
