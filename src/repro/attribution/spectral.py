"""Spectral-Profiling-style code attribution.

Section VI-D: EMPROF locates stalls in the timeline, but developers
want to know *which code* suffered them.  Spectral Profiling [16]
recognizes loop-granularity code regions by comparing short-time
spectra of the EM signal against spectra recorded during training.
Combining the two on the same signal attributes every detected stall
to a code region (Table V).

The trainer records each region's average STFT spectrum from a
training capture where the region boundaries are known (in a real
deployment: instrumented training runs on a lab device; here: the
simulator's region ground truth).  The classifier then labels each
frame of a test capture with the nearest trained spectrum by cosine
similarity, and smooths the frame labels into contiguous region
segments, like the (manually marked) horizontal bands of Fig. 14.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..emsignal.spectrogram import Spectrogram, compute_spectrogram


@dataclass(frozen=True)
class RegionSegment:
    """One contiguous stretch of the timeline attributed to a region."""

    region: str
    begin_sample: float
    end_sample: float

    @property
    def width(self) -> float:
        """Segment length in signal samples."""
        return self.end_sample - self.begin_sample


@dataclass
class RegionTimeline:
    """Attribution of a whole capture to code regions.

    Attributes:
        segments: contiguous region segments in time order.
        sample_rate_hz: signal sampling rate the sample positions
            refer to.
    """

    segments: List[RegionSegment]
    sample_rate_hz: float

    def region_at(self, sample: float) -> Optional[str]:
        """Region name covering ``sample``, or None outside all."""
        for seg in self.segments:
            if seg.begin_sample <= sample < seg.end_sample:
                return seg.region
        return None

    def samples_per_region(self) -> Dict[str, float]:
        """Total samples attributed to each region."""
        totals: Dict[str, float] = {}
        for seg in self.segments:
            totals[seg.region] = totals.get(seg.region, 0.0) + seg.width
        return totals


def _normalize_spectrum(spectrum: np.ndarray) -> np.ndarray:
    norm = float(np.linalg.norm(spectrum))
    if norm <= 0.0:
        return spectrum
    return spectrum / norm


class SpectralProfiler:
    """Train-then-classify attribution over STFT frames.

    Args:
        window_samples: STFT window; shorter windows give finer
            boundaries but noisier spectra.
        overlap: STFT frame overlap fraction.
        smoothing_frames: median-style majority smoothing width (odd),
            suppressing single-frame misclassifications inside a
            region.
    """

    def __init__(
        self,
        window_samples: int = 256,
        overlap: float = 0.5,
        smoothing_frames: int = 5,
    ):
        if smoothing_frames < 1 or smoothing_frames % 2 == 0:
            raise ValueError("smoothing_frames must be odd and positive")
        self.window_samples = window_samples
        self.overlap = overlap
        self.smoothing_frames = smoothing_frames
        self._templates: Dict[str, np.ndarray] = {}

    # -- training ----------------------------------------------------------

    def train(self, region: str, signal: np.ndarray, rate_hz: float) -> None:
        """Record the average spectrum of one region's training signal."""
        signal = np.asarray(signal, dtype=np.float64)
        if len(signal) < self.window_samples:
            raise ValueError(
                f"training signal for region {region!r} is shorter than one "
                f"STFT window ({self.window_samples} samples)"
            )
        spec = compute_spectrogram(
            signal,
            rate_hz,
            self.window_samples,
            self.overlap,
        )
        if spec.n_frames == 0:
            raise ValueError(
                f"training signal for region {region!r} is shorter than one "
                f"STFT window ({self.window_samples} samples)"
            )
        self._templates[region] = _normalize_spectrum(spec.mean_spectrum())

    def train_many(
        self, regions: Dict[str, np.ndarray], rate_hz: float
    ) -> None:
        """Train several regions at once."""
        for region, signal in regions.items():
            self.train(region, signal, rate_hz)

    @property
    def regions(self) -> Tuple[str, ...]:
        """Names of all trained regions."""
        return tuple(self._templates)

    # -- classification ------------------------------------------------------

    def classify_frames(
        self, signal: np.ndarray, rate_hz: float
    ) -> Tuple[Spectrogram, List[str]]:
        """Label every STFT frame with the best-matching region."""
        if not self._templates:
            raise RuntimeError("no trained regions; call train() first")
        spec = compute_spectrogram(
            np.asarray(signal, dtype=np.float64),
            rate_hz,
            self.window_samples,
            self.overlap,
        )
        names = list(self._templates)
        templates = np.stack([self._templates[n] for n in names])  # (R, F)
        frames = spec.magnitude  # (F, T)
        norms = np.linalg.norm(frames, axis=0)
        norms[norms <= 0.0] = 1.0
        similarity = templates @ (frames / norms)  # (R, T)
        labels = [names[i] for i in np.argmax(similarity, axis=0)]
        return spec, self._smooth(labels)

    def _smooth(self, labels: List[str]) -> List[str]:
        """Majority vote over a sliding window of frames."""
        k = self.smoothing_frames
        if k == 1 or len(labels) <= 2:
            return labels
        half = k // 2
        smoothed = []
        for i in range(len(labels)):
            lo = max(0, i - half)
            hi = min(len(labels), i + half + 1)
            window = labels[lo:hi]
            smoothed.append(max(set(window), key=window.count))
        return smoothed

    def attribute(self, signal: np.ndarray, rate_hz: float) -> RegionTimeline:
        """Segment a capture's timeline into code regions."""
        spec, labels = self.classify_frames(signal, rate_hz)
        segments: List[RegionSegment] = []
        if not labels:
            return RegionTimeline(segments=segments, sample_rate_hz=rate_hz)
        hop = self.window_samples * (1.0 - self.overlap)
        start = 0
        for i in range(1, len(labels) + 1):
            if i == len(labels) or labels[i] != labels[start]:
                begin = start * hop
                end = i * hop + (self.window_samples - hop)
                segments.append(RegionSegment(labels[start], begin, end))
                start = i
        # Make segments contiguous (frame overlap makes them abut).
        for j in range(1, len(segments)):
            boundary = 0.5 * (segments[j - 1].end_sample + segments[j].begin_sample)
            segments[j - 1] = RegionSegment(
                segments[j - 1].region, segments[j - 1].begin_sample, boundary
            )
            segments[j] = RegionSegment(
                segments[j].region, boundary, segments[j].end_sample
            )
        return RegionTimeline(segments=segments, sample_rate_hz=rate_hz)


def timeline_accuracy(
    timeline: RegionTimeline,
    true_segments: Sequence[Tuple[str, float, float]],
) -> float:
    """Fraction of the timeline labelled with the correct region.

    ``true_segments`` is (region, begin_sample, end_sample) ground
    truth; evaluation samples the midpoint of fixed slices.
    """
    if not true_segments:
        raise ValueError("need at least one true segment")
    total = 0.0
    correct = 0.0
    for region, begin, end in true_segments:
        n = max(1, int((end - begin) / 64))
        for k in range(n):
            pos = begin + (k + 0.5) * (end - begin) / n
            total += 1
            if timeline.region_at(pos) == region:
                correct += 1
    return correct / total if total else 0.0
