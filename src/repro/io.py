"""Serialization of captures, profiles and ground truth.

A measurement campaign records captures once and analyzes them many
times; these helpers give the repository a stable on-disk format:

* captures -> ``.npz`` (magnitude array + acquisition metadata),
* profile reports -> ``.json`` (stall list + accounting, plus the
  per-stall ``evidence`` block when the run was flight-recorded),
* ground-truth traces -> ``.npz`` (columnar miss/stall records),
* flight recordings -> ``.flight`` (NDJSON decision-event sidecars,
  see :mod:`repro.obs.flight`).

All formats are versioned with a ``format`` field so future layouts
can be detected rather than mis-parsed.  The current (v2) ``.npz``
layouts additionally carry array-length fields and a CRC-32 content
checksum, so a capture truncated by a dying disk or an interrupted
copy is *detected* (:class:`repro.errors.CorruptCaptureError`, naming
the file) instead of silently profiling garbage; v1 files (no
checksum) are still read.  Every malformed-file failure mode -
not-a-zip, missing keys, undecodable region JSON - raises the same
typed error rather than leaking ``KeyError``/``JSONDecodeError`` from
the internals.
"""

from __future__ import annotations

import json
import zipfile
import zlib
from pathlib import Path
from typing import Union

import numpy as np

from .core.events import DetectedStall, ProfileReport, QualitySummary
from .emsignal.receiver import Capture
from .errors import CorruptCaptureError
from .obs.flight import FlightRecorder, ReportEvidence, read_flight
from .sim.trace import GroundTruth, MissRecord, StallRecord

_CAPTURE_FORMAT = "emprof-capture-v2"
_CAPTURE_FORMAT_V1 = "emprof-capture-v1"
_REPORT_FORMAT = "emprof-report-v1"
_TRUTH_FORMAT = "emprof-truth-v2"
_TRUTH_FORMAT_V1 = "emprof-truth-v1"

PathLike = Union[str, Path]

#: Errors np.load / zipfile / field coercion can raise on a damaged
#: file.  FileNotFoundError is deliberately NOT wrapped: a missing
#: file is a caller mistake, not a corrupt capture.
_READ_ERRORS = (zipfile.BadZipFile, EOFError, OSError, ValueError, KeyError)


def _checksum(*arrays: np.ndarray) -> int:
    """CRC-32 over the raw bytes of ``arrays``, in order."""
    crc = 0
    for arr in arrays:
        crc = zlib.crc32(np.ascontiguousarray(arr).tobytes(), crc)
    return crc


def _decode_region_names(raw: str, path: PathLike) -> dict:
    """Parse a ``{"id": "name"}`` JSON mapping, typed-error wrapped."""
    try:
        decoded = json.loads(raw)
        return {int(k): str(v) for k, v in decoded.items()}
    except (json.JSONDecodeError, ValueError, TypeError, AttributeError) as exc:
        raise CorruptCaptureError(
            f"malformed region_names mapping: {exc}", path=path
        ) from exc


# -- captures -----------------------------------------------------------------


def save_capture(path: PathLike, capture: Capture) -> None:
    """Write a capture to ``path`` (.npz, format v2 with checksum)."""
    magnitude = np.asarray(capture.magnitude, dtype=np.float64)
    np.savez_compressed(
        path,
        format=_CAPTURE_FORMAT,
        magnitude=magnitude,
        n_samples=len(magnitude),
        checksum=_checksum(magnitude),
        sample_rate_hz=capture.sample_rate_hz,
        clock_hz=capture.clock_hz,
        bandwidth_hz=capture.bandwidth_hz,
        region_names=json.dumps(
            {str(k): v for k, v in capture.region_names.items()}
        ),
    )


def load_capture(path: PathLike) -> Capture:
    """Read a capture written by :func:`save_capture` (v1 or v2).

    Raises:
        CorruptCaptureError: wrong format, missing fields, malformed
            region JSON, truncated array, or checksum mismatch.
        FileNotFoundError: the path does not exist.
    """
    try:
        with np.load(path, allow_pickle=False) as data:
            if "format" not in data:
                raise CorruptCaptureError(
                    "no 'format' field; not an EMPROF capture file", path=path
                )
            fmt = str(data["format"])
            if fmt not in (_CAPTURE_FORMAT, _CAPTURE_FORMAT_V1):
                raise CorruptCaptureError(
                    f"not an EMPROF capture file (format={fmt!r})", path=path
                )
            try:
                magnitude = np.asarray(data["magnitude"], dtype=np.float64)
                sample_rate_hz = float(data["sample_rate_hz"])
                clock_hz = float(data["clock_hz"])
                bandwidth_hz = float(data["bandwidth_hz"])
                regions_raw = str(data["region_names"])
            except KeyError as exc:
                raise CorruptCaptureError(
                    f"capture file is missing field {exc}", path=path
                ) from exc
            regions = _decode_region_names(regions_raw, path)
            if fmt == _CAPTURE_FORMAT:
                _verify_lengths_and_checksum(
                    path,
                    expected_n=int(data["n_samples"]),
                    actual_n=len(magnitude),
                    expected_crc=int(data["checksum"]),
                    arrays=(magnitude,),
                    what="capture",
                )
            return Capture(
                magnitude=magnitude,
                sample_rate_hz=sample_rate_hz,
                clock_hz=clock_hz,
                bandwidth_hz=bandwidth_hz,
                region_names=regions,
            )
    except (CorruptCaptureError, FileNotFoundError):
        raise
    except _READ_ERRORS as exc:
        raise CorruptCaptureError(
            f"unreadable capture file: {exc}", path=path
        ) from exc


def _verify_lengths_and_checksum(
    path: PathLike,
    expected_n: int,
    actual_n: int,
    expected_crc: int,
    arrays,
    what: str,
) -> None:
    """Raise :class:`CorruptCaptureError` on truncation or bit rot."""
    if expected_n != actual_n:
        raise CorruptCaptureError(
            f"truncated {what}: header promises {expected_n} records, "
            f"file holds {actual_n}",
            path=path,
        )
    actual_crc = _checksum(*arrays)
    if actual_crc != expected_crc:
        raise CorruptCaptureError(
            f"{what} checksum mismatch: stored {expected_crc:#010x}, "
            f"computed {actual_crc:#010x} (bit rot or partial write)",
            path=path,
        )


# -- profile reports ------------------------------------------------------------


def report_to_dict(report: ProfileReport) -> dict:
    """JSON-ready representation of a profile report."""
    payload = {
        "format": _REPORT_FORMAT,
        "clock_hz": report.clock_hz,
        "sample_period_cycles": report.sample_period_cycles,
        "total_cycles": report.total_cycles,
        "region_names": {str(k): v for k, v in report.region_names.items()},
        "stalls": [
            {
                "begin_sample": s.begin_sample,
                "end_sample": s.end_sample,
                "begin_cycle": s.begin_cycle,
                "end_cycle": s.end_cycle,
                "min_level": s.min_level,
                "is_refresh": s.is_refresh,
                "region": s.region,
                "low_confidence": s.low_confidence,
            }
            for s in report.stalls
        ],
    }
    if report.quality is not None:
        q = report.quality
        payload["quality"] = {
            "gap_count": q.gap_count,
            "dropped_samples": q.dropped_samples,
            "clipped_samples": q.clipped_samples,
            "burst_samples": q.burst_samples,
            "gain_steps": q.gain_steps,
            "impaired_sample_spans": q.impaired_sample_spans,
            "impaired_samples": q.impaired_samples,
        }
    if report.evidence is not None:
        # Only present on flight-recorded runs, so reports profiled
        # without a recorder serialize byte-identically to before.
        payload["evidence"] = report.evidence.to_dict()
    return payload


def report_from_dict(payload: dict) -> ProfileReport:
    """Inverse of :func:`report_to_dict`."""
    fmt = payload.get("format")
    if fmt != _REPORT_FORMAT:
        raise ValueError(f"not an EMPROF report payload (format={fmt!r})")
    stalls = [
        DetectedStall(
            begin_sample=s["begin_sample"],
            end_sample=s["end_sample"],
            begin_cycle=s["begin_cycle"],
            end_cycle=s["end_cycle"],
            min_level=s["min_level"],
            is_refresh=s["is_refresh"],
            region=s.get("region"),
            low_confidence=s.get("low_confidence", False),
        )
        for s in payload["stalls"]
    ]
    quality = None
    if payload.get("quality"):
        quality = QualitySummary(**payload["quality"])
    evidence = None
    if payload.get("evidence"):
        evidence = ReportEvidence.from_dict(payload["evidence"])
    return ProfileReport(
        stalls=stalls,
        total_cycles=payload["total_cycles"],
        clock_hz=payload["clock_hz"],
        sample_period_cycles=payload["sample_period_cycles"],
        region_names={int(k): v for k, v in payload.get("region_names", {}).items()},
        quality=quality,
        evidence=evidence,
    )


def save_report(path: PathLike, report: ProfileReport) -> None:
    """Write a profile report to ``path`` (.json)."""
    Path(path).write_text(json.dumps(report_to_dict(report), indent=2))


def load_report(path: PathLike) -> ProfileReport:
    """Read a report written by :func:`save_report`."""
    return report_from_dict(json.loads(Path(path).read_text()))


# -- flight sidecars ----------------------------------------------------------


def save_flight(path: PathLike, recorder: FlightRecorder, **meta) -> int:
    """Spill a flight recorder's events to ``path`` (NDJSON sidecar).

    ``meta`` key/values land in the sidecar header (capture path,
    campaign run name, ...).  Returns the number of events written.
    """
    return recorder.spill(path, meta=meta or None)


def load_flight(path: PathLike):
    """Read a ``.flight`` sidecar written by :func:`save_flight`.

    Returns ``(header, events)`` where ``events`` is a list of
    :class:`repro.obs.flight.FlightEvent`.

    Raises:
        CorruptCaptureError: empty file, foreign/malformed header, or
            a malformed event line.
        FileNotFoundError: the path does not exist.
    """
    try:
        return read_flight(path)
    except FileNotFoundError:
        raise
    except _READ_ERRORS as exc:
        raise CorruptCaptureError(
            f"unreadable flight sidecar: {exc}", path=path
        ) from exc


# -- ground truth ------------------------------------------------------------------


def save_ground_truth(path: PathLike, truth: GroundTruth) -> None:
    """Write a ground-truth trace to ``path`` (.npz, columnar, v2)."""
    misses = truth.misses
    stalls = truth.stalls
    miss_addr = np.array([m.addr for m in misses], dtype=np.int64)
    miss_detect = np.array([m.detect_cycle for m in misses], dtype=np.int64)
    stall_begin = np.array([s.begin_cycle for s in stalls], dtype=np.int64)
    stall_end = np.array([s.end_cycle for s in stalls], dtype=np.int64)
    np.savez_compressed(
        path,
        format=_TRUTH_FORMAT,
        total_cycles=truth.total_cycles,
        total_instructions=truth.total_instructions,
        n_misses=len(misses),
        n_stalls=len(stalls),
        checksum=_checksum(miss_addr, miss_detect, stall_begin, stall_end),
        region_names=json.dumps({str(k): v for k, v in truth.region_names.items()}),
        region_cycles=json.dumps({str(k): v for k, v in truth.region_cycles.items()}),
        miss_kind=np.array([m.kind for m in misses], dtype="U8"),
        miss_addr=miss_addr,
        miss_detect=miss_detect,
        miss_ready=np.array([m.ready_cycle for m in misses], dtype=np.int64),
        miss_stall=np.array(
            [-1 if m.stall_id is None else m.stall_id for m in misses], dtype=np.int64
        ),
        miss_refresh=np.array([m.refresh_blocked for m in misses], dtype=bool),
        miss_region=np.array([m.region for m in misses], dtype=np.int64),
        stall_begin=stall_begin,
        stall_end=stall_end,
        stall_cause=np.array([s.cause for s in stalls], dtype="U16"),
        stall_refresh=np.array([s.refresh for s in stalls], dtype=bool),
        stall_region=np.array([s.region for s in stalls], dtype=np.int64),
        stall_misses=json.dumps([s.miss_ids for s in stalls]),
    )


def load_ground_truth(path: PathLike) -> GroundTruth:
    """Read a trace written by :func:`save_ground_truth` (v1 or v2).

    Raises:
        CorruptCaptureError: wrong format, missing/truncated columns,
            malformed JSON fields, or checksum mismatch.
        FileNotFoundError: the path does not exist.
    """
    try:
        with np.load(path, allow_pickle=False) as data:
            if "format" not in data:
                raise CorruptCaptureError(
                    "no 'format' field; not an EMPROF ground-truth file",
                    path=path,
                )
            fmt = str(data["format"])
            if fmt not in (_TRUTH_FORMAT, _TRUTH_FORMAT_V1):
                raise CorruptCaptureError(
                    f"not an EMPROF ground-truth file (format={fmt!r})",
                    path=path,
                )
            try:
                return _decode_ground_truth(data, fmt, path)
            except KeyError as exc:
                raise CorruptCaptureError(
                    f"ground-truth file is missing field {exc}", path=path
                ) from exc
    except (CorruptCaptureError, FileNotFoundError):
        raise
    except _READ_ERRORS as exc:
        raise CorruptCaptureError(
            f"unreadable ground-truth file: {exc}", path=path
        ) from exc


def _decode_ground_truth(data, fmt: str, path: PathLike) -> GroundTruth:
    """Decode the columnar arrays of one ground-truth npz."""
    n_miss = len(data["miss_addr"])
    n_stall = len(data["stall_begin"])
    if fmt == _TRUTH_FORMAT:
        _verify_lengths_and_checksum(
            path,
            expected_n=int(data["n_misses"]),
            actual_n=n_miss,
            expected_crc=int(data["checksum"]),
            arrays=(
                np.asarray(data["miss_addr"], dtype=np.int64),
                np.asarray(data["miss_detect"], dtype=np.int64),
                np.asarray(data["stall_begin"], dtype=np.int64),
                np.asarray(data["stall_end"], dtype=np.int64),
            ),
            what="ground truth",
        )
        if int(data["n_stalls"]) != n_stall:
            raise CorruptCaptureError(
                f"truncated ground truth: header promises "
                f"{int(data['n_stalls'])} stalls, file holds {n_stall}",
                path=path,
            )
    misses = [
        MissRecord(
            miss_id=i,
            kind=str(data["miss_kind"][i]),
            addr=int(data["miss_addr"][i]),
            detect_cycle=int(data["miss_detect"][i]),
            ready_cycle=int(data["miss_ready"][i]),
            stall_id=(
                None
                if int(data["miss_stall"][i]) < 0
                else int(data["miss_stall"][i])
            ),
            refresh_blocked=bool(data["miss_refresh"][i]),
            region=int(data["miss_region"][i]),
        )
        for i in range(n_miss)
    ]
    try:
        miss_lists = json.loads(str(data["stall_misses"]))
    except json.JSONDecodeError as exc:
        raise CorruptCaptureError(
            f"malformed stall_misses JSON: {exc}", path=path
        ) from exc
    stalls = [
        StallRecord(
            stall_id=i,
            begin_cycle=int(data["stall_begin"][i]),
            end_cycle=int(data["stall_end"][i]),
            cause=str(data["stall_cause"][i]),
            miss_ids=list(miss_lists[i]),
            refresh=bool(data["stall_refresh"][i]),
            region=int(data["stall_region"][i]),
        )
        for i in range(n_stall)
    ]
    try:
        region_names = {
            int(k): v for k, v in json.loads(str(data["region_names"])).items()
        }
        region_cycles = {
            int(k): int(v)
            for k, v in json.loads(str(data["region_cycles"])).items()
        }
    except (json.JSONDecodeError, ValueError, AttributeError) as exc:
        raise CorruptCaptureError(
            f"malformed region mapping JSON: {exc}", path=path
        ) from exc
    return GroundTruth(
        misses=misses,
        stalls=stalls,
        total_cycles=int(data["total_cycles"]),
        total_instructions=int(data["total_instructions"]),
        region_names=region_names,
        region_cycles=region_cycles,
    )
