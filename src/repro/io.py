"""Serialization of captures, profiles and ground truth.

A measurement campaign records captures once and analyzes them many
times; these helpers give the repository a stable on-disk format:

* captures -> ``.npz`` (magnitude array + acquisition metadata),
* profile reports -> ``.json`` (stall list + accounting),
* ground-truth traces -> ``.npz`` (columnar miss/stall records).

All formats are versioned with a ``format`` field so future layouts
can be detected rather than mis-parsed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from .core.events import DetectedStall, ProfileReport
from .emsignal.receiver import Capture
from .sim.trace import GroundTruth, MissRecord, StallRecord

_CAPTURE_FORMAT = "emprof-capture-v1"
_REPORT_FORMAT = "emprof-report-v1"
_TRUTH_FORMAT = "emprof-truth-v1"

PathLike = Union[str, Path]


# -- captures -----------------------------------------------------------------


def save_capture(path: PathLike, capture: Capture) -> None:
    """Write a capture to ``path`` (.npz)."""
    np.savez_compressed(
        path,
        format=_CAPTURE_FORMAT,
        magnitude=np.asarray(capture.magnitude, dtype=np.float64),
        sample_rate_hz=capture.sample_rate_hz,
        clock_hz=capture.clock_hz,
        bandwidth_hz=capture.bandwidth_hz,
        region_names=json.dumps(
            {str(k): v for k, v in capture.region_names.items()}
        ),
    )


def load_capture(path: PathLike) -> Capture:
    """Read a capture written by :func:`save_capture`."""
    with np.load(path, allow_pickle=False) as data:
        fmt = str(data["format"])
        if fmt != _CAPTURE_FORMAT:
            raise ValueError(f"not an EMPROF capture file (format={fmt!r})")
        regions = {
            int(k): v for k, v in json.loads(str(data["region_names"])).items()
        }
        return Capture(
            magnitude=np.asarray(data["magnitude"], dtype=np.float64),
            sample_rate_hz=float(data["sample_rate_hz"]),
            clock_hz=float(data["clock_hz"]),
            bandwidth_hz=float(data["bandwidth_hz"]),
            region_names=regions,
        )


# -- profile reports ------------------------------------------------------------


def report_to_dict(report: ProfileReport) -> dict:
    """JSON-ready representation of a profile report."""
    return {
        "format": _REPORT_FORMAT,
        "clock_hz": report.clock_hz,
        "sample_period_cycles": report.sample_period_cycles,
        "total_cycles": report.total_cycles,
        "region_names": {str(k): v for k, v in report.region_names.items()},
        "stalls": [
            {
                "begin_sample": s.begin_sample,
                "end_sample": s.end_sample,
                "begin_cycle": s.begin_cycle,
                "end_cycle": s.end_cycle,
                "min_level": s.min_level,
                "is_refresh": s.is_refresh,
                "region": s.region,
            }
            for s in report.stalls
        ],
    }


def report_from_dict(payload: dict) -> ProfileReport:
    """Inverse of :func:`report_to_dict`."""
    fmt = payload.get("format")
    if fmt != _REPORT_FORMAT:
        raise ValueError(f"not an EMPROF report payload (format={fmt!r})")
    stalls = [
        DetectedStall(
            begin_sample=s["begin_sample"],
            end_sample=s["end_sample"],
            begin_cycle=s["begin_cycle"],
            end_cycle=s["end_cycle"],
            min_level=s["min_level"],
            is_refresh=s["is_refresh"],
            region=s.get("region"),
        )
        for s in payload["stalls"]
    ]
    return ProfileReport(
        stalls=stalls,
        total_cycles=payload["total_cycles"],
        clock_hz=payload["clock_hz"],
        sample_period_cycles=payload["sample_period_cycles"],
        region_names={int(k): v for k, v in payload.get("region_names", {}).items()},
    )


def save_report(path: PathLike, report: ProfileReport) -> None:
    """Write a profile report to ``path`` (.json)."""
    Path(path).write_text(json.dumps(report_to_dict(report), indent=2))


def load_report(path: PathLike) -> ProfileReport:
    """Read a report written by :func:`save_report`."""
    return report_from_dict(json.loads(Path(path).read_text()))


# -- ground truth ------------------------------------------------------------------


def save_ground_truth(path: PathLike, truth: GroundTruth) -> None:
    """Write a ground-truth trace to ``path`` (.npz, columnar)."""
    misses = truth.misses
    stalls = truth.stalls
    np.savez_compressed(
        path,
        format=_TRUTH_FORMAT,
        total_cycles=truth.total_cycles,
        total_instructions=truth.total_instructions,
        region_names=json.dumps({str(k): v for k, v in truth.region_names.items()}),
        region_cycles=json.dumps({str(k): v for k, v in truth.region_cycles.items()}),
        miss_kind=np.array([m.kind for m in misses], dtype="U8"),
        miss_addr=np.array([m.addr for m in misses], dtype=np.int64),
        miss_detect=np.array([m.detect_cycle for m in misses], dtype=np.int64),
        miss_ready=np.array([m.ready_cycle for m in misses], dtype=np.int64),
        miss_stall=np.array(
            [-1 if m.stall_id is None else m.stall_id for m in misses], dtype=np.int64
        ),
        miss_refresh=np.array([m.refresh_blocked for m in misses], dtype=bool),
        miss_region=np.array([m.region for m in misses], dtype=np.int64),
        stall_begin=np.array([s.begin_cycle for s in stalls], dtype=np.int64),
        stall_end=np.array([s.end_cycle for s in stalls], dtype=np.int64),
        stall_cause=np.array([s.cause for s in stalls], dtype="U16"),
        stall_refresh=np.array([s.refresh for s in stalls], dtype=bool),
        stall_region=np.array([s.region for s in stalls], dtype=np.int64),
        stall_misses=json.dumps([s.miss_ids for s in stalls]),
    )


def load_ground_truth(path: PathLike) -> GroundTruth:
    """Read a trace written by :func:`save_ground_truth`."""
    with np.load(path, allow_pickle=False) as data:
        fmt = str(data["format"])
        if fmt != _TRUTH_FORMAT:
            raise ValueError(f"not an EMPROF ground-truth file (format={fmt!r})")
        n_miss = len(data["miss_addr"])
        misses = [
            MissRecord(
                miss_id=i,
                kind=str(data["miss_kind"][i]),
                addr=int(data["miss_addr"][i]),
                detect_cycle=int(data["miss_detect"][i]),
                ready_cycle=int(data["miss_ready"][i]),
                stall_id=(
                    None
                    if int(data["miss_stall"][i]) < 0
                    else int(data["miss_stall"][i])
                ),
                refresh_blocked=bool(data["miss_refresh"][i]),
                region=int(data["miss_region"][i]),
            )
            for i in range(n_miss)
        ]
        miss_lists = json.loads(str(data["stall_misses"]))
        stalls = [
            StallRecord(
                stall_id=i,
                begin_cycle=int(data["stall_begin"][i]),
                end_cycle=int(data["stall_end"][i]),
                cause=str(data["stall_cause"][i]),
                miss_ids=list(miss_lists[i]),
                refresh=bool(data["stall_refresh"][i]),
                region=int(data["stall_region"][i]),
            )
            for i in range(len(data["stall_begin"]))
        ]
        return GroundTruth(
            misses=misses,
            stalls=stalls,
            total_cycles=int(data["total_cycles"]),
            total_instructions=int(data["total_instructions"]),
            region_names={
                int(k): v for k, v in json.loads(str(data["region_names"])).items()
            },
            region_cycles={
                int(k): int(v)
                for k, v in json.loads(str(data["region_cycles"])).items()
            },
        )
