"""Synthetic SPEC CPU2000 memory-behaviour models.

The paper evaluates EMPROF on ten SPEC CPU2000 benchmarks (Table III,
Table IV, Figs. 11/12/14).  SPEC binaries and reference inputs cannot
run on the laptop-scale substrate, so each benchmark is modelled as a
sequence of *phases* whose memory behaviour reproduces the published
characterization of that benchmark:

* mcf - pointer chasing over a graph far larger than any LLC: fully
  dependent loads, no MLP, long stalls (the thick tail of Fig. 11);
* bzip2 / gzip - block-oriented compression: repeated passes over a
  block that fits a 1 MB LLC but not a 256 KB one (this is what gives
  the large-LLC Alcatel its much lower counts in Table IV);
* equake - sequential sweeps over a large sparse grid, prefetchable
  (this is where the Samsung's hardware prefetcher pays off);
* crafty / vpr - cache-resident compute with a small leak of cold
  accesses: very low miss density;
* parser - three distinct program regions (read_dictionary,
  init_randtable, batch_process) with very different miss densities,
  the substrate for the Table V / Fig. 14 attribution experiment;
* ammp / twolf / vortex - mixed hot/cold working sets of varying size.

Scale: runs are ~10^5-10^6 instructions (the paper's are billions), so
absolute miss counts are roughly 1/4000 of Table IV's; EXPERIMENTS.md
tracks measured-vs-paper per benchmark.  At this scale compulsory
(first-touch) misses matter, so footprints are sized to give each
benchmark its Table IV *relative* weight.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional

import numpy as np

from ..sim.config import MachineConfig
from ..sim.isa import ALU, BRANCH, Instr, LOAD, MUL, NO_CONSUMER, STORE, instruction_bytes

_IB = instruction_bytes()
KB = 1024
MB = 1024 * KB

# Phase kinds.
COMPUTE = "compute"
STREAM = "stream"
RANDOM = "random"
HOTCOLD = "hotcold"
CHASE = "chase"
CODESWEEP = "codesweep"

_KINDS = frozenset({COMPUTE, STREAM, RANDOM, HOTCOLD, CHASE, CODESWEEP})


@dataclass(frozen=True)
class Phase:
    """One program phase with homogeneous memory behaviour.

    Only the fields relevant to ``kind`` are read:

    * COMPUTE: n_instructions.
    * STREAM: bytes_total, stride, passes, shuffle, work_per_access,
      dep, store_ratio - sequential (or per-block shuffled) sweeps.
    * RANDOM: working_set, accesses, work_per_access, dep, store_ratio.
    * HOTCOLD: hot_bytes, cold_bytes, cold_fraction, accesses,
      work_per_access, dep - random accesses that fall in a small hot
      set except for a cold_fraction that roams a large cold set.
    * CHASE: working_set, accesses, work_per_access - dependent loads.
    * CODESWEEP: footprint, passes - straight-line code larger than
      the L1 I-cache.

    ``work_per_access`` doubles as the region's signal texture: it
    sets the loop period, hence the spectral line attribution sees.
    """

    region: str
    kind: str
    n_instructions: int = 0
    bytes_total: int = 0
    stride: int = 64
    passes: int = 1
    shuffle: bool = False
    working_set: int = 0
    hot_bytes: int = 0
    cold_bytes: int = 0
    cold_fraction: float = 0.0
    accesses: int = 0
    work_per_access: int = 10
    dep: int = 2
    store_ratio: float = 0.0
    footprint: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown phase kind {self.kind!r}")
        if not 0.0 <= self.cold_fraction <= 1.0:
            raise ValueError("cold_fraction must be in [0, 1]")
        if not 0.0 <= self.store_ratio <= 1.0:
            raise ValueError("store_ratio must be in [0, 1]")


class SpecWorkload:
    """A benchmark model: named phases over disjoint address spaces."""

    def __init__(self, name: str, phases: List[Phase], seed: int = 11):
        if not phases:
            raise ValueError("a workload needs at least one phase")
        self.name = name
        self.phases = list(phases)
        self.seed = seed
        # One region id per distinct region name, in first-use order.
        self.region_names: Dict[int, str] = {}
        self._region_ids: Dict[str, int] = {}
        for phase in self.phases:
            if phase.region not in self._region_ids:
                rid = len(self._region_ids) + 1
                self._region_ids[phase.region] = rid
                self.region_names[rid] = phase.region

    def region_id(self, region: str) -> int:
        """Region id assigned to ``region`` (raises for unknown names)."""
        return self._region_ids[region]

    def instructions(self, config: MachineConfig) -> Iterator[Instr]:
        """Yield the full phase sequence."""
        rng = np.random.default_rng(self.seed)
        data_base = 0x2000_0000
        pc_base = 0x0001_0000
        for phase in self.phases:
            rid = self._region_ids[phase.region]
            pc = pc_base
            pc_base += max(64 * KB, phase.footprint + 64 * KB)
            yield from self._emit(phase, rid, data_base, pc, rng, config)
            data_base += self._phase_span(phase) + MB

    @staticmethod
    def _phase_span(phase: Phase) -> int:
        """Bytes of address space a phase occupies."""
        return max(
            phase.bytes_total,
            phase.working_set,
            phase.hot_bytes + phase.cold_bytes,
            64 * KB,
        )

    def _emit(
        self,
        phase: Phase,
        rid: int,
        base: int,
        pc: int,
        rng: np.random.Generator,
        config: MachineConfig,
    ) -> Iterator[Instr]:
        line = config.line_bytes
        if phase.kind == COMPUTE:
            yield from _compute(pc, phase.n_instructions, rid)
        elif phase.kind == STREAM:
            yield from _stream(phase, rid, base, pc, rng)
        elif phase.kind == RANDOM:
            yield from _random(phase, rid, base, pc, rng, line)
        elif phase.kind == HOTCOLD:
            yield from _hotcold(phase, rid, base, pc, rng, line)
        elif phase.kind == CHASE:
            yield from _chase(phase, rid, base, pc, rng, line)
        elif phase.kind == CODESWEEP:
            yield from _codesweep(phase, rid, pc)


def _compute(pc: int, count: int, rid: int) -> Iterator[Instr]:
    for k in range(count):
        if k % 6 == 5:
            yield Instr(MUL, pc + (k % 128) * _IB, 0, NO_CONSUMER, 0.20, rid)
        else:
            yield Instr(ALU, pc + (k % 128) * _IB, 0, NO_CONSUMER, 0.12, rid)


def _access_loop_body(
    pc: int, wpa: int, rid: int
) -> List[Instr]:
    """Cached loop body (work instructions) reused for every access.

    PCs wrap every 128 instructions: the work is an inner loop over a
    512-byte code footprint, so it stays I-cache resident instead of
    sweeping ``wpa * 4`` bytes of cold code on every phase start.
    """
    body = []
    for j in range(wpa):
        if j % 5 == 4:
            body.append(Instr(MUL, pc + (j % 128) * _IB, 0, NO_CONSUMER, 0.20, rid))
        else:
            body.append(Instr(ALU, pc + (j % 128) * _IB, 0, NO_CONSUMER, 0.12, rid))
    return body


def _emit_accesses(
    addrs: np.ndarray,
    stores: Optional[np.ndarray],
    pc: int,
    wpa: int,
    dep: int,
    rid: int,
) -> Iterator[Instr]:
    """Common loop: work body + one memory access + loop branch."""
    body = _access_loop_body(pc, wpa, rid)
    # The access and loop branch sit just past the (wrapped) body
    # footprint, keeping the whole loop inside ~520 bytes of code.
    mem_pc = pc + 128 * _IB
    br_pc = pc + 129 * _IB
    branch = Instr(BRANCH, br_pc, 0, NO_CONSUMER, 0.10, rid)
    for k in range(len(addrs)):
        yield from body
        addr = int(addrs[k])
        if stores is not None and stores[k]:
            yield Instr(STORE, mem_pc, addr, NO_CONSUMER, 0.15, rid)
        else:
            yield Instr(LOAD, mem_pc, addr, dep, 0.16, rid)
        yield branch


def _stream(
    phase: Phase, rid: int, base: int, pc: int, rng: np.random.Generator
) -> Iterator[Instr]:
    n = max(1, phase.bytes_total // max(phase.stride, 1))
    offsets = np.arange(n, dtype=np.int64) * phase.stride
    if phase.shuffle:
        # Shuffled once: reuse across passes is preserved but the
        # access order defeats stride prefetching.
        offsets = rng.permutation(offsets)
    addrs = np.tile(base + offsets, max(1, phase.passes))
    stores = (
        rng.random(len(addrs)) < phase.store_ratio if phase.store_ratio else None
    )
    yield from _emit_accesses(addrs, stores, pc, phase.work_per_access, phase.dep, rid)


def _random(
    phase: Phase, rid: int, base: int, pc: int, rng: np.random.Generator, line: int
) -> Iterator[Instr]:
    n_lines = max(1, phase.working_set // line)
    addrs = base + rng.integers(0, n_lines, size=phase.accesses) * line
    stores = (
        rng.random(phase.accesses) < phase.store_ratio if phase.store_ratio else None
    )
    yield from _emit_accesses(addrs, stores, pc, phase.work_per_access, phase.dep, rid)


def _hotcold(
    phase: Phase, rid: int, base: int, pc: int, rng: np.random.Generator, line: int
) -> Iterator[Instr]:
    hot_lines = max(1, phase.hot_bytes // line)
    cold_lines = max(1, phase.cold_bytes // line)
    cold_base = base + hot_lines * line
    is_cold = rng.random(phase.accesses) < phase.cold_fraction
    hot = base + rng.integers(0, hot_lines, size=phase.accesses) * line
    cold = cold_base + rng.integers(0, cold_lines, size=phase.accesses) * line
    addrs = np.where(is_cold, cold, hot)
    stores = (
        rng.random(phase.accesses) < phase.store_ratio if phase.store_ratio else None
    )
    yield from _emit_accesses(addrs, stores, pc, phase.work_per_access, phase.dep, rid)


def _chase(
    phase: Phase, rid: int, base: int, pc: int, rng: np.random.Generator, line: int
) -> Iterator[Instr]:
    n_lines = max(2, phase.working_set // line)
    order = rng.permutation(n_lines)
    wpa = phase.work_per_access
    body = _access_loop_body(pc + _IB, wpa, rid)
    branch = Instr(BRANCH, pc + (1 + wpa) * _IB, 0, NO_CONSUMER, 0.10, rid)
    for k in range(phase.accesses):
        addr = base + int(order[k % n_lines]) * line
        # dep=0: the pointer is needed immediately - no MLP.
        yield Instr(LOAD, pc, addr, 0, 0.16, rid)
        yield from body
        yield branch


def _codesweep(phase: Phase, rid: int, pc: int) -> Iterator[Instr]:
    count = max(1, phase.footprint // _IB)
    for _ in range(max(1, phase.passes)):
        for k in range(count):
            yield Instr(ALU, pc + k * _IB, 0, NO_CONSUMER, 0.12, rid)


# --------------------------------------------------------------------------
# Benchmark profiles.
#
# Footprints/pass counts encode each benchmark's Table IV signature:
# repeated passes over 256KB-1MB blocks separate the 1 MB-LLC Alcatel
# from the 256 KB devices; sequential strides mark the phases the
# Samsung prefetcher can cover; shuffled/chasing phases defeat it.
# --------------------------------------------------------------------------


def _ammp() -> List[Phase]:
    # Molecular dynamics: the nonbonded-force loop re-sweeps a ~480 KB
    # neighbour structure every timestep - heavy reuse, scattered order.
    return [
        Phase("setup", COMPUTE, n_instructions=90_000),
        Phase(
            "mm_fv_update_nonbon",
            STREAM,
            bytes_total=480 * KB,
            stride=8192,
            passes=5,
            shuffle=True,  # neighbour-list order defeats prefetching
            work_per_access=300,
            dep=4,
        ),
        Phase("tether", COMPUTE, n_instructions=150_000),
    ]


def _bzip2() -> List[Phase]:
    # Block compression: repeated passes over a ~400 KB block that fits
    # a 1 MB LLC but not a 256 KB one; the sort pass is sequential
    # (prefetchable), the MTF pass scattered.
    return [
        Phase("input", COMPUTE, n_instructions=60_000),
        Phase(
            "sortIt",
            STREAM,
            bytes_total=400 * KB,
            stride=1024,
            passes=3,
            shuffle=False,  # sequential: the Samsung prefetcher covers it
            work_per_access=330,
            dep=3,
            store_ratio=0.08,
        ),
        Phase(
            "generateMTFValues",
            STREAM,
            bytes_total=416 * KB,
            stride=1024,
            passes=2,
            shuffle=True,  # BWT output order is scattered
            work_per_access=300,
            dep=2,
        ),
    ]


def _crafty() -> List[Phase]:
    # Chess search: hash/eval tables mostly cache-resident, with a
    # modest transposition-table leak past the small LLCs.
    return [
        Phase("evaluate", RANDOM, working_set=8 * KB, accesses=1_200,
              work_per_access=260, dep=5),
        Phase(
            "search",
            STREAM,
            bytes_total=480 * KB,
            stride=4096,
            passes=2,
            shuffle=True,
            work_per_access=340,
            dep=5,
        ),
        Phase("repetition_check", COMPUTE, n_instructions=180_000),
    ]


def _equake() -> List[Phase]:
    # Sparse-matrix earthquake simulation: sequential sweeps over a
    # ~370 KB partition per timestep - highly prefetchable.
    return [
        Phase("mesh_init", COMPUTE, n_instructions=50_000),
        Phase(
            "smvp",
            STREAM,
            bytes_total=368 * KB,
            stride=1024,
            passes=3,
            shuffle=False,
            work_per_access=300,
            dep=2,
            store_ratio=0.06,
        ),
        Phase(
            "time_integration",
            STREAM,
            bytes_total=352 * KB,
            stride=1024,
            passes=2,
            shuffle=False,
            work_per_access=260,
            dep=2,
        ),
    ]


def _gzip() -> List[Phase]:
    # LZ77 over a 32 KB window: little capacity pressure; misses come
    # from marching the input/output buffers forward.
    return [
        Phase(
            "deflate",
            STREAM,
            bytes_total=416 * KB,
            stride=2048,
            passes=2,
            shuffle=False,
            work_per_access=400,
            dep=3,
            store_ratio=0.05,
        ),
        Phase("longest_match", RANDOM, working_set=8 * KB, accesses=1_500,
              work_per_access=260, dep=4),
        Phase("fill_window", COMPUTE, n_instructions=250_000),
    ]


def _mcf() -> List[Phase]:
    # Network simplex: pointer chasing over a node/arc graph far
    # larger than any LLC - fully dependent loads, no MLP.
    return [
        Phase(
            "refresh_potential",
            CHASE,
            working_set=2 * MB,
            accesses=330,
            work_per_access=160,
        ),
        Phase(
            "price_out_impl",
            STREAM,
            bytes_total=512 * KB,
            stride=4096,
            passes=2,
            shuffle=True,
            work_per_access=220,
            dep=1,
        ),
        Phase("primal_bea_mpp", COMPUTE, n_instructions=220_000),
    ]


def _parser() -> List[Phase]:
    # The Table V / Fig. 14 benchmark: three regions with very
    # different miss densities.
    return [
        Phase(
            "read_dictionary",
            STREAM,
            bytes_total=600 * KB,
            stride=2048,
            passes=1,
            shuffle=False,
            work_per_access=760,
            dep=3,
        ),
        Phase(
            "init_randtable",
            RANDOM,
            working_set=4 * KB,
            accesses=900,
            work_per_access=200,
            dep=2,
            store_ratio=0.5,
        ),
        Phase(
            "batch_process",
            STREAM,
            bytes_total=512 * KB,
            stride=2048,
            passes=4,
            shuffle=True,
            work_per_access=110,
            dep=2,
        ),
    ]


def _twolf() -> List[Phase]:
    # Standard-cell placement: scattered re-walks of a ~400 KB netlist.
    return [
        Phase(
            "new_dbox",
            STREAM,
            bytes_total=400 * KB,
            stride=4096,
            passes=3,
            shuffle=True,
            work_per_access=320,
            dep=4,
        ),
        Phase("ucxx2", COMPUTE, n_instructions=350_000),
    ]


def _vortex() -> List[Phase]:
    # OO database: object-tree walks with moderate reuse.
    return [
        Phase(
            "Tree_Lookup",
            STREAM,
            bytes_total=448 * KB,
            stride=2048,
            passes=2,
            shuffle=True,
            work_per_access=300,
            dep=3,
            store_ratio=0.06,
        ),
        Phase("Mem_GetWord", RANDOM, working_set=8 * KB, accesses=1_300,
              work_per_access=260, dep=3),
        Phase("OaGetObject", COMPUTE, n_instructions=200_000),
    ]


def _vpr() -> List[Phase]:
    # FPGA place-and-route: small resident routing structures; the
    # lowest miss density of the suite.
    return [
        Phase("place", COMPUTE, n_instructions=350_000),
        Phase(
            "route",
            STREAM,
            bytes_total=384 * KB,
            stride=8192,
            passes=2,
            shuffle=True,
            work_per_access=380,
            dep=5,
        ),
        Phase("check_route", RANDOM, working_set=8 * KB, accesses=1_300,
              work_per_access=280, dep=5),
    ]


_PROFILES = {
    "ammp": _ammp,
    "bzip2": _bzip2,
    "crafty": _crafty,
    "equake": _equake,
    "gzip": _gzip,
    "mcf": _mcf,
    "parser": _parser,
    "twolf": _twolf,
    "vortex": _vortex,
    "vpr": _vpr,
}

SPEC_BENCHMARKS = tuple(sorted(_PROFILES))


def spec_workload(name: str, seed: int = 11, scale: float = 1.0) -> SpecWorkload:
    """Build the model of one SPEC CPU2000 benchmark.

    Args:
        name: one of :data:`SPEC_BENCHMARKS`.
        seed: randomization seed (address choices).
        scale: shrinks/extends run length: compute and access counts
            scale directly and STREAM pass counts scale (min 1).  Note
            that scales well below 1 collapse the reuse structure that
            drives the cross-device capacity contrasts - run the
            Table IV experiments at scale 1.0.
    """
    try:
        profile = _PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown SPEC benchmark {name!r}; expected one of {SPEC_BENCHMARKS}"
        ) from None
    if scale <= 0:
        raise ValueError("scale must be positive")
    phases = profile()
    # scale=1.0 is an exact "unscaled" sentinel, not a measured value.
    if scale != 1.0:  # emlint: disable=float-equality
        phases = [
            replace(
                p,
                n_instructions=int(p.n_instructions * scale),
                accesses=int(p.accesses * scale),
                passes=(
                    max(1, int(round(p.passes * scale)))
                    if p.kind == STREAM
                    else p.passes
                ),
            )
            for p in phases
        ]
    return SpecWorkload(name=name, phases=phases, seed=seed)


def all_spec_workloads(seed: int = 11, scale: float = 1.0) -> List[SpecWorkload]:
    """All ten benchmark models, in alphabetical order."""
    return [spec_workload(name, seed=seed, scale=scale) for name in SPEC_BENCHMARKS]
