"""Workloads that run on the simulated machine.

* :class:`Microbenchmark` - the TM/CM validation microbenchmark (Fig. 6)
* :mod:`repro.workloads.spec` - synthetic SPEC CPU2000 behaviour models
* :mod:`repro.workloads.boot` - device boot sequence (Fig. 13)
* :mod:`repro.workloads.base` - the Workload protocol + stream builders
"""

from .base import (
    StreamWorkload,
    Workload,
    code_sweep,
    compute_block,
    pointer_chase_loop,
    random_access_loop,
    streaming_loop,
    tight_loop,
)
from .boot import BootWorkload
from .microbenchmark import Microbenchmark
from .synthetic import RandomWorkload
from .spec import (
    Phase,
    SPEC_BENCHMARKS,
    SpecWorkload,
    all_spec_workloads,
    spec_workload,
)

__all__ = [
    "BootWorkload",
    "Phase",
    "SPEC_BENCHMARKS",
    "SpecWorkload",
    "RandomWorkload",
    "all_spec_workloads",
    "spec_workload",
    "Workload",
    "StreamWorkload",
    "Microbenchmark",
    "tight_loop",
    "compute_block",
    "streaming_loop",
    "random_access_loop",
    "pointer_chase_loop",
    "code_sweep",
]
