"""Boot-sequence workload (Fig. 13).

"One of the most promising aspects of EMPROF is its ability to profile
hard-to-profile runs, such as the boot sequence of the device"
(Section VI-C).  No OS profiling support exists during boot, and even
hardware counters are uninitialized; EMPROF works because the EM
signal exists from the first fetch.

The model strings together the characteristic stages of an embedded
Linux boot on an A13-class board, each with its own miss intensity:

1. ``rom_stub`` - mask-ROM loader: tiny code, cold caches, bursty
   I-fetch misses;
2. ``bootloader`` - u-boot: DRAM init + sequential image copy (heavy
   streaming misses);
3. ``kernel_decompress`` - tight decompression loop sweeping a large
   image (sustained high miss rate);
4. ``kernel_init`` - driver probing: alternating compute and cold
   structure walks (spiky);
5. ``userspace_init`` - init + services: declining miss rate as the
   working set warms.

Run-to-run variation (the two distinct runs of Fig. 13) comes from the
seed: phase lengths jitter by a few percent and all address
randomization changes, like real boots differ in device-probe timing.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

import numpy as np

from ..sim.config import MachineConfig
from ..sim.isa import Instr
from .spec import (
    CHASE,
    CODESWEEP,
    COMPUTE,
    HOTCOLD,
    KB,
    MB,
    Phase,
    STREAM,
    SpecWorkload,
)


class BootWorkload:
    """One simulated boot of the IoT device.

    Args:
        seed: run identity; two different seeds are "two distinct
            runs" in the Fig. 13 sense.
        scale: multiplies phase lengths (1.0 is the bench default).
    """

    def __init__(self, seed: int = 0, scale: float = 1.0):
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.seed = seed
        self.scale = scale
        self.name = f"boot_run{seed}"
        self._inner = SpecWorkload(
            name=self.name, phases=self._phases(), seed=seed + 1000
        )
        self.region_names: Dict[int, str] = self._inner.region_names

    def _phases(self) -> List[Phase]:
        rng = np.random.default_rng(self.seed)

        def jitter(n: int) -> int:
            """+-8% run-to-run variation in phase length."""
            return max(1, int(n * self.scale * rng.uniform(0.92, 1.08)))

        return [
            Phase("rom_stub", CODESWEEP, footprint=24 * KB, passes=1),
            Phase(
                "bootloader",
                STREAM,
                bytes_total=jitter(320 * KB),
                stride=128,
                passes=1,
                work_per_access=6,
                dep=2,
                store_ratio=0.4,
            ),
            Phase(
                "kernel_decompress",
                STREAM,
                bytes_total=jitter(512 * KB),
                stride=128,
                passes=1,
                work_per_access=10,
                dep=2,
                store_ratio=0.5,
            ),
            Phase(
                "kernel_init",
                HOTCOLD,
                hot_bytes=128 * KB,
                cold_bytes=jitter(1 * MB),
                cold_fraction=0.25,
                accesses=jitter(4_000),
                work_per_access=14,
                dep=3,
            ),
            Phase(
                "driver_probe",
                CHASE,
                working_set=jitter(768 * KB),
                accesses=jitter(600),
                work_per_access=8,
            ),
            Phase(
                "userspace_init",
                HOTCOLD,
                hot_bytes=16 * KB,
                cold_bytes=jitter(384 * KB),
                cold_fraction=0.015,
                accesses=jitter(5_000),
                work_per_access=30,
                dep=4,
            ),
            Phase("idle_services", COMPUTE, n_instructions=jitter(1_200_000)),
        ]

    def instructions(self, config: MachineConfig) -> Iterator[Instr]:
        """Yield the boot instruction stream."""
        return self._inner.instructions(config)
