"""Workload protocol and reusable instruction-stream builders.

A workload is any object that can emit a dynamic instruction stream for
a given machine configuration.  The builders here are the vocabulary
all concrete workloads (microbenchmark, SPEC models, boot sequence) are
written in: tight marker loops, strided streams, random-access loops,
and pointer chases, each with controllable memory behaviour and a
distinctive activity texture for spectral attribution.
"""

from __future__ import annotations

from typing import Dict, Iterator, Protocol, runtime_checkable

import numpy as np

from ..sim.config import MachineConfig
from ..sim.isa import (
    ALU,
    BRANCH,
    DEFAULT_WEIGHTS,
    Instr,
    LOAD,
    MUL,
    NO_CONSUMER,
    STORE,
    instruction_bytes,
)

_IB = instruction_bytes()


@runtime_checkable
class Workload(Protocol):
    """Anything the simulator can execute.

    Attributes:
        name: short identifier used in reports.
        region_names: mapping from region ids used in the stream to
            human-readable names (function/loop labels).
    """

    name: str
    region_names: Dict[int, str]

    def instructions(self, config: MachineConfig) -> Iterator[Instr]:
        """Yield the dynamic instruction stream for ``config``."""
        ...  # pragma: no cover - protocol


def tight_loop(
    pc: int,
    iterations: int,
    body_alu: int = 3,
    region: int = 0,
    weight: float = DEFAULT_WEIGHTS[ALU],
) -> Iterator[Instr]:
    """A marker loop: ``body_alu`` ALU ops + a backward branch.

    The PCs repeat every iteration, so after the first pass the loop
    runs entirely from the L1 I-cache with no memory traffic - the
    "very stable signal pattern that can be easily recognized" the
    microbenchmark uses to delimit its measurement window (Sec. V-B).
    """
    if iterations < 0 or body_alu < 0:
        raise ValueError("iterations and body size cannot be negative")
    body = [
        Instr(ALU, pc + k * _IB, 0, NO_CONSUMER, weight, region)
        for k in range(body_alu)
    ]
    body.append(Instr(BRANCH, pc + body_alu * _IB, 0, NO_CONSUMER, 0.10, region))
    for _ in range(iterations):
        yield from body


def compute_block(
    pc: int,
    count: int,
    region: int = 0,
    mul_every: int = 5,
    pattern_period: int = 0,
    pattern_depth: float = 0.0,
) -> Iterator[Instr]:
    """Straight-line compute: ALU ops with MULs sprinkled in.

    ``pattern_period``/``pattern_depth`` superimpose a periodic weight
    modulation, giving the block a spectral line at
    ``issue_rate / pattern_period`` that attribution can key on.
    """
    if count < 0:
        raise ValueError("count cannot be negative")
    base_alu = DEFAULT_WEIGHTS[ALU]
    for k in range(count):
        # 1 KB code footprint: the block is an I-cache-resident loop,
        # not a straight-line sweep through cold code.
        addr_pc = pc + (k % 256) * _IB
        if mul_every and k % mul_every == mul_every - 1:
            op, w = MUL, DEFAULT_WEIGHTS[MUL]
        else:
            op, w = ALU, base_alu
        if pattern_period:
            w += pattern_depth * np.sin(2 * np.pi * (k % pattern_period) / pattern_period)
            w = max(0.02, float(w))
        yield Instr(op, addr_pc, 0, NO_CONSUMER, w, region)


def streaming_loop(
    pc: int,
    base_addr: int,
    bytes_total: int,
    stride: int = 64,
    work_per_access: int = 8,
    region: int = 0,
    dep: int = 2,
    store_ratio: float = 0.0,
    rng: np.random.Generator = None,
) -> Iterator[Instr]:
    """Sequential sweep over ``bytes_total`` with ``stride`` spacing.

    Models scan/compress phases (gzip/bzip2-like): every access hits a
    new line in order, which a stride prefetcher can cover.
    """
    if stride <= 0:
        raise ValueError("stride must be positive")
    if bytes_total < 0:
        raise ValueError("bytes_total cannot be negative")
    rng = rng if rng is not None else np.random.default_rng(0)
    n_accesses = bytes_total // stride
    loop_pc = pc
    for k in range(n_accesses):
        addr = base_addr + k * stride
        for j in range(work_per_access):
            yield Instr(ALU, loop_pc + j * _IB, 0, NO_CONSUMER, 0.12, region)
        if store_ratio > 0.0 and rng.random() < store_ratio:
            yield Instr(STORE, loop_pc + work_per_access * _IB, addr, NO_CONSUMER, 0.15, region)
        else:
            yield Instr(LOAD, loop_pc + work_per_access * _IB, addr, dep, 0.16, region)
        yield Instr(BRANCH, loop_pc + (work_per_access + 1) * _IB, 0, NO_CONSUMER, 0.10, region)


def random_access_loop(
    pc: int,
    base_addr: int,
    working_set_bytes: int,
    accesses: int,
    rng: np.random.Generator,
    work_per_access: int = 10,
    region: int = 0,
    dep: int = 2,
    line_bytes: int = 64,
    store_ratio: float = 0.0,
) -> Iterator[Instr]:
    """Uniform random line accesses over a working set.

    When the working set exceeds the LLC this produces a steady LLC
    miss stream immune to stride prefetching; when it fits, it warms up
    and then hits.  The random address sequence is generated up front
    (one vectorized draw) to keep the per-instruction path cheap.
    """
    if accesses < 0:
        raise ValueError("accesses cannot be negative")
    if working_set_bytes < line_bytes:
        raise ValueError("working set smaller than one cache line")
    n_lines = working_set_bytes // line_bytes
    lines = rng.integers(0, n_lines, size=accesses)
    is_store = (
        rng.random(accesses) < store_ratio
        if store_ratio > 0.0
        else np.zeros(accesses, dtype=bool)
    )
    loop_pc = pc
    for k in range(accesses):
        addr = base_addr + int(lines[k]) * line_bytes
        for j in range(work_per_access):
            yield Instr(ALU, loop_pc + j * _IB, 0, NO_CONSUMER, 0.12, region)
        if is_store[k]:
            yield Instr(STORE, loop_pc + work_per_access * _IB, addr, NO_CONSUMER, 0.15, region)
        else:
            yield Instr(LOAD, loop_pc + work_per_access * _IB, addr, dep, 0.16, region)
        yield Instr(BRANCH, loop_pc + (work_per_access + 1) * _IB, 0, NO_CONSUMER, 0.10, region)


def pointer_chase_loop(
    pc: int,
    base_addr: int,
    working_set_bytes: int,
    accesses: int,
    rng: np.random.Generator,
    work_per_access: int = 4,
    region: int = 0,
    line_bytes: int = 64,
) -> Iterator[Instr]:
    """Dependent-load chain over a random permutation (mcf-like).

    Every load's address comes from the previous load (dep=0), so no
    memory-level parallelism is possible: each LLC miss exposes its
    full latency as a stall.  This is the workload shape that gives
    mcf its long stall tail (Fig. 11).
    """
    if accesses < 0:
        raise ValueError("accesses cannot be negative")
    n_lines = max(2, working_set_bytes // line_bytes)
    order = rng.permutation(n_lines)
    loop_pc = pc
    for k in range(accesses):
        addr = base_addr + int(order[k % n_lines]) * line_bytes
        # dep=0: the very next instruction consumes the pointer.
        yield Instr(LOAD, loop_pc, addr, 0, 0.16, region)
        for j in range(work_per_access):
            yield Instr(ALU, loop_pc + (1 + j) * _IB, 0, NO_CONSUMER, 0.12, region)
        yield Instr(BRANCH, loop_pc + (1 + work_per_access) * _IB, 0, NO_CONSUMER, 0.10, region)


def code_sweep(
    pc: int,
    footprint_bytes: int,
    passes: int = 1,
    region: int = 0,
) -> Iterator[Instr]:
    """Straight-line execution across a large code footprint.

    Sweeping more code than the L1 I-cache holds produces
    instruction-fetch misses - the I-side stall source of Fig. 3b.
    """
    if footprint_bytes < _IB:
        raise ValueError("footprint must hold at least one instruction")
    count = footprint_bytes // _IB
    for _ in range(max(1, passes)):
        for k in range(count):
            yield Instr(ALU, pc + k * _IB, 0, NO_CONSUMER, 0.12, region)


class StreamWorkload:
    """Adapter turning a prebuilt iterable factory into a Workload.

    ``factory`` is called with the machine config and must return an
    iterator of instructions; used by tests and ad-hoc experiments.
    """

    def __init__(self, name: str, factory, region_names: Dict[int, str] = None):
        self.name = name
        self._factory = factory
        self.region_names = dict(region_names or {})

    def instructions(self, config: MachineConfig) -> Iterator[Instr]:
        """Delegate to the wrapped factory."""
        return self._factory(config)
