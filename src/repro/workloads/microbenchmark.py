"""The validation microbenchmark of Fig. 6.

Generates a known pattern of memory references leading to exactly *TM*
LLC misses arriving in groups of *CM*, with recognizable tight-loop
markers before and after the miss-generating section:

1. touch every page once (avoids page-fault noise in the real system;
   here it simply warms unrelated lines),
2. run a tight blank loop (the start marker),
3. perform TM cache-block-aligned loads at randomized page/line
   positions - each to a never-before-seen line, so each is an LLC
   miss by construction - inserting a micro function call after every
   CM misses,
4. run another blank loop (the end marker).

The randomization "defeats any stride-based pre-fetching that may be
present in the processor" (Section V-B): consecutive target lines are
drawn from a shuffled permutation, so no two consecutive misses have a
repeatable stride.
"""

from __future__ import annotations

from typing import Dict, Iterator

import numpy as np

from ..sim.config import MachineConfig
from ..sim.isa import ALU, BRANCH, Instr, LOAD, MUL, NO_CONSUMER, instruction_bytes
from .base import compute_block, tight_loop

_IB = instruction_bytes()

# Region ids (exported so experiments can slice ground truth by them).
REGION_PAGE_TOUCH = 1
REGION_BLANK_START = 2
REGION_ACCESSES = 3
REGION_BLANK_END = 4

REGION_NAMES: Dict[int, str] = {
    0: "startup",
    REGION_PAGE_TOUCH: "page_touch",
    REGION_BLANK_START: "blank_loop_start",
    REGION_ACCESSES: "memory_accesses",
    REGION_BLANK_END: "blank_loop_end",
}

# Disjoint PC areas so the marker loops, the access loop and the micro
# function each have their own I-cache footprint.
_PC_PAGE_TOUCH = 0x1000
_PC_BLANK_A = 0x2000
_PC_ACCESS = 0x3000
_PC_MICRO_FN = 0x4000
_PC_BLANK_B = 0x5000

_PAGE_SIZE = 4096
_ARRAY_BASE = 0x1000_0000


class Microbenchmark:
    """TM/CM microbenchmark with a-priori-known LLC miss count.

    Args:
        total_misses: TM - number of LLC misses the access section
            produces (each access targets a distinct, cold line).
        consecutive_misses: CM - group size; a micro function call is
            inserted after every CM accesses.
        gap_instructions: address-generation work between consecutive
            loads inside a group (the paper's ``rand()`` + address
            arithmetic); sets how separable the per-miss dips are.
        micro_fn_instructions: length of the micro function separating
            groups.
        blank_iterations: iterations of each marker loop.
        seed: randomization seed for page/line selection.
    """

    def __init__(
        self,
        total_misses: int = 1024,
        consecutive_misses: int = 10,
        gap_instructions: int = 120,
        micro_fn_instructions: int = 600,
        blank_iterations: int = 20_000,
        seed: int = 7,
    ):
        if total_misses <= 0:
            raise ValueError("total_misses must be positive")
        if consecutive_misses <= 0:
            raise ValueError("consecutive_misses must be positive")
        if consecutive_misses > total_misses:
            raise ValueError("consecutive_misses cannot exceed total_misses")
        if gap_instructions < 0 or micro_fn_instructions < 0:
            raise ValueError("instruction counts cannot be negative")
        self.total_misses = total_misses
        self.consecutive_misses = consecutive_misses
        self.gap_instructions = gap_instructions
        self.micro_fn_instructions = micro_fn_instructions
        self.blank_iterations = blank_iterations
        self.seed = seed
        self.name = f"micro_tm{total_misses}_cm{consecutive_misses}"
        self.region_names = dict(REGION_NAMES)

    def _target_addresses(self, line_bytes: int) -> np.ndarray:
        """Distinct cold line addresses: one per expected miss.

        Each target occupies its own page at a random non-zero line
        offset, so it cannot collide with the page-touch loads (which
        hit line 0 of each page), and the shuffled page order breaks
        any stride.
        """
        rng = np.random.default_rng(self.seed)
        lines_per_page = _PAGE_SIZE // line_bytes
        pages = rng.permutation(self.total_misses)
        line_offsets = rng.integers(1, lines_per_page, size=self.total_misses)
        return _ARRAY_BASE + pages * _PAGE_SIZE + line_offsets * line_bytes

    def instructions(self, config: MachineConfig) -> Iterator[Instr]:
        """Yield the full microbenchmark instruction stream."""
        line_bytes = config.line_bytes
        targets = self._target_addresses(line_bytes)
        gap = self.gap_instructions

        # 1. Page touch: load line 0 of every page, sequentially.
        for p in range(self.total_misses):
            addr = _ARRAY_BASE + p * _PAGE_SIZE
            yield Instr(ALU, _PC_PAGE_TOUCH, 0, NO_CONSUMER, 0.12, REGION_PAGE_TOUCH)
            yield Instr(
                LOAD, _PC_PAGE_TOUCH + _IB, addr, NO_CONSUMER, 0.16, REGION_PAGE_TOUCH
            )
            yield Instr(
                BRANCH, _PC_PAGE_TOUCH + 2 * _IB, 0, NO_CONSUMER, 0.10, REGION_PAGE_TOUCH
            )

        # 2. Start marker.
        yield from tight_loop(
            _PC_BLANK_A, self.blank_iterations, body_alu=3, region=REGION_BLANK_START
        )

        # 3. Access section: TM loads in groups of CM.
        for k in range(self.total_misses):
            # Address generation: the rand()+mul+add work between
            # loads.  MULs every few ops keep the busy level high so
            # the inter-miss gap is visible in the signal.
            # PCs wrap every 128 instructions: the address-generation
            # work is a small loop (rand() + arithmetic), not a cold
            # straight-line code sweep.
            for j in range(gap):
                op = MUL if j % 6 == 5 else ALU
                w = 0.20 if op == MUL else 0.12
                yield Instr(
                    op, _PC_ACCESS + (j % 128) * _IB, 0, NO_CONSUMER, w, REGION_ACCESSES
                )
            # The engineered miss; its value feeds a checksum two
            # instructions later (dep=2).
            yield Instr(
                LOAD,
                _PC_ACCESS + gap * _IB,
                int(targets[k]),
                2,
                0.16,
                REGION_ACCESSES,
            )
            yield Instr(
                ALU, _PC_ACCESS + (gap + 1) * _IB, 0, NO_CONSUMER, 0.12, REGION_ACCESSES
            )
            yield Instr(
                ALU, _PC_ACCESS + (gap + 2) * _IB, 0, NO_CONSUMER, 0.12, REGION_ACCESSES
            )
            yield Instr(
                BRANCH, _PC_ACCESS + (gap + 3) * _IB, 0, NO_CONSUMER, 0.10, REGION_ACCESSES
            )
            # Micro function call after every CM misses.
            if (k + 1) % self.consecutive_misses == 0:
                yield from compute_block(
                    _PC_MICRO_FN,
                    self.micro_fn_instructions,
                    region=REGION_ACCESSES,
                    mul_every=7,
                )

        # 4. End marker.
        yield from tight_loop(
            _PC_BLANK_B, self.blank_iterations, body_alu=3, region=REGION_BLANK_END
        )

    def expected_misses(self) -> int:
        """A-priori miss count of the access section (= TM)."""
        return self.total_misses

    def expected_groups(self) -> int:
        """Number of CM-groups the access section produces."""
        return -(-self.total_misses // self.consecutive_misses)
