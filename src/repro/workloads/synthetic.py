"""Randomized workload generation for end-to-end robustness testing.

The calibrated workloads in this package have known shapes; a
measurement tool also has to hold up on programs nobody designed.
:class:`RandomWorkload` draws a program from a parameterized space -
random phase count, access patterns, working sets, miss densities,
dependency distances - so the fuzz tests in
``tests/test_end_to_end_fuzz.py`` can assert EMPROF's accuracy
envelope over *arbitrary* programs, not just the tuned ones.

The draw is fully determined by the seed, so any fuzz failure is
replayable by constructing ``RandomWorkload(seed=...)``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

import numpy as np

from ..sim.config import MachineConfig
from ..sim.isa import Instr
from .spec import CHASE, COMPUTE, KB, MB, Phase, RANDOM, STREAM, SpecWorkload


class RandomWorkload:
    """A randomly drawn multi-phase program.

    Args:
        seed: fully determines the program.
        max_phases: upper bound on phase count (at least 2 are drawn).
        size: overall scale knob; roughly multiplies instruction and
            access counts (keep at 1.0 for ~10^5-instruction programs).

    The sampled space deliberately spans the regimes the detector must
    survive: dense and sparse misses, streams a prefetcher could eat,
    pointer chases, tiny resident sets, and long pure-compute
    stretches.
    """

    def __init__(self, seed: int = 0, max_phases: int = 5, size: float = 1.0):
        if max_phases < 2:
            raise ValueError("need room for at least two phases")
        if size <= 0:
            raise ValueError("size must be positive")
        self.seed = seed
        self.size = size
        rng = np.random.default_rng(seed)
        self.name = f"fuzz_{seed}"
        self._inner = SpecWorkload(
            name=self.name,
            phases=self._draw_phases(rng, max_phases),
            seed=int(rng.integers(0, 2**31)),
        )
        self.region_names: Dict[int, str] = self._inner.region_names

    def _draw_phases(self, rng: np.random.Generator, max_phases: int) -> List[Phase]:
        n_phases = int(rng.integers(2, max_phases + 1))
        phases: List[Phase] = []
        for k in range(n_phases):
            kind = rng.choice([COMPUTE, STREAM, RANDOM, CHASE], p=[0.25, 0.35, 0.25, 0.15])
            region = f"phase{k}_{kind}"
            if kind == COMPUTE:
                phases.append(
                    Phase(region, COMPUTE,
                          n_instructions=int(self.size * rng.integers(20_000, 120_000)))
                )
            elif kind == STREAM:
                phases.append(
                    Phase(
                        region,
                        STREAM,
                        bytes_total=int(rng.integers(64, 768)) * KB,
                        stride=int(2 ** rng.integers(7, 13)),
                        passes=int(rng.integers(1, 4)),
                        shuffle=bool(rng.random() < 0.5),
                        work_per_access=int(rng.integers(120, 500)),
                        dep=int(rng.integers(1, 8)),
                        store_ratio=float(rng.random() * 0.15),
                    )
                )
            elif kind == RANDOM:
                phases.append(
                    Phase(
                        region,
                        RANDOM,
                        working_set=int(rng.integers(4, 64)) * KB,
                        accesses=int(self.size * rng.integers(400, 2_500)),
                        work_per_access=int(rng.integers(120, 400)),
                        dep=int(rng.integers(1, 8)),
                    )
                )
            else:  # CHASE
                phases.append(
                    Phase(
                        region,
                        CHASE,
                        working_set=int(rng.integers(1, 4)) * MB,
                        accesses=int(self.size * rng.integers(80, 400)),
                        work_per_access=int(rng.integers(40, 200)),
                    )
                )
        return phases

    @property
    def phases(self) -> List[Phase]:
        """The drawn phases (replayable program description)."""
        return self._inner.phases

    def instructions(self, config: MachineConfig) -> Iterator[Instr]:
        """Yield the drawn program's stream."""
        return self._inner.instructions(config)
