"""Event and report types produced by the EMPROF profiler."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

import numpy as np

from ..devtools.contracts import check_report


@dataclass(frozen=True)
class DetectedStall:
    """One LLC-miss-induced stall found in the side-channel signal.

    Sample positions are fractional: run boundaries are refined by
    linear interpolation of the threshold crossing, so durations are
    not quantized to whole sample periods.

    Attributes:
        begin_sample / end_sample: half-open interval in the analyzed
            signal (fractional samples).
        begin_cycle / end_cycle: the same interval in processor cycles.
        min_level: deepest normalized level inside the dip.
        is_refresh: True when classified as a refresh-coincident stall
            (Fig. 5): the stall is long enough to include a DRAM
            refresh window.
        region: code-region id once attribution has run, else None.
        low_confidence: True when the stall overlaps a region of the
            capture flagged as impaired (sample gap, ADC saturation,
            AGC gain step, interference burst).  Such stalls may be
            fabricated by the impairment rather than by a real LLC
            miss and should be excluded from precision-sensitive
            accounting; see ``docs/robustness.md``.
    """

    begin_sample: float
    end_sample: float
    begin_cycle: float
    end_cycle: float
    min_level: float
    is_refresh: bool = False
    region: Optional[int] = None
    low_confidence: bool = False

    @property
    def duration_cycles(self) -> float:
        """Stall length in processor cycles."""
        return self.end_cycle - self.begin_cycle

    @property
    def duration_samples(self) -> float:
        """Stall length in signal samples."""
        return self.end_sample - self.begin_sample

    def with_region(self, region: int) -> "DetectedStall":
        """Copy of this stall attributed to ``region``."""
        return replace(self, region=region)

    def flagged(self, low_confidence: bool = True) -> "DetectedStall":
        """Copy of this stall with its confidence flag set."""
        if low_confidence == self.low_confidence:
            return self
        return replace(self, low_confidence=low_confidence)

    def shifted(self, sample_offset: float, cycle_offset: float) -> "DetectedStall":
        """Copy translated by ``sample_offset`` samples / ``cycle_offset`` cycles.

        Used to map stalls detected inside a signal window back to
        whole-signal coordinates.  Field-addressed (via
        :func:`dataclasses.replace`) so that adding a field to the
        dataclass can never silently scramble the remaining arguments,
        which a positional ``type(s)(...)`` rebuild would.
        """
        return replace(
            self,
            begin_sample=self.begin_sample + sample_offset,
            end_sample=self.end_sample + sample_offset,
            begin_cycle=self.begin_cycle + cycle_offset,
            end_cycle=self.end_cycle + cycle_offset,
        )


@dataclass(frozen=True)
class QualitySummary:
    """Signal-quality accounting attached to a :class:`ProfileReport`.

    Populated by the hardened streaming pipeline
    (:class:`repro.core.streaming.StreamingEmprof`); ``None`` on a
    report means no quality monitoring ran, not that the capture was
    pristine.

    Attributes:
        gap_count: discontinuities seen (driver-reported drops plus
            non-finite sample runs).
        dropped_samples: total samples lost across all gaps.
        clipped_samples: samples at/above the saturation level.
        burst_samples: samples attributed to interference bursts.
        gain_steps: abrupt sustained level changes (AGC steps).
        impaired_sample_spans: number of distinct impaired intervals.
        impaired_samples: total samples inside impaired intervals.
    """

    gap_count: int = 0
    dropped_samples: int = 0
    clipped_samples: int = 0
    burst_samples: int = 0
    gain_steps: int = 0
    impaired_sample_spans: int = 0
    impaired_samples: int = 0

    @property
    def any_impairment(self) -> bool:
        """Whether any quality issue was observed at all."""
        return self.impaired_sample_spans > 0 or self.gap_count > 0


@dataclass
class ProfileReport:
    """EMPROF's output for one profiled execution.

    The report follows the paper's accounting: each detected stall is
    one MISS (one LLC miss or a group of highly-overlapped misses,
    Section II-B), and its duration is that MISS's latency.
    """

    stalls: List[DetectedStall]
    total_cycles: float
    clock_hz: float
    sample_period_cycles: float
    region_names: Dict[int, str] = field(default_factory=dict)
    quality: Optional[QualitySummary] = None
    #: Per-stall provenance (:class:`repro.obs.flight.ReportEvidence`)
    #: when the run was profiled with a flight recorder attached;
    #: ``None`` means no recording ran, not that evidence was empty.
    #: Typed loosely so the core event types stay importable without
    #: the obs layer.
    evidence: Optional[object] = None

    def stall_evidence(self, index: int):
        """Evidence record for ``stalls[index]``.

        Raises ``ValueError`` when the report was profiled without a
        flight recorder (``evidence is None``).
        """
        if self.evidence is None:
            raise ValueError(
                "report has no evidence; profile with a FlightRecorder "
                "(e.g. Emprof.profile(flight=...)) to collect it"
            )
        return self.evidence.for_stall(index)

    @property
    def miss_count(self) -> int:
        """Number of detected LLC-miss-induced stalls."""
        return len(self.stalls)

    @property
    def low_confidence_count(self) -> int:
        """Detected stalls overlapping impaired signal regions."""
        return sum(1 for s in self.stalls if s.low_confidence)

    @property
    def confident_miss_count(self) -> int:
        """Detected stalls *not* flagged low-confidence."""
        return len(self.stalls) - self.low_confidence_count

    def confident_stalls(self) -> List[DetectedStall]:
        """The stalls that do not overlap any impaired region."""
        return [s for s in self.stalls if not s.low_confidence]

    @property
    def refresh_count(self) -> int:
        """Detected stalls classified as refresh-coincident."""
        return sum(1 for s in self.stalls if s.is_refresh)

    @property
    def stall_cycles(self) -> float:
        """Total stalled cycles across all detected misses."""
        return float(sum(s.duration_cycles for s in self.stalls))

    @property
    def stall_fraction(self) -> float:
        """Miss latency as a fraction of total execution time."""
        if self.total_cycles <= 0:
            return 0.0
        return self.stall_cycles / self.total_cycles

    @property
    def mean_latency_cycles(self) -> float:
        """Average detected stall duration, in cycles."""
        if not self.stalls:
            return 0.0
        return self.stall_cycles / len(self.stalls)

    def latencies_cycles(self) -> np.ndarray:
        """Detected stall durations in cycles, in time order."""
        return np.array([s.duration_cycles for s in self.stalls], dtype=np.float64)

    def stalls_between(self, begin_cycle: float, end_cycle: float) -> List[DetectedStall]:
        """Stalls whose midpoint falls inside [begin_cycle, end_cycle)."""
        out = []
        for s in self.stalls:
            mid = 0.5 * (s.begin_cycle + s.end_cycle)
            if begin_cycle <= mid < end_cycle:
                out.append(s)
        return out

    def miss_rate_timeline(self, bin_cycles: float):
        """(bin_start_cycles, counts): detected misses per time bin.

        The Fig. 13 boot-profile series is this timeline on a boot
        capture.
        """
        if bin_cycles <= 0:
            raise ValueError("bin width must be positive")
        nbins = max(1, int(np.ceil(self.total_cycles / bin_cycles)))
        counts = np.zeros(nbins, dtype=np.int64)
        for s in self.stalls:
            idx = min(int(s.begin_cycle // bin_cycles), nbins - 1)
            counts[idx] += 1
        return np.arange(nbins) * bin_cycles, counts

    def validate(self) -> "ProfileReport":
        """Assert the report's event invariants; returns the report.

        Checks every stall is well-formed (``begin <= end`` in samples
        and cycles, finite fields) and that stalls are in
        non-decreasing time order.  Raises
        :class:`repro.devtools.contracts.ContractViolation` otherwise.
        """
        return check_report(self, where="ProfileReport")

    def summary(self) -> str:
        """Human-readable one-paragraph summary."""
        total_s = self.total_cycles / self.clock_hz
        lines = [
            f"EMPROF profile: {self.miss_count} LLC-miss stalls over "
            f"{total_s * 1e3:.3f} ms ({self.total_cycles:.0f} cycles)",
            f"  miss latency: {self.stall_cycles:.0f} cycles "
            f"({100.0 * self.stall_fraction:.2f}% of execution time)",
            f"  mean stall: {self.mean_latency_cycles:.1f} cycles",
            f"  refresh-coincident stalls: {self.refresh_count}",
        ]
        if self.low_confidence_count or (
            self.quality is not None and self.quality.any_impairment
        ):
            lines.append(
                f"  low-confidence stalls: {self.low_confidence_count} "
                f"(overlap impaired signal; see report.quality)"
            )
        if self.quality is not None and self.quality.any_impairment:
            q = self.quality
            lines.append(
                f"  signal quality: {q.gap_count} gaps "
                f"({q.dropped_samples} samples dropped), "
                f"{q.clipped_samples} clipped, {q.burst_samples} burst, "
                f"{q.gain_steps} gain steps"
            )
        return "\n".join(lines)
