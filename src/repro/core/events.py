"""Event and report types produced by the EMPROF profiler."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

import numpy as np

from ..devtools.contracts import check_report


@dataclass(frozen=True)
class DetectedStall:
    """One LLC-miss-induced stall found in the side-channel signal.

    Sample positions are fractional: run boundaries are refined by
    linear interpolation of the threshold crossing, so durations are
    not quantized to whole sample periods.

    Attributes:
        begin_sample / end_sample: half-open interval in the analyzed
            signal (fractional samples).
        begin_cycle / end_cycle: the same interval in processor cycles.
        min_level: deepest normalized level inside the dip.
        is_refresh: True when classified as a refresh-coincident stall
            (Fig. 5): the stall is long enough to include a DRAM
            refresh window.
        region: code-region id once attribution has run, else None.
    """

    begin_sample: float
    end_sample: float
    begin_cycle: float
    end_cycle: float
    min_level: float
    is_refresh: bool = False
    region: Optional[int] = None

    @property
    def duration_cycles(self) -> float:
        """Stall length in processor cycles."""
        return self.end_cycle - self.begin_cycle

    @property
    def duration_samples(self) -> float:
        """Stall length in signal samples."""
        return self.end_sample - self.begin_sample

    def with_region(self, region: int) -> "DetectedStall":
        """Copy of this stall attributed to ``region``."""
        return replace(self, region=region)

    def shifted(self, sample_offset: float, cycle_offset: float) -> "DetectedStall":
        """Copy translated by ``sample_offset`` samples / ``cycle_offset`` cycles.

        Used to map stalls detected inside a signal window back to
        whole-signal coordinates.  Field-addressed (via
        :func:`dataclasses.replace`) so that adding a field to the
        dataclass can never silently scramble the remaining arguments,
        which a positional ``type(s)(...)`` rebuild would.
        """
        return replace(
            self,
            begin_sample=self.begin_sample + sample_offset,
            end_sample=self.end_sample + sample_offset,
            begin_cycle=self.begin_cycle + cycle_offset,
            end_cycle=self.end_cycle + cycle_offset,
        )


@dataclass
class ProfileReport:
    """EMPROF's output for one profiled execution.

    The report follows the paper's accounting: each detected stall is
    one MISS (one LLC miss or a group of highly-overlapped misses,
    Section II-B), and its duration is that MISS's latency.
    """

    stalls: List[DetectedStall]
    total_cycles: float
    clock_hz: float
    sample_period_cycles: float
    region_names: Dict[int, str] = field(default_factory=dict)

    @property
    def miss_count(self) -> int:
        """Number of detected LLC-miss-induced stalls."""
        return len(self.stalls)

    @property
    def refresh_count(self) -> int:
        """Detected stalls classified as refresh-coincident."""
        return sum(1 for s in self.stalls if s.is_refresh)

    @property
    def stall_cycles(self) -> float:
        """Total stalled cycles across all detected misses."""
        return float(sum(s.duration_cycles for s in self.stalls))

    @property
    def stall_fraction(self) -> float:
        """Miss latency as a fraction of total execution time."""
        if self.total_cycles <= 0:
            return 0.0
        return self.stall_cycles / self.total_cycles

    @property
    def mean_latency_cycles(self) -> float:
        """Average detected stall duration, in cycles."""
        if not self.stalls:
            return 0.0
        return self.stall_cycles / len(self.stalls)

    def latencies_cycles(self) -> np.ndarray:
        """Detected stall durations in cycles, in time order."""
        return np.array([s.duration_cycles for s in self.stalls], dtype=np.float64)

    def stalls_between(self, begin_cycle: float, end_cycle: float) -> List[DetectedStall]:
        """Stalls whose midpoint falls inside [begin_cycle, end_cycle)."""
        out = []
        for s in self.stalls:
            mid = 0.5 * (s.begin_cycle + s.end_cycle)
            if begin_cycle <= mid < end_cycle:
                out.append(s)
        return out

    def miss_rate_timeline(self, bin_cycles: float):
        """(bin_start_cycles, counts): detected misses per time bin.

        The Fig. 13 boot-profile series is this timeline on a boot
        capture.
        """
        if bin_cycles <= 0:
            raise ValueError("bin width must be positive")
        nbins = max(1, int(np.ceil(self.total_cycles / bin_cycles)))
        counts = np.zeros(nbins, dtype=np.int64)
        for s in self.stalls:
            idx = min(int(s.begin_cycle // bin_cycles), nbins - 1)
            counts[idx] += 1
        return np.arange(nbins) * bin_cycles, counts

    def validate(self) -> "ProfileReport":
        """Assert the report's event invariants; returns the report.

        Checks every stall is well-formed (``begin <= end`` in samples
        and cycles, finite fields) and that stalls are in
        non-decreasing time order.  Raises
        :class:`repro.devtools.contracts.ContractViolation` otherwise.
        """
        return check_report(self, where="ProfileReport")

    def summary(self) -> str:
        """Human-readable one-paragraph summary."""
        total_s = self.total_cycles / self.clock_hz
        lines = [
            f"EMPROF profile: {self.miss_count} LLC-miss stalls over "
            f"{total_s * 1e3:.3f} ms ({self.total_cycles:.0f} cycles)",
            f"  miss latency: {self.stall_cycles:.0f} cycles "
            f"({100.0 * self.stall_fraction:.2f}% of execution time)",
            f"  mean stall: {self.mean_latency_cycles:.1f} cycles",
            f"  refresh-coincident stalls: {self.refresh_count}",
        ]
        return "\n".join(lines)
