"""Signal-magnitude normalization via moving minimum/maximum.

Section IV of the paper: probe position changes the received magnitude
by a roughly constant multiplicative factor, and supply-voltage
variation makes signal strength drift over time.  "EMPROF compensates
for these effects by tracking a moving minimum and maximum of the
signal's magnitude and using them to normalize the signal's magnitude
to a range between 0 ... and 1."

The implementation adds one guard the paper implies but does not spell
out: inside a window with *no* stall the min-max range collapses to the
busy-signal ripple, and naive normalization would amplify that ripple
into fake dips.  A window whose range is below ``min_range_ratio`` of
its moving maximum is therefore treated as dip-free (normalized to 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.ndimage import maximum_filter1d, minimum_filter1d, uniform_filter1d

from ..devtools.contracts import unit_interval_result
from ..obs import metrics as _metrics, trace as _trace
from ..obs.runtime import obs_enabled

_NORMALIZE_SAMPLES = _metrics.counter(
    "normalize_samples_total", "magnitude samples normalized by the batch path"
)
_NORMALIZE_CALLS = _metrics.counter(
    "normalize_calls_total", "batch normalize() invocations"
)


@dataclass(frozen=True)
class NormalizerConfig:
    """Moving min/max normalization parameters.

    Attributes:
        window_samples: width of the moving min/max window.  Must span
            at least one full stall plus surrounding busy activity;
            tens of microseconds of signal is typical.
        min_range_ratio: minimum (max - min) range, as a fraction of
            the moving maximum, for normalization to engage.
        smooth_samples: optional pre-smoothing (moving average) applied
            to the magnitude before min/max tracking; 1 disables it.
    """

    window_samples: int = 2001
    min_range_ratio: float = 0.35
    smooth_samples: int = 1

    def __post_init__(self) -> None:
        if self.window_samples < 3:
            raise ValueError("window must be at least 3 samples")
        if not 0.0 <= self.min_range_ratio < 1.0:
            raise ValueError("min_range_ratio must be in [0, 1)")
        if self.smooth_samples < 1:
            raise ValueError("smooth_samples must be at least 1")


def moving_average(signal: np.ndarray, window: int) -> np.ndarray:
    """Centered moving average (the solid red curve of Fig. 1)."""
    if window < 1:
        raise ValueError("window must be at least 1")
    x = np.asarray(signal, dtype=np.float64)
    if window == 1:
        return x.copy()
    return uniform_filter1d(x, size=window, mode="nearest")


def moving_extrema(signal: np.ndarray, window: int):
    """(moving_min, moving_max) over a centered window."""
    if window < 1:
        raise ValueError("window must be at least 1")
    x = np.asarray(signal, dtype=np.float64)
    mmin = minimum_filter1d(x, size=window, mode="nearest")
    mmax = maximum_filter1d(x, size=window, mode="nearest")
    return mmin, mmax


@unit_interval_result
def normalize(signal: np.ndarray, config: NormalizerConfig = None) -> np.ndarray:
    """Normalize magnitude to [0, 1] against moving extrema.

    0 corresponds to the moving minimum (a stalled processor), 1 to the
    moving maximum (full-rate switching).  Windows whose dynamic range
    is too small to contain a stall are returned as 1 everywhere (see
    module docstring).
    """
    if not obs_enabled():
        return _normalize_impl(signal, config)
    x = np.asarray(signal)
    with _trace.span("normalize", samples=int(x.size)):
        out = _normalize_impl(signal, config)
    _NORMALIZE_CALLS.inc()
    _NORMALIZE_SAMPLES.inc(int(x.size))
    return out


def _normalize_impl(signal: np.ndarray, config: NormalizerConfig = None) -> np.ndarray:
    """The uninstrumented normalization pipeline (see :func:`normalize`)."""
    cfg = config if config is not None else NormalizerConfig()
    x = np.asarray(signal, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError("signal must be one-dimensional")
    if len(x) == 0:
        return x.copy()
    if cfg.smooth_samples > 1:
        x = moving_average(x, cfg.smooth_samples)
    mmin, mmax = moving_extrema(x, cfg.window_samples)
    span = mmax - mmin
    # Engage only where the window plausibly contains a stall.  The
    # guard must be purely relative (no absolute floor) so that the
    # result is invariant under a multiplicative gain change - probe
    # repositioning scales the whole signal, and a floor would make
    # engagement depend on absolute magnitude.
    engaged = span > cfg.min_range_ratio * mmax
    out = np.ones_like(x)
    np.divide(x - mmin, span, out=out, where=engaged & (span > 0))
    return np.clip(out, 0.0, 1.0)
