"""Detector calibration against an engineered capture.

The paper's parameters ("the threshold is selected to be significantly
shorter than the LLC latency but significantly longer than typical
on-chip latencies", Section IV) are device facts, so qualifying a new
target starts with a calibration run: capture the TM/CM microbenchmark
(whose miss count is known a priori), then pick the detector settings
that recover that count best.  This module automates the search.

Scoring prefers, in order: miss-count accuracy inside the marker
window, then fewer false splits/merges (the detected count's absolute
error), then a mid-range threshold (more margin against drift).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..emsignal.receiver import Capture
from .detect import DetectorConfig
from .markers import find_marker_window
from .normalize import NormalizerConfig
from .profiler import Emprof, EmprofConfig
from .validate import count_accuracy

DEFAULT_THRESHOLDS = (0.30, 0.38, 0.45, 0.52, 0.60)
DEFAULT_MIN_DURATIONS = (40.0, 70.0, 100.0, 140.0)
DEFAULT_WINDOWS = (801, 2001, 4001)


@dataclass(frozen=True)
class CalibrationPoint:
    """One evaluated parameter combination."""

    threshold: float
    min_duration_cycles: float
    window_samples: int
    detected: int
    accuracy: float


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a calibration search.

    Attributes:
        config: the winning EMPROF configuration.
        best: the winning grid point.
        points: every evaluated point (for inspection/plots).
        expected: the a-priori miss count calibrated against.
    """

    config: EmprofConfig
    best: CalibrationPoint
    points: List[CalibrationPoint]
    expected: int

    @property
    def accuracy(self) -> float:
        """Miss-count accuracy of the winning configuration."""
        return self.best.accuracy


def _evaluate(
    capture: Capture,
    expected: int,
    threshold: float,
    min_duration: float,
    window: int,
    marker_min_samples: int,
) -> Optional[CalibrationPoint]:
    config = EmprofConfig(
        normalizer=NormalizerConfig(window_samples=window),
        detector=DetectorConfig(
            threshold=threshold,
            recover_threshold=max(0.70, threshold + 0.05),
            min_duration_cycles=min_duration,
        ),
    )
    profiler = Emprof.from_capture(capture, config=config)
    try:
        marker_window = find_marker_window(
            profiler.signal, marker_min_samples=marker_min_samples
        )
    except ValueError:
        return None
    report = profiler.profile_window(
        marker_window.begin_sample, marker_window.end_sample
    )
    return CalibrationPoint(
        threshold=threshold,
        min_duration_cycles=min_duration,
        window_samples=window,
        detected=report.miss_count,
        accuracy=count_accuracy(report.miss_count, expected),
    )


def calibrate_detector(
    capture: Capture,
    expected_misses: int,
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
    min_durations: Sequence[float] = DEFAULT_MIN_DURATIONS,
    windows: Sequence[int] = DEFAULT_WINDOWS,
    marker_min_samples: int = 200,
) -> CalibrationResult:
    """Grid-search detector parameters against a known-TM capture.

    Args:
        capture: a recorded TM/CM microbenchmark run (marker loops
            included - the measurement window is isolated per point).
        expected_misses: the engineered TM.
        thresholds / min_durations / windows: the search grid.
        marker_min_samples: marker-loop recognition length.

    Raises:
        ValueError: when no grid point produces a usable window (the
            capture does not look like a bracketed microbenchmark).
    """
    if expected_misses <= 0:
        raise ValueError("expected miss count must be positive")
    points: List[CalibrationPoint] = []
    for window in windows:
        for threshold in thresholds:
            for min_duration in min_durations:
                point = _evaluate(
                    capture,
                    expected_misses,
                    threshold,
                    min_duration,
                    window,
                    marker_min_samples,
                )
                if point is not None:
                    points.append(point)
    if not points:
        raise ValueError(
            "calibration failed: no parameter combination produced a "
            "recognizable marker window"
        )

    def rank(p: CalibrationPoint) -> Tuple:
        # Max accuracy, min absolute error, then mid-range threshold.
        return (
            -p.accuracy,
            abs(p.detected - expected_misses),
            abs(p.threshold - 0.45),
            p.min_duration_cycles,
        )

    best = min(points, key=rank)
    config = EmprofConfig(
        normalizer=NormalizerConfig(window_samples=best.window_samples),
        detector=DetectorConfig(
            threshold=best.threshold,
            recover_threshold=max(0.70, best.threshold + 0.05),
            min_duration_cycles=best.min_duration_cycles,
        ),
    )
    return CalibrationResult(
        config=config, best=best, points=points, expected=expected_misses
    )


def sensitivity(points: Sequence[CalibrationPoint]) -> dict:
    """Accuracy spread along each calibrated dimension.

    Returns a mapping parameter-name -> (value -> mean accuracy); a
    flat profile along a dimension means the detector is insensitive
    to it on this target (good news for robustness).
    """
    out: dict = {"threshold": {}, "min_duration_cycles": {}, "window_samples": {}}
    for name in out:
        values = sorted({getattr(p, name) for p in points})
        for v in values:
            accs = [p.accuracy for p in points if getattr(p, name) == v]
            out[name][v] = float(np.mean(accs))
    return out
