"""The vectorized chunked engine behind batch and streaming EMPROF.

The paper's receivers digitize at 20-160 MHz (Sections V-VI); keeping
up with that sample stream in Python means no per-sample Python work
at all.  This module is the single numerical core shared by the batch
profiler (:mod:`repro.core.detect`) and the streaming facade
(:mod:`repro.core.streaming`): both are thin adapters over the three
pieces here.

* :class:`SampleRing` - a preallocated ndarray ring holding the
  trailing raw-sample window, with head/tail indices and amortized
  O(1) pushes (no ``list.pop(0)``-style per-sample maintenance);
* :class:`ChunkNormalizer` - sliding-window min/max normalization
  computed per chunk with ``scipy.ndimage`` filters over a zero-copy
  view of the ring, emitting exactly the batch normalizer's values;
* :class:`ChunkDetector` - dip detection over whole chunks using
  boolean-mask run-length analysis (``np.diff``/``np.flatnonzero``)
  and ``ufunc.reduceat`` segment reductions, with explicit carry
  state (:class:`DipCarry`) for dips, hysteresis gaps and edge
  refinement across chunk boundaries;
* :func:`finite_segments` - vectorized splitting of a chunk into
  finite runs and the NaN/Inf gaps between them.

Carry-state invariants (see ``docs/engine.md`` for the full contract):

1. Feeding a signal through :class:`ChunkDetector.push` in *any*
   chunking, followed by :meth:`ChunkDetector.finish`, yields stalls
   bit-identical to one whole-signal pass - same boundaries, same
   cycle estimates, same refresh flags.
2. A dip may only be finalized once no future sample can change it:
   after the signal has recovered above the hysteresis threshold for
   more than ``merge_gap_samples`` samples, at a stream
   discontinuity (:meth:`ChunkDetector.resync`), or at end of stream
   (:meth:`ChunkDetector.finish`).
3. All carry state is plain data (ints, floats, small ndarrays), so
   an engine mid-stream is picklable and can migrate to a campaign
   worker process.

The engine is deliberately instrumentation-free: the adapters in
:mod:`repro.core.detect` and :mod:`repro.core.streaming` carry the
observability counters and runtime contracts so the hot path here
stays pure.  The one sanctioned exception is the *flight recorder*
(:mod:`repro.obs.flight`): both :class:`ChunkNormalizer` and
:class:`ChunkDetector` accept an optional
:class:`~repro.obs.flight.FlightRecorder` and, when one is attached,
record every decision (window settles, threshold runs, hysteresis
merges/splits, carry handoffs, finalize/reject verdicts) as
schema-versioned events.  With no recorder — the default — each hook
is a single ``is not None`` check and the numerical path is
bit-identical to the uninstrumented engine; with a recorder the hooks
only *read* state, so the outputs are bit-identical either way (both
facts are pinned by tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np
from scipy.ndimage import maximum_filter1d, minimum_filter1d

from ..obs.flight import FLIGHT_SCHEMA_VERSION, FlightEvent, FlightRecorder
from .events import DetectedStall
from .normalize import NormalizerConfig


# ---------------------------------------------------------------------------
# run-length primitives
# ---------------------------------------------------------------------------


def bool_runs(mask: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """(starts, ends) of half-open [start, end) runs where ``mask`` is True."""
    if len(mask) == 0:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty
    padded = np.concatenate(([False], mask, [False]))
    edges = np.flatnonzero(np.diff(padded.astype(np.int8)))
    return edges[0::2], edges[1::2]


def finite_segments(chunk: np.ndarray, finite: Optional[np.ndarray] = None):
    """Split ``chunk`` into (finite_segment, preceding_bad_run) pairs.

    Segments are zero-copy views into ``chunk``.  A trailing non-finite
    run yields a final pair with an empty segment, so the bad-run
    lengths always add up to the number of non-finite samples.
    """
    if finite is None:
        finite = np.isfinite(chunk)
    n = len(chunk)
    if n == 0:
        return []
    starts, ends = bool_runs(finite)
    pairs = []
    prev_end = 0
    for start, end in zip(starts.tolist(), ends.tolist()):
        pairs.append((chunk[start:end], start - prev_end))
        prev_end = end
    if prev_end < n:
        pairs.append((chunk[n:n], n - prev_end))
    return pairs


# ---------------------------------------------------------------------------
# the sample ring
# ---------------------------------------------------------------------------


class SampleRing:
    """Preallocated ndarray ring over a trailing window of the stream.

    Samples are addressed by their absolute stream position.  The ring
    keeps positions ``[first_position, end_position)``; ``push``
    appends a chunk, ``drop_before`` releases the left edge, and
    ``view`` returns a zero-copy slice.

    Pushes are amortized O(1) per sample: the backing buffer is
    preallocated, appends are single slice assignments, and the live
    region is compacted to the front (or the buffer doubled) only when
    the write head runs off the end.  ``copied_samples`` counts every
    sample moved by compaction/growth so tests can pin the amortized
    bound deterministically instead of trusting wall clocks.
    """

    def __init__(self, capacity: int = 4096):
        self._data = np.empty(max(16, int(capacity)), dtype=np.float64)
        self._base = 0  # absolute position of the first live sample
        self._start = 0  # index of the first live sample in _data
        self._len = 0  # live samples
        #: total samples ever pushed / moved by compaction (test hooks).
        self.pushed_samples = 0
        self.copied_samples = 0

    @property
    def first_position(self) -> int:
        """Absolute position of the oldest retained sample."""
        return self._base

    @property
    def end_position(self) -> int:
        """One past the absolute position of the newest sample."""
        return self._base + self._len

    @property
    def capacity(self) -> int:
        """Current backing-buffer size (grows geometrically)."""
        return len(self._data)

    def push(self, chunk: np.ndarray) -> None:
        """Append ``chunk`` after the newest sample (one slice copy)."""
        n = len(chunk)
        if n == 0:
            return
        need = self._len + n
        if self._start + need > len(self._data):
            live = self._data[self._start : self._start + self._len]
            if need > len(self._data):
                capacity = len(self._data)
                while capacity < need:
                    capacity *= 2
                fresh = np.empty(capacity, dtype=np.float64)
                fresh[: self._len] = live
                self._data = fresh
            elif self._start >= self._len:
                self._data[: self._len] = live
            else:
                # Overlapping move; numpy slice assignment does not
                # guarantee memmove semantics, so stage a copy.
                self._data[: self._len] = live.copy()
            self.copied_samples += self._len
            self._start = 0
        self._data[self._start + self._len : self._start + need] = chunk
        self._len = need
        self.pushed_samples += n

    def drop_before(self, position: int) -> None:
        """Release samples below absolute ``position`` (O(1))."""
        delta = min(max(0, position - self._base), self._len)
        self._start += delta
        self._base += delta
        self._len -= delta

    def view(self, begin: int, end: int) -> np.ndarray:
        """Zero-copy view of absolute positions [begin, end)."""
        if begin < self._base or end > self._base + self._len:
            raise IndexError(
                f"positions [{begin}, {end}) outside retained "
                f"[{self._base}, {self._base + self._len})"
            )
        lo = self._start + (begin - self._base)
        return self._data[lo : lo + (end - begin)]


# ---------------------------------------------------------------------------
# chunked normalization
# ---------------------------------------------------------------------------


class ChunkNormalizer:
    """Vectorized sliding min/max normalization with bounded memory.

    Emits exactly the values of :func:`repro.core.normalize.normalize`
    (centered window, edge-clamped at the true stream start and end):
    output position ``i`` is released once its full right context has
    arrived, or at :meth:`flush` where the window clamps to the signal
    end.  The min/max themselves come from the same
    ``scipy.ndimage`` filters the batch path uses, run over a
    zero-copy :class:`SampleRing` view, so the chunked values are
    bit-identical to the batch values.

    Pre-smoothing (``smooth_samples > 1``) is not supported online;
    the constructor rejects such configs rather than silently
    diverging from the batch result.
    """

    def __init__(
        self,
        config: Optional[NormalizerConfig] = None,
        flight: Optional[FlightRecorder] = None,
    ):
        cfg = config if config is not None else NormalizerConfig()
        if cfg.smooth_samples != 1:
            raise ValueError(
                "online normalization does not support pre-smoothing; "
                "use smooth_samples=1"
            )
        self.config = cfg
        window = cfg.window_samples
        self._left = window // 2  # left context of the centered window
        self._right = (window - 1) // 2  # right context (emission latency)
        self._ring = SampleRing(capacity=2 * window + 4096)
        self._next_out = 0  # absolute position of the next output sample
        self._flight = flight

    @property
    def latency_samples(self) -> int:
        """Fixed emission delay (the window's right context)."""
        return self._right

    @property
    def ring(self) -> SampleRing:
        """The backing sample ring (exposed for tests/diagnostics)."""
        return self._ring

    def push(self, chunk: np.ndarray) -> np.ndarray:
        """Feed samples; return the normalized values now determined."""
        arr = np.asarray(chunk, dtype=np.float64)
        if arr.size:
            self._ring.push(arr)
        return self._emit(self._ring.end_position - self._right)

    def flush(self) -> np.ndarray:
        """Emit the tail (window right edge clamps to the stream end)."""
        return self._emit(self._ring.end_position)

    def _emit(self, until: int) -> np.ndarray:
        until = min(until, self._ring.end_position)
        if until <= self._next_out:
            return np.empty(0, dtype=np.float64)
        cfg = self.config
        base = max(0, self._next_out - self._left)
        window_view = self._ring.view(base, self._ring.end_position)
        moving_min = minimum_filter1d(
            window_view, size=cfg.window_samples, mode="nearest"
        )
        moving_max = maximum_filter1d(
            window_view, size=cfg.window_samples, mode="nearest"
        )
        lo = self._next_out - base
        hi = until - base
        x = window_view[lo:hi]
        mmin = moving_min[lo:hi]
        mmax = moving_max[lo:hi]
        span = mmax - mmin
        # Identical expression to the batch normalizer: engage only
        # where the window plausibly contains a stall, and keep the
        # guard purely relative so gain invariance holds.
        engaged = span > cfg.min_range_ratio * mmax
        out = np.ones_like(x)
        np.divide(x - mmin, span, out=out, where=engaged & (span > 0))
        out = np.clip(out, 0.0, 1.0)
        if self._flight is not None:
            self._flight.record(
                FlightEvent(
                    schema_version=FLIGHT_SCHEMA_VERSION,
                    kind="normalizer_emit",
                    pos=float(self._next_out),
                    attrs={
                        "until": int(until),
                        "n": int(until - self._next_out),
                        "window_base": int(base),
                        "engaged": int(np.count_nonzero(engaged)),
                    },
                )
            )
        self._next_out = until
        self._ring.drop_before(max(0, until - self._left))
        return out


# ---------------------------------------------------------------------------
# chunked dip detection
# ---------------------------------------------------------------------------


@dataclass
class DipCarry:
    """Carry state for a dip still open at a chunk boundary.

    Positions are absolute stream sample indices.  ``gap_start`` is
    set while the signal sits above the threshold after the dip but
    the hysteresis decision (merge vs. finalize) is still pending.
    """

    start: int  # first sample below threshold
    end: int  # one past the last sample below threshold
    min_level: float
    enter_prev: float  # value just before `start` (1.0 at stream start)
    start_value: float  # value at `start`
    end_prev_value: float  # value at `end - 1`
    exit_value: float = 0.0  # value at `end` (valid once gap_start is set)
    gap_start: Optional[int] = None
    gap_max: float = -np.inf


class ChunkDetector:
    """Vectorized dip detection with carry state across chunks.

    The per-chunk pipeline thresholds the whole chunk into a boolean
    mask, extracts below-threshold runs with
    :func:`bool_runs`, evaluates every hysteresis/merge gap with
    ``np.maximum.reduceat`` segment maxima, groups merged runs with a
    cumulative-sum partition, and refines all group edges with one
    vectorized interpolation.  Only the (rare) dip that straddles the
    chunk boundary is carried as scalar state.

    ``config`` is a :class:`repro.core.detect.DetectorConfig` (taken
    duck-typed to keep this module import-light).

    A dip is finalized as soon as its fate is sealed: once the signal
    has recovered above ``recover_threshold`` and stayed away longer
    than ``merge_gap_samples``, no future sample can merge it, so the
    stall is emitted at the end of the current :meth:`push` rather
    than lazily on the next below-threshold sample.  The emitted
    stalls are bit-identical either way; only their latency differs.
    """

    def __init__(
        self,
        sample_period_cycles: float,
        config,
        flight: Optional[FlightRecorder] = None,
    ):
        if sample_period_cycles <= 0:
            raise ValueError("sample period must be positive")
        self.period = float(sample_period_cycles)
        self.config = config
        self._pos = 0  # absolute position of the next input sample
        self._prev = 1.0  # previous sample value (edge refinement)
        self._carry: Optional[DipCarry] = None
        self._samples_seen = 0
        self._flight = flight

    # -- flight recording (every hook is behind one `is not None`) -----------

    def _record_emit(
        self,
        trigger: int,
        begin: float,
        finish: float,
        min_level: float,
        duration: float,
        refresh: bool,
        carried: bool,
        merged_runs: int = 1,
    ) -> None:
        self._flight.record(
            FlightEvent(
                schema_version=FLIGHT_SCHEMA_VERSION,
                kind="stall_emitted",
                pos=begin,
                attrs={
                    "trigger": trigger,
                    "begin": begin,
                    "end": finish,
                    "min_level": min_level,
                    "margin": float(self.config.threshold) - min_level,
                    "duration_cycles": duration,
                    "refresh": refresh,
                    "carried": carried,
                    "merged_runs": merged_runs,
                },
            )
        )

    def _record_reject(
        self,
        trigger: int,
        begin: float,
        finish: float,
        min_level: float,
        reason: str,
        measured: float,
        limit: float,
        carried: bool,
    ) -> None:
        self._flight.record(
            FlightEvent(
                schema_version=FLIGHT_SCHEMA_VERSION,
                kind="stall_rejected",
                pos=begin,
                attrs={
                    "trigger": trigger,
                    "begin": begin,
                    "end": finish,
                    "reason": reason,
                    "measured": measured,
                    "limit": limit,
                    "min_level": min_level,
                    "margin": float(self.config.threshold) - min_level,
                    "carried": carried,
                },
            )
        )

    def _record_event(self, kind: str, pos: float, **attrs) -> None:
        self._flight.record(
            FlightEvent(
                schema_version=FLIGHT_SCHEMA_VERSION,
                kind=kind,
                pos=pos,
                attrs=attrs,
            )
        )

    # -- scalar paths (chunk boundaries and stream edges) -------------------

    def _refine(self, a: float, b: float, boundary: int) -> float:
        """Fractional threshold crossing between samples boundary-1/boundary."""
        if boundary <= 0:
            return float(boundary)
        # Exact equality is the degenerate-slope guard: interpolation
        # is undefined only when the two samples are bit-identical.
        if a == b:  # emlint: disable=float-equality
            return float(boundary)
        frac = (self.config.threshold - a) / (b - a)
        if not 0.0 <= frac <= 1.0:
            return float(boundary)
        return boundary - 1 + frac

    def _finalize(self, dip: DipCarry, exit_value: float) -> Optional[DetectedStall]:
        cfg = self.config
        fl = self._flight
        if dip.end - dip.start < cfg.min_duration_samples:
            if fl is not None:
                self._record_reject(
                    trigger=dip.start,
                    begin=self._refine(dip.enter_prev, dip.start_value, dip.start),
                    finish=self._refine(dip.end_prev_value, exit_value, dip.end),
                    min_level=dip.min_level,
                    reason="too_few_samples",
                    measured=float(dip.end - dip.start),
                    limit=float(cfg.min_duration_samples),
                    carried=True,
                )
            return None
        begin = self._refine(dip.enter_prev, dip.start_value, dip.start)
        finish = self._refine(dip.end_prev_value, exit_value, dip.end)
        if finish <= begin:
            if fl is not None:
                self._record_reject(
                    trigger=dip.start,
                    begin=begin,
                    finish=finish,
                    min_level=dip.min_level,
                    reason="inverted_edges",
                    measured=finish - begin,
                    limit=0.0,
                    carried=True,
                )
            return None
        duration = (finish - begin) * self.period
        if duration < cfg.min_duration_cycles:
            if fl is not None:
                self._record_reject(
                    trigger=dip.start,
                    begin=begin,
                    finish=finish,
                    min_level=dip.min_level,
                    reason="below_min_duration",
                    measured=duration,
                    limit=float(cfg.min_duration_cycles),
                    carried=True,
                )
            return None
        if fl is not None:
            self._record_emit(
                trigger=dip.start,
                begin=begin,
                finish=finish,
                min_level=dip.min_level,
                duration=duration,
                refresh=duration >= cfg.refresh_min_cycles,
                carried=True,
            )
        return DetectedStall(
            begin_sample=begin,
            end_sample=finish,
            begin_cycle=begin * self.period,
            end_cycle=finish * self.period,
            min_level=dip.min_level,
            is_refresh=duration >= cfg.refresh_min_cycles,
        )

    def _close_carry(self) -> List[DetectedStall]:
        """Finalize the carried dip exactly as end-of-stream would."""
        out: List[DetectedStall] = []
        dip = self._carry
        if dip is not None:
            # No sample exists past the boundary when the stream ends
            # mid-dip, so the edge cannot be interpolated: passing the
            # end-adjacent value makes _refine return the integer
            # boundary (the batch detector's array-edge fallback).
            exit_value = (
                dip.end_prev_value if dip.gap_start is None else dip.exit_value
            )
            stall = self._finalize(dip, exit_value)
            if stall is not None:
                out.append(stall)
            self._carry = None
        return out

    # -- vectorized edge refinement -----------------------------------------

    def _refine_vec(
        self, a: np.ndarray, b: np.ndarray, boundary: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`_refine` over group edges."""
        threshold = self.config.threshold
        boundary_f = boundary.astype(np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            frac = (threshold - a) / (b - a)
        # Bit-identical samples make the slope degenerate; out-of-range
        # fractions mean the crossing is not between these samples.
        usable = (
            (b != a)  # emlint: disable=float-equality
            & (frac >= 0.0)
            & (frac <= 1.0)
            & (boundary > 0)
        )
        return np.where(usable, boundary_f - 1.0 + frac, boundary_f)

    # -- public --------------------------------------------------------------

    @property
    def samples_seen(self) -> int:
        """Total normalized samples consumed."""
        return self._samples_seen

    def push(self, normalized: np.ndarray) -> List[DetectedStall]:
        """Consume one chunk; return every stall whose fate is sealed."""
        arr = np.asarray(normalized, dtype=np.float64)
        n = arr.size
        if n == 0:
            return []
        cfg = self.config
        recover = cfg.recover_threshold
        merge_gap = cfg.merge_gap_samples
        pos0 = self._pos
        prev_tail = self._prev
        out: List[DetectedStall] = []

        starts, ends = bool_runs(arr < cfg.threshold)
        if self._flight is not None:
            self._record_event(
                "threshold_runs",
                float(pos0),
                runs=int(starts.size),
                carry_open=self._carry is not None,
            )
        if starts.size == 0:
            self._no_runs(arr, pos0, out)
            self._advance(arr, n)
            return out

        first_start = int(starts[0])
        carry_merged = self._junction(arr, pos0, first_start, out)

        group_start, group_end, group_min, merged_tail, runs_per_group = (
            self._group_runs(arr, starts, ends, pos0)
        )
        n_groups = len(group_start)

        # Absolute group boundaries and the values flanking them.
        abs_start = pos0 + group_start
        abs_end = pos0 + group_end
        with np.errstate(invalid="ignore"):
            a_begin = np.where(group_start > 0, arr[group_start - 1], prev_tail)
        b_begin = arr[group_start]
        if carry_merged:
            carry = self._carry
            abs_start = abs_start.astype(np.int64)
            abs_start[0] = carry.start
            a_begin = a_begin.astype(np.float64)
            a_begin[0] = carry.enter_prev
            b_begin = b_begin.astype(np.float64)
            b_begin[0] = carry.start_value
            group_min = group_min.astype(np.float64)
            group_min[0] = min(carry.min_level, float(group_min[0]))

        # Trailing state: does the last group stay open?
        last_end = int(ends[-1])
        if last_end == n:
            open_in_gap = False
            trailing_open = True
        else:
            trail_max = float(merged_tail)
            trail_len = n - last_end
            trailing_open = not (trail_max >= recover and trail_len > merge_gap)
            open_in_gap = trailing_open
        n_final = n_groups - 1 if trailing_open else n_groups

        if n_final > 0:
            fin_end = group_end[:n_final]
            begin = self._refine_vec(
                a_begin[:n_final], b_begin[:n_final], abs_start[:n_final]
            )
            finish = self._refine_vec(
                arr[fin_end - 1], arr[fin_end], abs_end[:n_final]
            )
            duration = (finish - begin) * self.period
            keep = (
                ((abs_end[:n_final] - abs_start[:n_final]) >= cfg.min_duration_samples)
                & (finish > begin)
                & (duration >= cfg.min_duration_cycles)
            )
            refresh = duration >= cfg.refresh_min_cycles
            if self._flight is not None:
                self._record_group_verdicts(
                    abs_start,
                    abs_end,
                    begin,
                    finish,
                    duration,
                    keep,
                    refresh,
                    group_min,
                    runs_per_group,
                    n_final,
                    carry_merged,
                )
            for s_begin, s_finish, s_min, s_refresh in zip(
                begin[keep].tolist(),
                finish[keep].tolist(),
                group_min[:n_final][keep].tolist(),
                refresh[keep].tolist(),
            ):
                out.append(
                    DetectedStall(
                        begin_sample=s_begin,
                        end_sample=s_finish,
                        begin_cycle=s_begin * self.period,
                        end_cycle=s_finish * self.period,
                        min_level=s_min,
                        is_refresh=bool(s_refresh),
                    )
                )

        if trailing_open:
            last = n_groups - 1
            if carry_merged and last == 0:
                carry = self._carry
                dip_start = carry.start
                dip_enter = carry.enter_prev
                dip_start_value = carry.start_value
            else:
                dip_start = int(abs_start[last])
                dip_enter = float(a_begin[last])
                dip_start_value = float(b_begin[last])
            dip = DipCarry(
                start=dip_start,
                end=pos0 + int(group_end[last]),
                min_level=float(group_min[last]),
                enter_prev=dip_enter,
                start_value=dip_start_value,
                end_prev_value=float(arr[int(group_end[last]) - 1]),
            )
            if open_in_gap:
                dip.gap_start = pos0 + last_end
                dip.exit_value = float(arr[last_end])
                dip.gap_max = float(merged_tail)
            self._carry = dip
            if self._flight is not None:
                self._record_event(
                    "carry_open",
                    float(pos0 + n),
                    start=int(dip.start),
                    end=int(dip.end),
                    min_level=float(dip.min_level),
                    gap_open=dip.gap_start is not None,
                )
        else:
            self._carry = None

        self._advance(arr, n)
        return out

    def finish(self) -> List[DetectedStall]:
        """Finalize any open dip at end of signal."""
        if self._flight is not None:
            self._record_event(
                "finish", float(self._pos), samples_seen=self._samples_seen
            )
        out = self._close_carry()
        return out

    def resync(self) -> List[DetectedStall]:
        """Close any open dip at a stream discontinuity and continue.

        A gap means the samples between the last and the next chunk
        are unknown, so the dip state machine cannot bridge it: the
        open dip (if any) is finalized exactly as :meth:`finish`
        would finalize it, but the detector stays usable - positions
        keep advancing and the next sample is treated like a stream
        start (neutral previous value for edge refinement).
        """
        if self._flight is not None:
            self._record_event(
                "resync", float(self._pos), carry_open=self._carry is not None
            )
        out = self._close_carry()
        self._prev = 1.0
        return out

    # -- internals ------------------------------------------------------------

    def _advance(self, arr: np.ndarray, n: int) -> None:
        self._prev = float(arr[n - 1])
        self._pos += n
        self._samples_seen += n

    def _no_runs(self, arr: np.ndarray, pos0: int, out: List[DetectedStall]) -> None:
        """Whole chunk above threshold: extend/resolve the carried gap."""
        dip = self._carry
        if dip is None:
            return
        if dip.gap_start is None:
            dip.gap_start = pos0
            dip.exit_value = float(arr[0])
        dip.gap_max = max(dip.gap_max, float(arr.max()))
        gap_len = pos0 + arr.size - dip.gap_start
        cfg = self.config
        if dip.gap_max >= cfg.recover_threshold and gap_len > cfg.merge_gap_samples:
            stall = self._finalize(dip, dip.exit_value)
            if stall is not None:
                out.append(stall)
            self._carry = None
        elif self._flight is not None:
            # The dip's fate is still pending; it crosses this chunk
            # boundary too.
            self._record_event(
                "carry_open",
                float(pos0 + arr.size),
                start=int(dip.start),
                end=int(dip.end),
                min_level=float(dip.min_level),
                gap_open=True,
            )

    def _junction(
        self,
        arr: np.ndarray,
        pos0: int,
        first_start: int,
        out: List[DetectedStall],
    ) -> bool:
        """Resolve the carried dip against this chunk's first run.

        Returns True when the carried dip merges into the first run
        (the first group then starts at the carried position), False
        when there is no carry or it was finalized here.
        """
        dip = self._carry
        if dip is None:
            return False
        cfg = self.config
        if first_start > 0:
            if dip.gap_start is None:
                dip.gap_start = pos0
                dip.exit_value = float(arr[0])
            dip.gap_max = max(dip.gap_max, float(arr[:first_start].max()))
        if dip.gap_start is None:
            # The chunk opens below threshold and the dip never saw a
            # gap: it simply continues.
            if self._flight is not None:
                self._record_event(
                    "carry_merge", float(pos0), start=int(dip.start), continued=True
                )
            return True
        gap_len = pos0 + first_start - dip.gap_start
        if dip.gap_max < cfg.recover_threshold or gap_len <= cfg.merge_gap_samples:
            # Merge: the dip continues through the gap.
            if self._flight is not None:
                self._record_event(
                    "carry_merge",
                    float(dip.gap_start),
                    start=int(dip.start),
                    gap_len=int(gap_len),
                    gap_max=float(dip.gap_max),
                    continued=False,
                )
            dip.gap_start = None
            dip.gap_max = -np.inf
            return True
        stall = self._finalize(dip, dip.exit_value)
        if stall is not None:
            out.append(stall)
        self._carry = None
        return False

    def _group_runs(
        self, arr: np.ndarray, starts: np.ndarray, ends: np.ndarray, pos0: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, float, np.ndarray]:
        """Merge below-threshold runs into dip groups, vectorized.

        Returns (group_start, group_end, group_min, trailing_max,
        runs_per_group): chunk-local [start, end) per merged group,
        the minimum level inside each group, the signal maximum over
        the trailing above-threshold region (``-inf`` when the chunk
        ends below threshold), and how many raw runs each group
        merged.

        A gap merges its neighbours when it is short
        (``<= merge_gap_samples``) or never recovers above the
        hysteresis threshold - evaluated per gap with one
        ``np.maximum.reduceat`` over the interleaved run boundaries,
        exactly the decision the batch detector's merge passes make.
        """
        n = arr.size
        n_runs = len(starts)
        bounds = np.empty(2 * n_runs, dtype=np.intp)
        bounds[0::2] = starts
        bounds[1::2] = ends
        last_is_end = int(ends[-1]) == n
        reduce_bounds = bounds[:-1] if last_is_end else bounds
        seg_max = np.maximum.reduceat(arr, reduce_bounds)
        trailing_max = -np.inf if last_is_end else float(seg_max[-1])
        if n_runs == 1:
            merge = np.empty(0, dtype=bool)
        else:
            gap_max = seg_max[1 : 2 * n_runs - 1 : 2]
            gap_len = starts[1:] - ends[:-1]
            merge = (gap_max < self.config.recover_threshold) | (
                gap_len <= self.config.merge_gap_samples
            )
            if self._flight is not None:
                self._record_gap_decisions(ends, gap_len, gap_max, merge, pos0)
        breaks = np.flatnonzero(~merge)
        first_run = np.concatenate(([0], breaks + 1))
        last_run = np.concatenate((breaks, [n_runs - 1]))
        group_start = starts[first_run]
        group_end = ends[last_run]
        # Group minimum over the merged [start, end) interval: interior
        # gap samples sit at/above the threshold, so the interval min
        # is the dip floor (and matches the batch detector exactly).
        group_bounds = np.empty(2 * len(group_start), dtype=np.intp)
        group_bounds[0::2] = group_start
        group_bounds[1::2] = group_end
        reduce_bounds = group_bounds[:-1] if last_is_end else group_bounds
        group_min = np.minimum.reduceat(arr, reduce_bounds)[0::2]
        runs_per_group = last_run - first_run + 1
        return group_start, group_end, group_min, trailing_max, runs_per_group

    def _record_gap_decisions(
        self,
        ends: np.ndarray,
        gap_len: np.ndarray,
        gap_max: np.ndarray,
        merge: np.ndarray,
        pos0: int,
    ) -> None:
        """Flight-record every hysteresis merge/split verdict of a chunk."""
        recover = self.config.recover_threshold
        # Iterates gap *decisions* (a handful per chunk), and only when
        # a flight recorder is attached - not a per-sample hot path.
        # emlint: disable=hot-loop
        for gi in range(len(merge)):
            length = int(gap_len[gi])
            top = float(gap_max[gi])
            if merge[gi]:
                self._record_event(
                    "hysteresis_merge",
                    float(pos0 + int(ends[gi])),
                    gap_len=length,
                    gap_max=top,
                    reason="no_recovery" if top < recover else "short_gap",
                )
            else:
                self._record_event(
                    "hysteresis_split",
                    float(pos0 + int(ends[gi])),
                    gap_len=length,
                    gap_max=top,
                )

    def _record_group_verdicts(
        self,
        abs_start: np.ndarray,
        abs_end: np.ndarray,
        begin: np.ndarray,
        finish: np.ndarray,
        duration: np.ndarray,
        keep: np.ndarray,
        refresh: np.ndarray,
        group_min: np.ndarray,
        runs_per_group: np.ndarray,
        n_final: int,
        carry_merged: bool,
    ) -> None:
        """Flight-record the finalize verdict of every sealed group."""
        cfg = self.config
        samples = abs_end[:n_final] - abs_start[:n_final]
        # Iterates sealed *groups* (few per chunk), recorder-on only -
        # not a per-sample hot path.
        # emlint: disable=hot-loop
        for gi in range(n_final):
            carried = bool(carry_merged and gi == 0)
            if keep[gi]:
                self._record_emit(
                    trigger=int(abs_start[gi]),
                    begin=float(begin[gi]),
                    finish=float(finish[gi]),
                    min_level=float(group_min[gi]),
                    duration=float(duration[gi]),
                    refresh=bool(refresh[gi]),
                    carried=carried,
                    merged_runs=int(runs_per_group[gi]),
                )
                continue
            if samples[gi] < cfg.min_duration_samples:
                reason = "too_few_samples"
                measured = float(samples[gi])
                limit = float(cfg.min_duration_samples)
            elif finish[gi] <= begin[gi]:
                reason = "inverted_edges"
                measured = float(finish[gi] - begin[gi])
                limit = 0.0
            else:
                reason = "below_min_duration"
                measured = float(duration[gi])
                limit = float(cfg.min_duration_cycles)
            self._record_reject(
                trigger=int(abs_start[gi]),
                begin=float(begin[gi]),
                finish=float(finish[gi]),
                min_level=float(group_min[gi]),
                reason=reason,
                measured=measured,
                limit=limit,
                carried=carried,
            )


# ---------------------------------------------------------------------------
# one-shot batch entry
# ---------------------------------------------------------------------------


def detect_all(
    normalized: np.ndarray,
    sample_period_cycles: float,
    config,
    flight: Optional[FlightRecorder] = None,
) -> List[DetectedStall]:
    """Whole-signal detection: one chunk through the engine plus flush."""
    detector = ChunkDetector(sample_period_cycles, config, flight=flight)
    stalls = detector.push(normalized)
    stalls.extend(detector.finish())
    return stalls
