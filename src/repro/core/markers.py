"""Locating the microbenchmark's marker-loop window in the signal.

The microbenchmark brackets its engineered miss section with tight
loops whose signal is "a very stable signal pattern that can be easily
recognized, which allows us to identify the point in the signal where
this loop ends and the part of the application with LLC miss activity
begins" (Section V-B).  This module finds those stable stretches
purely from the signal - no ground-truth side information - so the
Table II device experiments measure what a real EMPROF deployment
would.

A marker is a long run where (a) the local standard deviation is a
small fraction of the local mean and (b) the level is high (the loop
keeps the core busy).  The measurement window is the span between the
end of the first marker and the start of the last one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np
from scipy.ndimage import maximum_filter1d, uniform_filter1d


@dataclass(frozen=True)
class MarkerWindow:
    """Measurement window located between two marker loops.

    Attributes:
        begin_sample / end_sample: half-open window in signal samples.
        markers: the [start, end) runs recognized as marker loops.
    """

    begin_sample: int
    end_sample: int
    markers: List[Tuple[int, int]]

    @property
    def width(self) -> int:
        """Window width in samples."""
        return self.end_sample - self.begin_sample


def _stable_mask(
    signal: np.ndarray, window: int, rel_std: float, min_level_ratio: float
) -> np.ndarray:
    """True where the signal is locally flat and high.

    Stability is judged on the *detrended* signal: a short moving
    average is subtracted first, so the slow multiplicative drift the
    supply imposes (Section IV) does not read as instability, while
    stall dips - abrupt against any trend - still do.
    """
    x = np.asarray(signal, dtype=np.float64)
    trend_window = max(4, window // 4)
    trend = uniform_filter1d(x, size=trend_window, mode="nearest")
    resid = x - trend
    var = uniform_filter1d(resid * resid, size=window, mode="nearest")
    std = np.sqrt(np.maximum(var, 0.0))
    mean = uniform_filter1d(x, size=window, mode="nearest")
    # The "high level" reference is local too: under supply drift the
    # absolute busy level wanders, but a marker always sits near the
    # *local* busy peak, while a stall plateau sits far below it.
    local_max = maximum_filter1d(x, size=max(8 * window, 512), mode="nearest")
    level_floor = min_level_ratio * np.maximum(local_max, 1e-30)
    return (std < rel_std * np.maximum(mean, 1e-30)) & (mean > level_floor)


def find_marker_window(
    signal: np.ndarray,
    marker_min_samples: int = 300,
    rel_std: float = 0.05,
    min_level_ratio: float = 0.6,
) -> MarkerWindow:
    """Locate the window between the first and last marker loop.

    Args:
        signal: raw (or lightly smoothed) magnitude samples.
        marker_min_samples: minimum length of a stable run to qualify
            as a marker loop.
        rel_std: local std must stay below this fraction of the local
            mean inside a marker.
        min_level_ratio: marker level must exceed this fraction of the
            signal's 95th-percentile level (markers are busy loops).

    Raises:
        ValueError: when fewer than two markers are found - the signal
            then does not look like a bracketed microbenchmark run.
    """
    if marker_min_samples < 4:
        raise ValueError("marker_min_samples must be at least 4")
    x = np.asarray(signal, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError("signal must be one-dimensional")
    if len(x) < 3 * marker_min_samples:
        raise ValueError("signal too short to contain a marked window")

    mask = _stable_mask(x, max(4, marker_min_samples // 4), rel_std, min_level_ratio)
    padded = np.concatenate(([False], mask, [False]))
    edges = np.flatnonzero(np.diff(padded.astype(np.int8)))
    runs = [
        (int(s), int(e))
        for s, e in zip(edges[0::2], edges[1::2])
        if e - s >= marker_min_samples
    ]
    if len(runs) < 2:
        raise ValueError(
            f"found {len(runs)} marker loop(s); need at least 2 to bracket a window"
        )
    begin = runs[0][1]
    end = runs[-1][0]
    if end <= begin:
        raise ValueError("marker loops do not bracket a non-empty window")
    return MarkerWindow(begin_sample=begin, end_sample=end, markers=runs)
