"""Streaming (online) EMPROF for arbitrarily long captures.

The paper's SPEC captures outran the MXA's record length and had to be
taken with a streaming front end (ThinkRF WSA5000 + PX14400 digitizers,
Section VI).  Profiling such captures offline means holding hours of
samples; this module processes the signal *incrementally*, in chunks of
any size, with bounded memory:

* :class:`OnlineNormalizer` - sliding-window min/max via monotonic
  deques (amortized O(1) per sample), emitting exactly the same values
  as the batch :func:`repro.core.normalize.normalize` (centered window,
  edge-clamped) at a fixed latency of half a window;
* :class:`StreamingDetector` - an event state machine replicating the
  batch detector (threshold, hysteresis merging, duration thresholds,
  edge interpolation, refresh classification);
* :class:`StreamingEmprof` - the facade: feed magnitude chunks, collect
  stalls as they complete, and get the final :class:`ProfileReport`.

Equivalence with the batch pipeline is tested property-style in
``tests/test_streaming.py``: for any signal and any chunking, the
streamed result equals the batch result.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional

import numpy as np

from ..devtools.contracts import (
    monotonic_stall_stream,
    report_result,
    unit_interval_result,
)
from ..faults.quality import QualityConfig, QualityMonitor
from ..obs import metrics as _metrics, trace as _trace
from ..obs.events import bus as _event_bus
from ..obs.runtime import obs_enabled
from .detect import DetectorConfig
from .events import DetectedStall, ProfileReport
from .normalize import NormalizerConfig

_STREAM_NORM_SAMPLES = _metrics.counter(
    "streaming_normalize_samples_total",
    "magnitude samples consumed by OnlineNormalizer.push()",
)
_STREAM_DETECT_SAMPLES = _metrics.counter(
    "streaming_detect_samples_total",
    "normalized samples consumed by StreamingDetector.push()",
)
_STREAM_STALLS = _metrics.counter(
    "stalls_detected_total", "LLC-miss stalls detected (batch + streaming)"
)
_STREAM_REFRESH = _metrics.counter(
    "refresh_stalls_total", "detected stalls classified refresh-coincident"
)
_STREAM_CHUNKS = _metrics.counter(
    "streaming_chunks_total", "chunks fed through StreamingEmprof.process()"
)
_STREAM_CHUNK_LATENCY = _metrics.histogram(
    "streaming_chunk_latency_seconds",
    "wall time of one StreamingEmprof.process() chunk",
)
_STREAM_GAPS = _metrics.counter(
    "signal_gaps_total",
    "stream discontinuities handled (overruns + non-finite runs)",
)
_STREAM_DROPPED = _metrics.counter(
    "dropped_samples_total", "samples lost across all stream gaps"
)
_STREAM_LOW_CONFIDENCE = _metrics.counter(
    "low_confidence_stalls_total",
    "detected stalls flagged as overlapping impaired signal",
)


class OnlineNormalizer:
    """Sliding-window min/max normalization with bounded memory.

    Matches the batch normalizer sample-for-sample: the window for
    output position ``i`` is ``[i - half, i + half]`` clipped to the
    signal, which is what ``scipy.ndimage.{minimum,maximum}_filter1d``
    with ``mode="nearest"`` computes.  Output for position ``i`` is
    emitted once input ``i + half`` has arrived (or at :meth:`flush`).

    Smoothing (``smooth_samples > 1``) is not supported online; the
    constructor rejects such configs rather than silently diverging
    from the batch result.
    """

    def __init__(self, config: Optional[NormalizerConfig] = None):
        cfg = config if config is not None else NormalizerConfig()
        if cfg.smooth_samples != 1:
            raise ValueError(
                "online normalization does not support pre-smoothing; "
                "use smooth_samples=1"
            )
        self.config = cfg
        self._half = cfg.window_samples // 2
        # Raw samples kept for the trailing window: positions
        # [emit_pos - half, last_pos].
        self._buffer: Deque[float] = deque()
        self._buffer_start = 0  # absolute position of buffer[0]
        self._next_in = 0  # absolute position of the next input sample
        self._next_out = 0  # absolute position of the next output sample
        # Monotonic deques of (position, value) over the buffer.
        self._min_q: Deque[tuple] = deque()
        self._max_q: Deque[tuple] = deque()

    def _admit(self, pos: int, value: float) -> None:
        self._buffer.append(value)
        while self._min_q and self._min_q[-1][1] >= value:
            self._min_q.pop()
        self._min_q.append((pos, value))
        while self._max_q and self._max_q[-1][1] <= value:
            self._max_q.pop()
        self._max_q.append((pos, value))

    def _evict_before(self, pos: int) -> None:
        while self._buffer_start < pos:
            self._buffer.popleft()
            self._buffer_start += 1
        while self._min_q and self._min_q[0][0] < pos:
            self._min_q.popleft()
        while self._max_q and self._max_q[0][0] < pos:
            self._max_q.popleft()

    def _emit_one(self) -> float:
        i = self._next_out
        self._evict_before(i - self._half)
        mmin = self._min_q[0][1]
        mmax = self._max_q[0][1]
        x = self._buffer[i - self._buffer_start]
        self._next_out += 1
        span = mmax - mmin
        if span <= self.config.min_range_ratio * mmax or span <= 0:
            return 1.0
        return float(np.clip((x - mmin) / span, 0.0, 1.0))

    @unit_interval_result
    def push(self, chunk: np.ndarray) -> np.ndarray:
        """Feed samples; return the normalized values now determined."""
        out: List[float] = []
        arr = np.asarray(chunk, dtype=np.float64)
        for value in arr:
            self._admit(self._next_in, float(value))
            self._next_in += 1
            # Output i is ready once input i + half exists.
            while self._next_out + self._half < self._next_in:
                out.append(self._emit_one())
        if obs_enabled():
            _STREAM_NORM_SAMPLES.inc(len(arr))
        return np.asarray(out)

    @unit_interval_result
    def flush(self) -> np.ndarray:
        """Emit the tail (positions whose right context is the signal end)."""
        out: List[float] = []
        while self._next_out < self._next_in:
            out.append(self._emit_one())
        return np.asarray(out)

    @property
    def latency_samples(self) -> int:
        """Fixed emission delay (half the window)."""
        return self._half


@dataclass
class _DipState:
    """An open (not yet finalized) dip."""

    start: int  # first sample below threshold
    end: int  # one past the last sample below threshold
    min_level: float
    below_samples: int  # samples strictly below threshold
    enter_prev: float  # normalized value just before `start`
    start_value: float = 0.0  # normalized value at `start`
    end_prev_value: float = 0.0  # normalized value at `end - 1`
    exit_value: float = 0.0  # normalized value at `end` (set at gap start)
    gap_start: Optional[int] = None  # first above-threshold sample after end
    gap_max: float = -np.inf


class StreamingDetector:
    """Incremental dip detection equivalent to :func:`detect_stalls`.

    Feed normalized samples with :meth:`push`; completed stalls are
    returned as they become final (a stall is final once the signal has
    recovered above the hysteresis threshold, or at :meth:`finish`).
    """

    def __init__(
        self,
        sample_period_cycles: float,
        config: Optional[DetectorConfig] = None,
    ):
        if sample_period_cycles <= 0:
            raise ValueError("sample period must be positive")
        self.period = float(sample_period_cycles)
        self.config = config if config is not None else DetectorConfig()
        self._pos = 0
        self._prev = 1.0  # value of the previous sample (edge refinement)
        self._open: Optional[_DipState] = None
        self._samples_seen = 0

    # -- internal -----------------------------------------------------------

    def _refine(self, a: float, b: float, boundary: int) -> float:
        """Fractional crossing between samples boundary-1 (a) and boundary (b)."""
        if boundary <= 0:
            return float(boundary)
        # Exact equality is the degenerate-slope guard (see the batch
        # detector's _refine_edge): bit-identical samples only.
        if a == b:  # emlint: disable=float-equality
            return float(boundary)
        frac = (self.config.threshold - a) / (b - a)
        if not 0.0 <= frac <= 1.0:
            return float(boundary)
        return boundary - 1 + frac

    def _finalize(self, dip: _DipState, exit_value: float) -> Optional[DetectedStall]:
        cfg = self.config
        if dip.end - dip.start < cfg.min_duration_samples:
            return None
        # Edge refinement: entry crossing between (start-1, start) and
        # exit crossing between (end-1, end).
        begin = self._refine(dip.enter_prev, dip.start_value, dip.start)
        finish = self._refine(dip.end_prev_value, exit_value, dip.end)
        if finish <= begin:
            return None
        duration = (finish - begin) * self.period
        if duration < cfg.min_duration_cycles:
            return None
        return DetectedStall(
            begin_sample=begin,
            end_sample=finish,
            begin_cycle=begin * self.period,
            end_cycle=finish * self.period,
            min_level=dip.min_level,
            is_refresh=duration >= cfg.refresh_min_cycles,
        )

    # -- public --------------------------------------------------------------

    @monotonic_stall_stream
    def push(self, normalized: np.ndarray) -> List[DetectedStall]:
        """Consume normalized samples; return newly finalized stalls."""
        cfg = self.config
        out: List[DetectedStall] = []
        arr = np.asarray(normalized, dtype=np.float64)
        for value in arr:
            v = float(value)
            i = self._pos
            below = v < cfg.threshold
            dip = self._open
            if dip is None:
                if below:
                    dip = _DipState(
                        start=i,
                        end=i + 1,
                        min_level=v,
                        below_samples=1,
                        enter_prev=self._prev,
                    )
                    dip.start_value = v
                    dip.end_prev_value = v
                    self._open = dip
            else:
                in_gap = dip.gap_start is not None
                if below:
                    if in_gap:
                        gap_len = i - dip.gap_start
                        if (
                            dip.gap_max < cfg.recover_threshold
                            or gap_len <= cfg.merge_gap_samples
                        ):
                            # Merge: the dip continues through the gap.
                            dip.gap_start = None
                            dip.gap_max = -np.inf
                        else:
                            # The previous dip is final; a new one starts.
                            stall = self._finalize(dip, dip.exit_value)
                            if stall is not None:
                                out.append(stall)
                            dip = _DipState(
                                start=i,
                                end=i + 1,
                                min_level=v,
                                below_samples=1,
                                enter_prev=self._prev,
                            )
                            dip.start_value = v
                            dip.end_prev_value = v
                            self._open = dip
                            self._prev = v
                            self._pos += 1
                            self._samples_seen += 1
                            continue
                    dip.end = i + 1
                    dip.below_samples += 1
                    dip.min_level = min(dip.min_level, v)
                    dip.end_prev_value = v
                else:
                    if not in_gap:
                        dip.gap_start = i
                        dip.exit_value = v
                    dip.gap_max = max(dip.gap_max, v)
            self._prev = v
            self._pos += 1
            self._samples_seen += 1
        if obs_enabled():
            _STREAM_DETECT_SAMPLES.inc(len(arr))
            _STREAM_STALLS.inc(len(out))
            _STREAM_REFRESH.inc(sum(1 for s in out if s.is_refresh))
        return out

    @monotonic_stall_stream
    def finish(self) -> List[DetectedStall]:
        """Finalize any open dip at end of signal."""
        out: List[DetectedStall] = []
        dip = self._open
        if dip is not None:
            if dip.gap_start is None:
                # The signal ended mid-dip: no sample exists past the
                # boundary, so the edge cannot be interpolated (the
                # batch detector's array-edge fallback).  Passing the
                # end-adjacent value makes _refine return the integer
                # boundary.
                exit_value = dip.end_prev_value
            else:
                exit_value = dip.exit_value
            stall = self._finalize(dip, exit_value)
            if stall is not None:
                out.append(stall)
            self._open = None
        if obs_enabled():
            _STREAM_STALLS.inc(len(out))
            _STREAM_REFRESH.inc(sum(1 for s in out if s.is_refresh))
        return out

    @monotonic_stall_stream
    def resync(self) -> List[DetectedStall]:
        """Close any open dip at a stream discontinuity and continue.

        A gap means the samples between the last and the next chunk
        are unknown, so the dip state machine cannot bridge it: the
        open dip (if any) is finalized exactly as :meth:`finish` would
        finalize it, but the detector stays usable - positions keep
        advancing and the next sample is treated like a stream start
        (neutral previous value for edge refinement).
        """
        out: List[DetectedStall] = []
        dip = self._open
        if dip is not None:
            exit_value = (
                dip.end_prev_value if dip.gap_start is None else dip.exit_value
            )
            stall = self._finalize(dip, exit_value)
            if stall is not None:
                out.append(stall)
            self._open = None
        self._prev = 1.0
        if obs_enabled():
            _STREAM_STALLS.inc(len(out))
            _STREAM_REFRESH.inc(sum(1 for s in out if s.is_refresh))
        return out

    @property
    def samples_seen(self) -> int:
        """Total normalized samples consumed."""
        return self._samples_seen


class StreamingEmprof:
    """Chunked EMPROF: bounded-memory profiling of endless captures.

    Hardened against real acquisition impairments (see
    ``docs/robustness.md``):

    * driver-reported sample drops (``gap_before``) and non-finite
      sample runs trigger a *resynchronization* - the open dip is
      closed and the normalizer is re-primed so stale min/max state is
      never smeared across a discontinuity;
    * a :class:`~repro.faults.quality.QualityMonitor` watches the raw
      stream for saturation plateaus, interference bursts, and AGC
      gain steps;
    * stalls overlapping any impaired interval are reported with
      ``low_confidence=True``, and the final report carries a
      :class:`~repro.core.events.QualitySummary`.

    On a clean, gapless stream the output is sample-for-sample
    identical to the batch pipeline (the quality layer only *flags*,
    it never changes detection).

    Args:
        sample_rate_hz: capture sampling rate.
        clock_hz: target processor clock.
        normalizer: normalization parameters (``smooth_samples`` must
            be 1 for the online path).
        detector: detection parameters.
        quality: quality-monitor parameters (defaults on).
    """

    def __init__(
        self,
        sample_rate_hz: float,
        clock_hz: float,
        normalizer: Optional[NormalizerConfig] = None,
        detector: Optional[DetectorConfig] = None,
        region_names: Optional[Dict[int, str]] = None,
        quality: Optional[QualityConfig] = None,
    ):
        if sample_rate_hz <= 0 or clock_hz <= 0:
            raise ValueError("rates must be positive")
        self.sample_rate_hz = float(sample_rate_hz)
        self.clock_hz = float(clock_hz)
        self.period = clock_hz / sample_rate_hz
        self._normalizer_config = (
            normalizer if normalizer is not None else NormalizerConfig()
        )
        self._normalizer = OnlineNormalizer(self._normalizer_config)
        self._detector = StreamingDetector(self.period, detector)
        self.quality_monitor = QualityMonitor(
            quality, gain_guard_samples=self._normalizer_config.window_samples
        )
        self._stalls: List[DetectedStall] = []
        self._n_samples = 0
        self._n_dropped = 0
        self._finished = False
        self.region_names = dict(region_names or {})

    def process(
        self, chunk: np.ndarray, gap_before: int = 0
    ) -> List[DetectedStall]:
        """Feed a magnitude chunk; return stalls finalized by it.

        Args:
            chunk: one-dimensional magnitude samples.  Zero-length
                chunks are no-ops; non-finite samples (NaN/Inf - a
                driver handing over garbage) are treated as dropped
                and handled like a gap.
            gap_before: samples the driver reports lost *before* this
                chunk (digitizer overrun).  Triggers resynchronization
                and marks the surrounding samples impaired.
        """
        if self._finished:
            raise RuntimeError("finish() was already called")
        chunk = np.asarray(chunk, dtype=np.float64)
        if chunk.ndim != 1:
            raise ValueError("chunks must be one-dimensional")
        if gap_before < 0:
            raise ValueError("gap_before cannot be negative")
        if not obs_enabled():
            return self._process_impl(chunk, gap_before)
        t0 = time.perf_counter()
        with _trace.span("streaming.chunk", samples=len(chunk)) as span:
            new = self._process_impl(chunk, gap_before)
            span.set_attr(stalls=len(new))
        elapsed = time.perf_counter() - t0
        _STREAM_CHUNK_LATENCY.observe(elapsed)
        _STREAM_CHUNKS.inc()
        _event_bus.emit(
            "chunk_processed",
            samples=len(chunk),
            stalls=len(new),
            latency_s=elapsed,
        )
        for stall in new:
            _event_bus.emit(
                "stall_detected",
                begin_cycle=stall.begin_cycle,
                duration_cycles=stall.end_cycle - stall.begin_cycle,
                is_refresh=stall.is_refresh,
                low_confidence=stall.low_confidence,
            )
        return new

    def _process_impl(
        self, chunk: np.ndarray, gap_before: int
    ) -> List[DetectedStall]:
        """The uninstrumented chunk path (see :meth:`process`)."""
        new: List[DetectedStall] = []
        if gap_before > 0:
            new.extend(self._handle_gap(gap_before))
        if len(chunk) == 0:
            return [self.quality_monitor.flag(s) for s in new]
        finite = np.isfinite(chunk)
        if finite.all():
            new.extend(self._consume(chunk))
        else:
            # Non-finite runs are dropped samples: feed the finite
            # segments, resynchronizing across each bad run.
            for segment, bad_run in _finite_segments(chunk, finite):
                if bad_run:
                    new.extend(self._handle_gap(bad_run))
                if len(segment):
                    new.extend(self._consume(segment))
        return [self.quality_monitor.flag(s) for s in new]

    def _consume(self, chunk: np.ndarray) -> List[DetectedStall]:
        """Feed one contiguous, finite chunk through the pipeline."""
        self.quality_monitor.observe(chunk, self._n_samples)
        self._n_samples += len(chunk)
        normalized = self._normalizer.push(chunk)
        new = self._detector.push(normalized)
        self._stalls.extend(new)
        return new

    def _handle_gap(self, dropped: int) -> List[DetectedStall]:
        """Resynchronize at a discontinuity of ``dropped`` lost samples."""
        # Drain the normalizer so every sample seen so far reaches the
        # detector, close the open dip (it cannot bridge the gap), and
        # re-prime the min/max state: stale extrema from before the
        # discontinuity must not normalize what follows it.
        tail = self._normalizer.flush()
        new = list(self._detector.push(tail))
        new.extend(self._detector.resync())
        self._stalls.extend(new)
        self._normalizer = OnlineNormalizer(self._normalizer_config)
        self.quality_monitor.mark_gap(self._n_samples, dropped)
        self._n_dropped += dropped
        if obs_enabled():
            _STREAM_GAPS.inc()
            _STREAM_DROPPED.inc(dropped)
            _event_bus.emit("quality_flag", flag="gap", dropped=int(dropped))
        return new

    @report_result
    def finish(self) -> ProfileReport:
        """Flush all state and return the final, quality-gated report."""
        if not self._finished:
            with _trace.span("streaming.finish"):
                tail = self._normalizer.flush()
                self._stalls.extend(self._detector.push(tail))
                self._stalls.extend(self._detector.finish())
            self._finished = True
        # Gating runs over the complete stall list at the end: an
        # impairment found late (e.g. a gap guard reaching backwards)
        # must still flag a stall that was finalized before it.
        stalls = [self.quality_monitor.flag(s) for s in self._stalls]
        if obs_enabled():
            low_confidence = sum(1 for s in stalls if s.low_confidence)
            _STREAM_LOW_CONFIDENCE.inc(low_confidence)
            if low_confidence:
                _event_bus.emit(
                    "quality_flag",
                    flag="low_confidence",
                    count=low_confidence,
                )
        quality = self.quality_monitor.summary()
        return ProfileReport(
            stalls=stalls,
            total_cycles=(self._n_samples + self._n_dropped) * self.period,
            clock_hz=self.clock_hz,
            sample_period_cycles=self.period,
            region_names=dict(self.region_names),
            quality=quality if quality.any_impairment else None,
        )

    @property
    def stalls_so_far(self) -> List[DetectedStall]:
        """Stalls finalized up to now (monitoring hook).

        Confidence flags reflect impairments seen *so far*; the final
        report's flags are definitive.
        """
        return [self.quality_monitor.flag(s) for s in self._stalls]

    @property
    def dropped_samples(self) -> int:
        """Samples lost to gaps so far."""
        return self._n_dropped


def _finite_segments(chunk: np.ndarray, finite: np.ndarray):
    """Split ``chunk`` into (finite_segment, preceding_bad_run) pairs."""
    out = []
    i = 0
    n = len(chunk)
    while i < n:
        bad = 0
        while i < n and not finite[i]:
            bad += 1
            i += 1
        start = i
        while i < n and finite[i]:
            i += 1
        out.append((chunk[start:i], bad))
    return out


def profile_chunks(
    chunks: Iterable,
    sample_rate_hz: float,
    clock_hz: float,
    normalizer: Optional[NormalizerConfig] = None,
    detector: Optional[DetectorConfig] = None,
    quality: Optional[QualityConfig] = None,
) -> ProfileReport:
    """One-shot convenience: profile an iterable of magnitude chunks.

    Each item may be a bare array or a ``(chunk, gap_before)`` pair
    (the shape :func:`repro.faults.inject.iter_chunks` yields for
    impaired streams).
    """
    streamer = StreamingEmprof(
        sample_rate_hz,
        clock_hz,
        normalizer=normalizer,
        detector=detector,
        quality=quality,
    )
    for item in chunks:
        if isinstance(item, tuple):
            chunk, gap_before = item
            streamer.process(chunk, gap_before=gap_before)
        else:
            streamer.process(item)
    return streamer.finish()
