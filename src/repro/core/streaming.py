"""Streaming (online) EMPROF for arbitrarily long captures.

The paper's SPEC captures outran the MXA's record length and had to be
taken with a streaming front end (ThinkRF WSA5000 + PX14400 digitizers,
Section VI).  Profiling such captures offline means holding hours of
samples; this module processes the signal *incrementally*, in chunks of
any size, with bounded memory.

The numerical work lives in :mod:`repro.core.engine` (the vectorized
chunked core shared with the batch path - see ``docs/engine.md``);
this module is the *adapter* layer that adds runtime contracts,
observability counters, and the robustness orchestration:

* :class:`OnlineNormalizer` - sliding-window min/max normalization
  over :class:`repro.core.engine.ChunkNormalizer`, emitting exactly
  the same values as the batch
  :func:`repro.core.normalize.normalize` (centered window,
  edge-clamped) at a fixed latency of half a window;
* :class:`StreamingDetector` - chunked dip detection over
  :class:`repro.core.engine.ChunkDetector`, equivalent to the batch
  detector (threshold, hysteresis merging, duration thresholds, edge
  interpolation, refresh classification);
* :class:`StreamingEmprof` - the facade: feed magnitude chunks,
  collect stalls as they complete, and get the final
  :class:`ProfileReport`.

Equivalence with the batch pipeline is tested property-style in
``tests/test_streaming.py`` and differentially against frozen seed
implementations in ``tests/test_engine_equivalence.py``: for any
signal and any chunking, the streamed result equals the batch result.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional

import numpy as np

from ..devtools.contracts import (
    monotonic_stall_stream,
    report_result,
    unit_interval_result,
)
from ..faults.quality import QualityConfig, QualityMonitor
from ..obs import metrics as _metrics, trace as _trace
from ..obs.events import bus as _event_bus
from ..obs.flight import (
    FLIGHT_SCHEMA_VERSION,
    FlightEvent,
    FlightRecorder,
    build_evidence,
)
from ..obs.runtime import obs_enabled
from .detect import DetectorConfig
from .engine import ChunkDetector, ChunkNormalizer, finite_segments
from .events import DetectedStall, ProfileReport
from .normalize import NormalizerConfig

_STREAM_NORM_SAMPLES = _metrics.counter(
    "streaming_normalize_samples_total",
    "magnitude samples consumed by OnlineNormalizer.push()",
)
_STREAM_DETECT_SAMPLES = _metrics.counter(
    "streaming_detect_samples_total",
    "normalized samples consumed by StreamingDetector.push()",
)
_STREAM_STALLS = _metrics.counter(
    "stalls_detected_total", "LLC-miss stalls detected (batch + streaming)"
)
_STREAM_REFRESH = _metrics.counter(
    "refresh_stalls_total", "detected stalls classified refresh-coincident"
)
_STREAM_CHUNKS = _metrics.counter(
    "streaming_chunks_total", "chunks fed through StreamingEmprof.process()"
)
_STREAM_CHUNK_LATENCY = _metrics.histogram(
    "streaming_chunk_latency_seconds",
    "wall time of one StreamingEmprof.process() chunk",
)
_STREAM_GAPS = _metrics.counter(
    "signal_gaps_total",
    "stream discontinuities handled (overruns + non-finite runs)",
)
_STREAM_DROPPED = _metrics.counter(
    "dropped_samples_total", "samples lost across all stream gaps"
)
_STREAM_LOW_CONFIDENCE = _metrics.counter(
    "low_confidence_stalls_total",
    "detected stalls flagged as overlapping impaired signal",
)


class OnlineNormalizer:
    """Sliding-window min/max normalization with bounded memory.

    A thin adapter over :class:`repro.core.engine.ChunkNormalizer`
    adding the observability counter and the unit-interval contract.
    Matches the batch normalizer sample-for-sample: the window for
    output position ``i`` is the centered, edge-clamped window that
    ``scipy.ndimage.{minimum,maximum}_filter1d`` with
    ``mode="nearest"`` computes.  Output for position ``i`` is emitted
    once its full right context has arrived (or at :meth:`flush`).

    Smoothing (``smooth_samples > 1``) is not supported online; the
    constructor rejects such configs rather than silently diverging
    from the batch result.
    """

    def __init__(
        self,
        config: Optional[NormalizerConfig] = None,
        flight: Optional[FlightRecorder] = None,
    ):
        self._engine = ChunkNormalizer(config, flight=flight)
        self.config = self._engine.config

    @unit_interval_result
    def push(self, chunk: np.ndarray) -> np.ndarray:
        """Feed samples; return the normalized values now determined."""
        arr = np.asarray(chunk, dtype=np.float64)
        out = self._engine.push(arr)
        if obs_enabled():
            _STREAM_NORM_SAMPLES.inc(len(arr))
        return out

    @unit_interval_result
    def flush(self) -> np.ndarray:
        """Emit the tail (positions whose right context is the signal end)."""
        return self._engine.flush()

    @property
    def latency_samples(self) -> int:
        """Fixed emission delay (half the window)."""
        return self._engine.latency_samples


class StreamingDetector:
    """Incremental dip detection equivalent to :func:`detect_stalls`.

    A thin adapter over :class:`repro.core.engine.ChunkDetector`
    adding observability counters and the monotonic-stream contract.
    Feed normalized samples with :meth:`push`; completed stalls are
    returned as they become final (a stall is final once the signal has
    recovered above the hysteresis threshold, or at :meth:`finish`).
    """

    def __init__(
        self,
        sample_period_cycles: float,
        config: Optional[DetectorConfig] = None,
        flight: Optional[FlightRecorder] = None,
    ):
        cfg = config if config is not None else DetectorConfig()
        self._engine = ChunkDetector(sample_period_cycles, cfg, flight=flight)
        self.period = self._engine.period
        self.config = cfg

    def _count(self, out: List[DetectedStall]) -> List[DetectedStall]:
        _STREAM_STALLS.inc(len(out))
        _STREAM_REFRESH.inc(sum(1 for s in out if s.is_refresh))
        return out

    @monotonic_stall_stream
    def push(self, normalized: np.ndarray) -> List[DetectedStall]:
        """Consume normalized samples; return newly finalized stalls."""
        arr = np.asarray(normalized, dtype=np.float64)
        out = self._engine.push(arr)
        if obs_enabled():
            _STREAM_DETECT_SAMPLES.inc(len(arr))
            self._count(out)
        return out

    @monotonic_stall_stream
    def finish(self) -> List[DetectedStall]:
        """Finalize any open dip at end of signal."""
        out = self._engine.finish()
        if obs_enabled():
            self._count(out)
        return out

    @monotonic_stall_stream
    def resync(self) -> List[DetectedStall]:
        """Close any open dip at a stream discontinuity and continue.

        A gap means the samples between the last and the next chunk
        are unknown, so the dip state machine cannot bridge it: the
        open dip (if any) is finalized exactly as :meth:`finish` would
        finalize it, but the detector stays usable - positions keep
        advancing and the next sample is treated like a stream start
        (neutral previous value for edge refinement).
        """
        out = self._engine.resync()
        if obs_enabled():
            self._count(out)
        return out

    @property
    def samples_seen(self) -> int:
        """Total normalized samples consumed."""
        return self._engine.samples_seen


class StreamingEmprof:
    """Chunked EMPROF: bounded-memory profiling of endless captures.

    Hardened against real acquisition impairments (see
    ``docs/robustness.md``):

    * driver-reported sample drops (``gap_before``) and non-finite
      sample runs trigger a *resynchronization* - the open dip is
      closed and the normalizer is re-primed so stale min/max state is
      never smeared across a discontinuity;
    * a :class:`~repro.faults.quality.QualityMonitor` watches the raw
      stream for saturation plateaus, interference bursts, and AGC
      gain steps;
    * stalls overlapping any impaired interval are reported with
      ``low_confidence=True``, and the final report carries a
      :class:`~repro.core.events.QualitySummary`.

    On a clean, gapless stream the output is sample-for-sample
    identical to the batch pipeline (the quality layer only *flags*,
    it never changes detection).

    Args:
        sample_rate_hz: capture sampling rate.
        clock_hz: target processor clock.
        normalizer: normalization parameters (``smooth_samples`` must
            be 1 for the online path).
        detector: detection parameters.
        quality: quality-monitor parameters (defaults on).
        flight: optional :class:`repro.obs.flight.FlightRecorder`;
            when given, every engine decision plus the streaming
            layer's gap/veto events are recorded, and the final report
            carries per-stall evidence (``report.evidence``).
            Detection output is bit-identical either way.
    """

    def __init__(
        self,
        sample_rate_hz: float,
        clock_hz: float,
        normalizer: Optional[NormalizerConfig] = None,
        detector: Optional[DetectorConfig] = None,
        region_names: Optional[Dict[int, str]] = None,
        quality: Optional[QualityConfig] = None,
        flight: Optional[FlightRecorder] = None,
    ):
        if sample_rate_hz <= 0 or clock_hz <= 0:
            raise ValueError("rates must be positive")
        self.sample_rate_hz = float(sample_rate_hz)
        self.clock_hz = float(clock_hz)
        self.period = clock_hz / sample_rate_hz
        self._flight = flight
        self._normalizer_config = (
            normalizer if normalizer is not None else NormalizerConfig()
        )
        self._normalizer = OnlineNormalizer(self._normalizer_config, flight=flight)
        self._detector = StreamingDetector(self.period, detector, flight=flight)
        self.quality_monitor = QualityMonitor(
            quality, gain_guard_samples=self._normalizer_config.window_samples
        )
        self._stalls: List[DetectedStall] = []
        self._n_samples = 0
        self._n_dropped = 0
        self._finished = False
        self.region_names = dict(region_names or {})

    def process(
        self, chunk: np.ndarray, gap_before: int = 0
    ) -> List[DetectedStall]:
        """Feed a magnitude chunk; return stalls finalized by it.

        Args:
            chunk: one-dimensional magnitude samples.  Zero-length
                chunks are no-ops; non-finite samples (NaN/Inf - a
                driver handing over garbage) are treated as dropped
                and handled like a gap.
            gap_before: samples the driver reports lost *before* this
                chunk (digitizer overrun).  Triggers resynchronization
                and marks the surrounding samples impaired.
        """
        if self._finished:
            raise RuntimeError("finish() was already called")
        chunk = np.asarray(chunk, dtype=np.float64)
        if chunk.ndim != 1:
            raise ValueError("chunks must be one-dimensional")
        if gap_before < 0:
            raise ValueError("gap_before cannot be negative")
        if not obs_enabled():
            return self._process_impl(chunk, gap_before)
        t0 = time.perf_counter()
        with _trace.span("streaming.chunk", samples=len(chunk)) as span:
            new = self._process_impl(chunk, gap_before)
            span.set_attr(stalls=len(new))
        elapsed = time.perf_counter() - t0
        _STREAM_CHUNK_LATENCY.observe(elapsed)
        _STREAM_CHUNKS.inc()
        _event_bus.emit(
            "chunk_processed",
            samples=len(chunk),
            stalls=len(new),
            latency_s=elapsed,
        )
        for stall in new:
            _event_bus.emit(
                "stall_detected",
                begin_cycle=stall.begin_cycle,
                duration_cycles=stall.end_cycle - stall.begin_cycle,
                is_refresh=stall.is_refresh,
                low_confidence=stall.low_confidence,
            )
        return new

    def _process_impl(
        self, chunk: np.ndarray, gap_before: int
    ) -> List[DetectedStall]:
        """The uninstrumented chunk path (see :meth:`process`)."""
        new: List[DetectedStall] = []
        if gap_before > 0:
            new.extend(self._handle_gap(gap_before))
        if len(chunk) == 0:
            return [self.quality_monitor.flag(s) for s in new]
        finite = np.isfinite(chunk)
        if finite.all():
            new.extend(self._consume(chunk))
        else:
            # Non-finite runs are dropped samples: feed the finite
            # segments, resynchronizing across each bad run.
            for segment, bad_run in _finite_segments(chunk, finite):
                if bad_run:
                    new.extend(self._handle_gap(bad_run))
                if len(segment):
                    new.extend(self._consume(segment))
        return [self.quality_monitor.flag(s) for s in new]

    def _consume(self, chunk: np.ndarray) -> List[DetectedStall]:
        """Feed one contiguous, finite chunk through the pipeline."""
        self.quality_monitor.observe(chunk, self._n_samples)
        self._n_samples += len(chunk)
        normalized = self._normalizer.push(chunk)
        new = self._detector.push(normalized)
        self._stalls.extend(new)
        return new

    def _handle_gap(self, dropped: int) -> List[DetectedStall]:
        """Resynchronize at a discontinuity of ``dropped`` lost samples."""
        # Drain the normalizer so every sample seen so far reaches the
        # detector, close the open dip (it cannot bridge the gap), and
        # re-prime the min/max state: stale extrema from before the
        # discontinuity must not normalize what follows it.
        if self._flight is not None:
            self._flight.record(
                FlightEvent(
                    schema_version=FLIGHT_SCHEMA_VERSION,
                    kind="gap",
                    pos=float(self._n_samples),
                    attrs={"dropped": int(dropped)},
                )
            )
        tail = self._normalizer.flush()
        new = list(self._detector.push(tail))
        new.extend(self._detector.resync())
        self._stalls.extend(new)
        self._normalizer = OnlineNormalizer(
            self._normalizer_config, flight=self._flight
        )
        self.quality_monitor.mark_gap(self._n_samples, dropped)
        self._n_dropped += dropped
        if obs_enabled():
            _STREAM_GAPS.inc()
            _STREAM_DROPPED.inc(dropped)
            _event_bus.emit("quality_flag", flag="gap", dropped=int(dropped))
        return new

    @report_result
    def finish(self) -> ProfileReport:
        """Flush all state and return the final, quality-gated report."""
        if not self._finished:
            with _trace.span("streaming.finish"):
                tail = self._normalizer.flush()
                self._stalls.extend(self._detector.push(tail))
                self._stalls.extend(self._detector.finish())
            self._finished = True
        # Gating runs over the complete stall list at the end: an
        # impairment found late (e.g. a gap guard reaching backwards)
        # must still flag a stall that was finalized before it.
        stalls = [self.quality_monitor.flag(s) for s in self._stalls]
        if self._flight is not None:
            for stall in stalls:
                if stall.low_confidence:
                    self._flight.record(
                        FlightEvent(
                            schema_version=FLIGHT_SCHEMA_VERSION,
                            kind="quality_veto",
                            pos=float(stall.begin_sample),
                            attrs={
                                "begin": float(stall.begin_sample),
                                "end": float(stall.end_sample),
                            },
                        )
                    )
        if obs_enabled():
            low_confidence = sum(1 for s in stalls if s.low_confidence)
            _STREAM_LOW_CONFIDENCE.inc(low_confidence)
            if low_confidence:
                _event_bus.emit(
                    "quality_flag",
                    flag="low_confidence",
                    count=low_confidence,
                )
        quality = self.quality_monitor.summary()
        return ProfileReport(
            stalls=stalls,
            total_cycles=(self._n_samples + self._n_dropped) * self.period,
            clock_hz=self.clock_hz,
            sample_period_cycles=self.period,
            region_names=dict(self.region_names),
            quality=quality if quality.any_impairment else None,
            evidence=(
                None
                if self._flight is None
                else build_evidence(
                    stalls,
                    self._flight.events(),
                    self._detector.config,
                    quality_intervals=self.quality_monitor.intervals(),
                    recorder=self._flight,
                )
            ),
        )

    @property
    def stalls_so_far(self) -> List[DetectedStall]:
        """Stalls finalized up to now (monitoring hook).

        Confidence flags reflect impairments seen *so far*; the final
        report's flags are definitive.
        """
        return [self.quality_monitor.flag(s) for s in self._stalls]

    @property
    def dropped_samples(self) -> int:
        """Samples lost to gaps so far."""
        return self._n_dropped


def _finite_segments(chunk: np.ndarray, finite: np.ndarray):
    """Split ``chunk`` into (finite_segment, preceding_bad_run) pairs."""
    return finite_segments(chunk, finite)


def profile_chunks(
    chunks: Iterable,
    sample_rate_hz: float,
    clock_hz: float,
    normalizer: Optional[NormalizerConfig] = None,
    detector: Optional[DetectorConfig] = None,
    quality: Optional[QualityConfig] = None,
    flight: Optional[FlightRecorder] = None,
) -> ProfileReport:
    """One-shot convenience: profile an iterable of magnitude chunks.

    Each item may be a bare array or a ``(chunk, gap_before)`` pair
    (the shape :func:`repro.faults.inject.iter_chunks` yields for
    impaired streams).
    """
    streamer = StreamingEmprof(
        sample_rate_hz,
        clock_hz,
        normalizer=normalizer,
        detector=detector,
        quality=quality,
        flight=flight,
    )
    for item in chunks:
        if isinstance(item, tuple):
            chunk, gap_before = item
            streamer.process(chunk, gap_before=gap_before)
        else:
            streamer.process(item)
    return streamer.finish()
