"""The EMPROF profiler facade.

Ties the pipeline together exactly as Section IV describes the
prototype: magnitude in, moving-min/max normalization, dip detection
with a duration threshold, and a :class:`ProfileReport` out.  The
profiler is agnostic about where the magnitude signal came from - the
simulator's power trace (Section V-C) and the receiver's EM capture
(Section V-B) go through the identical code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

import numpy as np

from ..obs import metrics as _metrics, trace as _trace
from ..obs.events import bus as _event_bus
from ..obs.flight import FlightRecorder, build_evidence
from ..obs.runtime import obs_enabled
from .detect import DetectorConfig, detect_stalls
from .engine import ChunkDetector, ChunkNormalizer
from .events import ProfileReport
from .normalize import NormalizerConfig, moving_average, normalize

_PROFILE_RUNS = _metrics.counter(
    "profile_runs_total", "Emprof.profile()/profile_window() invocations"
)


@dataclass(frozen=True)
class EmprofConfig:
    """Complete EMPROF parameter set (normalization + detection)."""

    normalizer: NormalizerConfig = field(default_factory=NormalizerConfig)
    detector: DetectorConfig = field(default_factory=DetectorConfig)


class Emprof:
    """Profile one captured (or simulated) side-channel signal.

    Args:
        signal: magnitude samples (non-negative).
        sample_rate_hz: sampling rate of ``signal``.
        clock_hz: target processor's clock frequency; converts sample
            positions into cycle counts ("the number of cycles this
            stall corresponds to can be computed by multiplying dt with
            the processor's clock frequency", Section III-A).
        config: EMPROF parameters; defaults are tuned for the device
            models in :mod:`repro.devices`.
        region_names: optional region-id -> name map carried into the
            report for attribution experiments.
    """

    def __init__(
        self,
        signal: np.ndarray,
        sample_rate_hz: float,
        clock_hz: float,
        config: Optional[EmprofConfig] = None,
        region_names: Optional[Dict[int, str]] = None,
    ):
        sig = np.asarray(signal, dtype=np.float64)
        if sig.ndim != 1:
            raise ValueError("signal must be one-dimensional")
        if sample_rate_hz <= 0 or clock_hz <= 0:
            raise ValueError("rates must be positive")
        self.signal = sig
        self.sample_rate_hz = float(sample_rate_hz)
        self.clock_hz = float(clock_hz)
        self.config = config if config is not None else EmprofConfig()
        self.region_names = dict(region_names or {})
        self._normalized: Optional[np.ndarray] = None

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_simulation(cls, result, config: Optional[EmprofConfig] = None) -> "Emprof":
        """Analyze a simulator power trace (the Section V-C path)."""
        return cls(
            result.power_trace,
            sample_rate_hz=result.sample_rate_hz,
            clock_hz=result.config.clock_hz,
            config=config,
            region_names=result.ground_truth.region_names,
        )

    @classmethod
    def from_capture(cls, capture, config: Optional[EmprofConfig] = None) -> "Emprof":
        """Analyze a received EM capture (the Section V-B path).

        ``capture`` is a :class:`repro.emsignal.receiver.Capture`:
        its magnitude, sample rate and carrier (clock) frequency are
        used directly.
        """
        return cls(
            capture.magnitude,
            sample_rate_hz=capture.sample_rate_hz,
            clock_hz=capture.clock_hz,
            config=config,
            region_names=dict(getattr(capture, "region_names", {}) or {}),
        )

    # -- analysis ----------------------------------------------------------

    @property
    def sample_period_cycles(self) -> float:
        """Processor cycles represented by one signal sample."""
        return self.clock_hz / self.sample_rate_hz

    def normalized(self) -> np.ndarray:
        """Normalized magnitude in [0, 1]; computed once and cached."""
        if self._normalized is None:
            self._normalized = normalize(self.signal, self.config.normalizer)
        return self._normalized

    def profile(
        self, flight: Optional[FlightRecorder] = None
    ) -> ProfileReport:
        """Run detection over the whole signal and build the report.

        With a :class:`~repro.obs.flight.FlightRecorder` attached, the
        engine's decisions are recorded and the returned report carries
        a :class:`~repro.obs.flight.ReportEvidence` in
        ``report.evidence``; stalls are bit-identical either way.
        """
        if not obs_enabled():
            return self._profile_impl(flight)
        _event_bus.emit("run_started", op="profile", samples=len(self.signal))
        with _trace.span("profile", samples=len(self.signal)):
            report = self._profile_impl(flight)
        _PROFILE_RUNS.inc()
        _event_bus.emit(
            "run_finished",
            op="profile",
            samples=len(self.signal),
            stalls=len(report.stalls),
        )
        return report

    def _profile_impl(
        self, flight: Optional[FlightRecorder] = None
    ) -> ProfileReport:
        """Whole-signal profiling (instrumentation-free entry)."""
        stalls = detect_stalls(
            self.normalized(),
            self.sample_period_cycles,
            self.config.detector,
            flight=flight,
        )
        total_cycles = len(self.signal) * self.sample_period_cycles
        with _trace.span("report", stalls=len(stalls)):
            return ProfileReport(
                stalls=stalls,
                total_cycles=total_cycles,
                clock_hz=self.clock_hz,
                sample_period_cycles=self.sample_period_cycles,
                region_names=dict(self.region_names),
                evidence=(
                    None
                    if flight is None
                    else build_evidence(
                        stalls,
                        flight.events(),
                        self.config.detector,
                        recorder=flight,
                    )
                ),
            )

    def profile_chunked(
        self,
        chunk_samples: int = 65536,
        flight: Optional[FlightRecorder] = None,
    ) -> ProfileReport:
        """Profile via the chunked engine in bounded-memory pieces.

        Feeds the signal through the same
        :class:`repro.core.engine.ChunkNormalizer` /
        :class:`repro.core.engine.ChunkDetector` pair the streaming
        path uses, ``chunk_samples`` at a time, and is bit-identical
        to :meth:`profile` for any chunk size (the equivalence
        contract of ``docs/engine.md``).  Useful when the whole
        normalized signal should never be materialized at once.
        """
        if chunk_samples < 1:
            raise ValueError("chunk_samples must be at least 1")
        if not obs_enabled():
            return self._profile_chunked_impl(chunk_samples, flight)
        _event_bus.emit(
            "run_started", op="profile_chunked", samples=len(self.signal)
        )
        with _trace.span(
            "profile_chunked", samples=len(self.signal), chunk=chunk_samples
        ):
            report = self._profile_chunked_impl(chunk_samples, flight)
        _PROFILE_RUNS.inc()
        _event_bus.emit(
            "run_finished",
            op="profile_chunked",
            samples=len(self.signal),
            stalls=len(report.stalls),
        )
        return report

    def _profile_chunked_impl(
        self, chunk_samples: int, flight: Optional[FlightRecorder] = None
    ) -> ProfileReport:
        """Chunked profiling (instrumentation-free entry)."""
        norm_cfg = self.config.normalizer
        x = self.signal
        if norm_cfg.smooth_samples > 1:
            # Pre-smoothing needs the whole signal anyway; apply the
            # identical moving average once, then stream unsmoothed.
            x = moving_average(x, norm_cfg.smooth_samples)
            norm_cfg = replace(norm_cfg, smooth_samples=1)
        normalizer = ChunkNormalizer(norm_cfg, flight=flight)
        detector = ChunkDetector(
            self.sample_period_cycles, self.config.detector, flight=flight
        )
        stalls = []
        for chunk in np.array_split(
            x, np.arange(chunk_samples, len(x), chunk_samples)
        ):
            stalls.extend(detector.push(normalizer.push(chunk)))
        stalls.extend(detector.push(normalizer.flush()))
        stalls.extend(detector.finish())
        total_cycles = len(self.signal) * self.sample_period_cycles
        return ProfileReport(
            stalls=stalls,
            total_cycles=total_cycles,
            clock_hz=self.clock_hz,
            sample_period_cycles=self.sample_period_cycles,
            region_names=dict(self.region_names),
            evidence=(
                None
                if flight is None
                else build_evidence(
                    stalls,
                    flight.events(),
                    self.config.detector,
                    recorder=flight,
                )
            ),
        )

    def profile_window(self, begin_sample: int, end_sample: int) -> ProfileReport:
        """Profile only samples [begin_sample, end_sample).

        Normalization still uses the full signal (the moving extrema
        need surrounding context); only detection is windowed.  Used
        for the microbenchmark experiments, where the measurement
        window between the two marker loops is isolated first.
        """
        if not 0 <= begin_sample <= end_sample <= len(self.signal):
            raise ValueError("window out of signal bounds")
        if not obs_enabled():
            return self._profile_window_impl(begin_sample, end_sample)
        _event_bus.emit(
            "run_started",
            op="profile_window",
            samples=end_sample - begin_sample,
        )
        with _trace.span(
            "profile_window", begin=begin_sample, end=end_sample
        ):
            report = self._profile_window_impl(begin_sample, end_sample)
        _PROFILE_RUNS.inc()
        _event_bus.emit(
            "run_finished",
            op="profile_window",
            samples=end_sample - begin_sample,
            stalls=len(report.stalls),
        )
        return report

    def _profile_window_impl(
        self, begin_sample: int, end_sample: int
    ) -> ProfileReport:
        """Windowed profiling (instrumentation-free entry)."""
        norm = self.normalized()[begin_sample:end_sample]
        stalls = detect_stalls(norm, self.sample_period_cycles, self.config.detector)
        offset_cycles = begin_sample * self.sample_period_cycles
        shifted = [s.shifted(begin_sample, offset_cycles) for s in stalls]
        window_cycles = (end_sample - begin_sample) * self.sample_period_cycles
        with _trace.span("report", stalls=len(shifted)):
            return ProfileReport(
                stalls=shifted,
                total_cycles=window_cycles,
                clock_hz=self.clock_hz,
                sample_period_cycles=self.sample_period_cycles,
                region_names=dict(self.region_names),
            )
