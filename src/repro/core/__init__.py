"""EMPROF core: the paper's contribution.

Signal in, profile out:

1. :mod:`repro.core.normalize` - moving min/max magnitude normalization
2. :mod:`repro.core.detect` - dip detection with a duration threshold
3. :mod:`repro.core.refresh` - refresh-coincident stall accounting
4. :mod:`repro.core.profiler` - the :class:`Emprof` facade
5. :mod:`repro.core.stats` - latency histograms and summaries
6. :mod:`repro.core.markers` - microbenchmark window isolation
7. :mod:`repro.core.validate` - accuracy metrics vs. ground truth

Both the batch and the streaming paths share one vectorized chunked
core, :mod:`repro.core.engine` (see ``docs/engine.md``).
"""

from .calibrate import (
    CalibrationPoint,
    CalibrationResult,
    calibrate_detector,
    sensitivity,
)
from .detect import DetectorConfig, detect_stalls
from .engine import ChunkDetector, ChunkNormalizer, SampleRing, finite_segments
from .events import DetectedStall, ProfileReport
from .markers import MarkerWindow, find_marker_window
from .normalize import NormalizerConfig, moving_average, moving_extrema, normalize
from .profiler import Emprof, EmprofConfig
from .refresh import RefreshStats, refresh_stats, split_by_refresh
from .streaming import (
    OnlineNormalizer,
    StreamingDetector,
    StreamingEmprof,
    profile_chunks,
)
from .stats import LatencySummary, latency_histogram, stalls_summary, tail_fraction
from .validate import (
    MatchResult,
    ValidationResult,
    count_accuracy,
    match_stalls,
    merge_intervals,
    validate_profile,
)

__all__ = [
    "Emprof",
    "StreamingEmprof",
    "StreamingDetector",
    "OnlineNormalizer",
    "profile_chunks",
    "ChunkDetector",
    "ChunkNormalizer",
    "SampleRing",
    "finite_segments",
    "CalibrationPoint",
    "CalibrationResult",
    "calibrate_detector",
    "sensitivity",
    "EmprofConfig",
    "DetectorConfig",
    "NormalizerConfig",
    "DetectedStall",
    "ProfileReport",
    "detect_stalls",
    "normalize",
    "moving_average",
    "moving_extrema",
    "MarkerWindow",
    "find_marker_window",
    "RefreshStats",
    "refresh_stats",
    "split_by_refresh",
    "LatencySummary",
    "latency_histogram",
    "stalls_summary",
    "tail_fraction",
    "MatchResult",
    "ValidationResult",
    "count_accuracy",
    "match_stalls",
    "merge_intervals",
    "validate_profile",
]
