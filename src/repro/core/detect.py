"""Dip detection: from a normalized magnitude to stall events.

"EMPROF then identifies each significant dip in the signal whose
duration exceeds a threshold.  The threshold is selected to be
significantly shorter than the LLC latency but significantly longer
than typical on-chip latencies." (Section IV)

Detection runs in three stages:

1. threshold the normalized signal into below-dip runs,
2. merge runs separated by gaps shorter than ``merge_gap_samples``
   (one noisy sample inside a stall must not split it in two),
3. keep runs whose duration exceeds ``min_duration_cycles`` and refine
   their boundaries by linear interpolation of the threshold crossing,
   so measured durations are not quantized to whole sample periods.

The numerical work is done by the vectorized chunked engine
(:mod:`repro.core.engine`, see ``docs/engine.md``): the batch path is
one whole-signal chunk through :class:`repro.core.engine.ChunkDetector`
plus a flush, which is proven bit-identical to the historical per-run
implementation by ``tests/test_engine_equivalence.py``.  This module
keeps the configuration, the quality flagging, and the obs/contract
adapter around that engine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..devtools.contracts import stall_sequence_result
from ..obs import metrics as _metrics, trace as _trace
from ..obs.runtime import obs_enabled
from .engine import detect_all
from .events import DetectedStall

_STALLS_TOTAL = _metrics.counter(
    "stalls_detected_total", "LLC-miss stalls detected (batch + streaming)"
)
_REFRESH_TOTAL = _metrics.counter(
    "refresh_stalls_total", "detected stalls classified refresh-coincident"
)
_DETECT_LATENCY = _metrics.histogram(
    "detect_latency_seconds", "wall time of one batch detect_stalls() call"
)


@dataclass(frozen=True)
class DetectorConfig:
    """Stall-detection parameters.

    Attributes:
        threshold: normalized level below which the processor is
            considered stalled.
        recover_threshold: hysteresis level - two dips are merged into
            one stall unless the signal between them recovers above
            this.  A single noisy sample poking above ``threshold``
            inside a stall must not split it in two, while a genuine
            busy gap (which returns to full-rate switching, i.e. near
            1.0) does separate consecutive misses.
        min_duration_cycles: minimum dip duration to report - longer
            than on-chip (LLC-hit) latencies, shorter than a memory
            access.
        min_duration_samples: minimum *whole samples* below threshold
            for a dip to count.  One or two low samples cannot be told
            apart from noise, whatever the sample period; this is what
            makes low measurement bandwidths blind to short stalls
            (the 20 MHz behaviour of Fig. 12).
        merge_gap_samples: dips separated by at most this many samples
            are merged unconditionally (0 disables).
        refresh_min_cycles: dips at least this long are classified as
            refresh-coincident (the 2-3 us stalls of Fig. 5).
    """

    threshold: float = 0.45
    recover_threshold: float = 0.70
    min_duration_cycles: float = 70.0
    min_duration_samples: int = 4
    merge_gap_samples: int = 0
    refresh_min_cycles: float = 1200.0

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        if not self.threshold <= self.recover_threshold < 1.0:
            raise ValueError("recover threshold must be in [threshold, 1)")
        if self.min_duration_cycles <= 0:
            raise ValueError("min duration must be positive")
        if self.min_duration_samples < 1:
            raise ValueError("min sample count must be at least 1")
        if self.merge_gap_samples < 0:
            raise ValueError("merge gap cannot be negative")
        if self.refresh_min_cycles <= self.min_duration_cycles:
            raise ValueError("refresh threshold must exceed min duration")


def flag_low_confidence(
    stalls: Sequence[DetectedStall],
    impaired_intervals: Sequence[Tuple[float, float]],
) -> List[DetectedStall]:
    """Flag every stall overlapping an impaired [begin, end) interval.

    The batch-path counterpart of the streaming pipeline's quality
    gating: given impaired sample intervals (from a
    :class:`repro.faults.quality.QualityMonitor` or a ground-truth
    :class:`repro.faults.inject.ImpairmentLog`), returns the stalls
    with ``low_confidence=True`` where they overlap.  Detection
    results are never altered, only annotated.
    """
    spans = sorted(impaired_intervals)
    out: List[DetectedStall] = []
    for stall in stalls:
        flagged = False
        for begin, end in spans:
            if begin > stall.end_sample:
                break
            if stall.begin_sample <= end and stall.end_sample >= begin:
                flagged = True
                break
        out.append(stall.flagged(True) if flagged else stall)
    return out


@stall_sequence_result
def detect_stalls(
    normalized: np.ndarray,
    sample_period_cycles: float,
    config: DetectorConfig = None,
    quality_intervals: Optional[Sequence[Tuple[float, float]]] = None,
    flight=None,
) -> List[DetectedStall]:
    """Find LLC-miss-induced stalls in a normalized signal.

    Args:
        normalized: output of :func:`repro.core.normalize.normalize`.
        sample_period_cycles: processor cycles per signal sample
            (e.g. 20 for the paper's 50 MHz trace of a 1 GHz core).
        config: detection parameters.
        quality_intervals: optional impaired sample intervals; stalls
            overlapping one are returned with ``low_confidence=True``
            (see :func:`flag_low_confidence`).
        flight: optional :class:`repro.obs.flight.FlightRecorder`;
            when given, every engine decision (threshold runs,
            hysteresis verdicts, finalize/reject) is recorded into it.
            Detection output is bit-identical either way.

    Returns:
        Detected stalls in time order, with fractional boundaries and
        refresh classification applied.
    """
    cfg = config if config is not None else DetectorConfig()
    if not obs_enabled():
        stalls = _detect_stalls_impl(
            normalized, sample_period_cycles, cfg, flight=flight
        )
        if quality_intervals:
            stalls = flag_low_confidence(stalls, quality_intervals)
        return stalls
    t0 = time.perf_counter()
    with _trace.span("detect", samples=len(normalized)) as span:
        stalls = _detect_stalls_impl(
            normalized, sample_period_cycles, cfg, flight=flight
        )
        span.set_attr(stalls=len(stalls))
    if quality_intervals:
        stalls = flag_low_confidence(stalls, quality_intervals)
    _DETECT_LATENCY.observe(time.perf_counter() - t0)
    _STALLS_TOTAL.inc(len(stalls))
    _REFRESH_TOTAL.inc(sum(1 for s in stalls if s.is_refresh))
    return stalls


def _detect_stalls_impl(
    normalized: np.ndarray,
    sample_period_cycles: float,
    cfg: DetectorConfig,
    flight=None,
) -> List[DetectedStall]:
    """The uninstrumented detection pipeline (see :func:`detect_stalls`).

    One whole-signal chunk through the vectorized engine: the run
    extraction, gap-merge and hysteresis passes of the historical
    implementation collapse into the engine's single grouped pass.
    """
    x = np.asarray(normalized, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError("signal must be one-dimensional")
    return detect_all(x, sample_period_cycles, cfg, flight=flight)
